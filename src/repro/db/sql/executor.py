"""Plan executor.

Walks the operator tree produced by the planner and returns a
:class:`StatementResult`.  Mutations append undo records to the active
transaction (when one is supplied) so rollback can restore state.
The executor also counts rows touched, which the cluster simulator
converts into CPU cost for the database server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional, Sequence

from repro.db.engine import Database, Table
from repro.db.errors import ExecutionError
from repro.db.index import MAX_KEY, HashIndex, OrderedIndex
from repro.db.sql.planner import (
    AccessPath,
    AggregateSpec,
    DeletePlan,
    InsertPlan,
    Plan,
    SelectPlan,
    TableAccess,
    UpdatePlan,
)

if False:  # pragma: no cover - import cycle guard for type checkers
    from repro.db.txn import Transaction


class StatementResult:
    """Result of executing one statement.

    A slotted plain class rather than a dataclass: one is allocated
    per statement on the hot path of both executors.
    """

    __slots__ = ("columns", "rows", "rowcount", "rows_touched")

    def __init__(
        self,
        columns: Optional[list[str]] = None,
        rows: Optional[list[tuple]] = None,
        rowcount: int = 0,
        rows_touched: int = 0,
    ) -> None:
        self.columns = columns if columns is not None else []
        self.rows = rows if rows is not None else []
        self.rowcount = rowcount
        self.rows_touched = rows_touched

    @property
    def is_query(self) -> bool:
        return bool(self.columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StatementResult):
            return NotImplemented
        return (
            self.columns == other.columns
            and self.rows == other.rows
            and self.rowcount == other.rowcount
            and self.rows_touched == other.rows_touched
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StatementResult(columns={self.columns!r}, "
            f"rows={len(self.rows)}, rowcount={self.rowcount}, "
            f"rows_touched={self.rows_touched})"
        )


class _Aggregator:
    """Accumulates one aggregate function over a group.

    Shared between the tree executor (which feeds it via :meth:`add`
    with a dict environment) and the compiled executor (which evaluates
    the argument positionally and calls :meth:`add_value` directly).
    """

    def __init__(self, spec: AggregateSpec) -> None:
        self.spec = spec
        self.count = 0
        self.total: Any = None
        self.minimum: Any = None
        self.maximum: Any = None
        self.seen: set = set()

    def add(self, env: dict, params: Sequence[Any]) -> None:
        if self.spec.arg is None:
            self.count += 1
            return
        self.add_value(self.spec.arg(env, params))

    def add_value(self, value: Any) -> None:
        """Fold one already-evaluated argument value (None = SQL NULL)."""
        if value is None:
            return
        if self.spec.distinct:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1
        self.total = value if self.total is None else self.total + value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def result(self) -> Any:
        func = self.spec.func
        if func == "count":
            return self.count
        if func == "sum":
            return self.total
        if func == "min":
            return self.minimum
        if func == "max":
            return self.maximum
        if func == "avg":
            return None if self.count == 0 else self.total / self.count
        raise ExecutionError(f"unknown aggregate {func!r}")  # pragma: no cover


def _none_safe_key(value: Any) -> tuple:
    """Sort key that orders None first and mixed types deterministically."""
    if value is None:
        return (0, "", 0, "")
    if isinstance(value, bool):
        return (1, "", int(value), "")
    if isinstance(value, (int, float)):
        return (2, "", value, "")
    return (3, type(value).__name__, 0, str(value))


def distinct_rows(rows: list[tuple]) -> list[tuple]:
    """First occurrence of each row, in order (shared DISTINCT helper)."""
    seen: set = set()
    unique: list[tuple] = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            unique.append(row)
    return unique


def hashable_group_key(key: tuple) -> tuple:
    """GROUP BY key made hashable (unhashable values degrade to str)."""
    return tuple(
        (v if isinstance(v, (int, float, str, bool, type(None))) else str(v))
        for v in key
    )


def sort_result_rows(
    plan: SelectPlan, rows: list[tuple], hidden: int
) -> list[tuple]:
    """Apply ORDER BY to materialized output rows.

    ``hidden`` trailing values hold source-scope sort keys: when
    nonzero, the row loop appended one trailing slot *per sort key*
    (None for keys that index an output column), so the k-th sort
    key's hidden slot sits at ``width + k``.  They are stripped from
    the returned rows.  Shared by the tree and compiled executors --
    sorting happens on plain value tuples, so there is nothing
    environment-specific to specialize.
    """
    if not plan.sort_keys:
        return [row[: len(row) - hidden] for row in rows] if hidden else rows
    width = len(plan.columns)
    key_positions: list[int] = []
    for position, key in enumerate(plan.sort_keys):
        if key.output_index is not None:
            key_positions.append(key.output_index)
        else:
            key_positions.append(width + position)
    # Stable multi-key sort: apply keys from last to first.
    ordered = list(rows)
    for key, pos in reversed(list(zip(plan.sort_keys, key_positions))):
        ordered.sort(
            key=lambda row: _none_safe_key(row[pos]),
            reverse=key.descending,
        )
    if hidden:
        ordered = [row[:width] for row in ordered]
    return ordered


def project_envs(
    plan: SelectPlan, envs: "Iterator[dict] | Iterable[dict]",
    params: Sequence[Any],
) -> list[tuple]:
    """Project a non-aggregate env stream and apply ORDER BY.

    Hidden sort values (one trailing slot per sort key) are appended
    per row and stripped by :func:`sort_result_rows`.  Shared by the
    tree executor and the shard router's scatter-gather path, which
    feeds it a cross-shard merged env stream.
    """
    rows: list[tuple] = []
    for env in envs:
        values = tuple(
            col.expr(env, params) if col.expr is not None else None
            for col in plan.columns
        )
        sort_values = tuple(
            key.expr(env, params) if key.expr is not None else None
            for key in plan.sort_keys
        )
        rows.append(values + sort_values)
    return sort_result_rows(plan, rows, hidden=len(plan.sort_keys))


def aggregate_envs(
    plan: SelectPlan, envs: "Iterator[dict] | Iterable[dict]",
    params: Sequence[Any],
) -> list[tuple]:
    """Aggregate an env stream (GROUP BY / whole-input) and sort.

    Group emission order is first appearance in the stream -- the
    reason the shard router must merge per-shard streams back into
    global scan order before aggregating.
    """
    groups: dict[tuple, tuple[list[Any], list[_Aggregator]]] = {}
    order: list[tuple] = []
    for env in envs:
        key = tuple(expr(env, params) for expr in plan.group_exprs)
        hashable_key = hashable_group_key(key)
        if hashable_key not in groups:
            groups[hashable_key] = (
                list(key),
                [_Aggregator(spec) for spec in plan.aggregates],
            )
            order.append(hashable_key)
        entry = groups[hashable_key]
        for agg in entry[1]:
            agg.add(env, params)
        # For non-aggregate output columns, remember first row values.
        if any(
            col.aggregate_index is None and col.expr is not None
            for col in plan.columns
        ):
            if len(entry[0]) == len(plan.group_exprs):
                for col in plan.columns:
                    if col.aggregate_index is None and col.expr is not None:
                        entry[0].append(col.expr(env, params))

    if not plan.group_exprs and not groups:
        # Aggregates over empty input still yield one row.
        groups[()] = ([], [_Aggregator(spec) for spec in plan.aggregates])
        order.append(())

    rows: list[tuple] = []
    for key in order:
        group_values, aggregators = groups[key]
        extras = group_values[len(plan.group_exprs):]
        extra_iter = iter(extras)
        values: list[Any] = []
        for col in plan.columns:
            if col.aggregate_index is not None:
                values.append(aggregators[col.aggregate_index].result())
            elif col.expr is not None:
                values.append(next(extra_iter, None))
            else:  # pragma: no cover - defensive
                values.append(None)
        rows.append(tuple(values))
    return sort_result_rows(plan, rows, hidden=0)


def select_output_rows(
    plan: SelectPlan, envs: "Iterator[dict] | Iterable[dict]",
    params: Sequence[Any],
) -> list[tuple]:
    """The full SELECT tail over an env stream: project or aggregate,
    then DISTINCT and LIMIT.  The env stream's order is the output
    order (before ORDER BY), so callers that merge multiple sources
    must merge into single-server order first."""
    if plan.aggregates or plan.group_exprs:
        rows = aggregate_envs(plan, envs, params)
    else:
        rows = project_envs(plan, envs, params)
    if plan.distinct:
        rows = distinct_rows(rows)
    if plan.limit is not None:
        limit_value = plan.limit({}, params)
        if limit_value is not None:
            rows = rows[: int(limit_value)]
    return rows


class Executor:
    """Executes plans against a :class:`Database`."""

    def __init__(self, database: Database) -> None:
        self.database = database

    # -- row sources ----------------------------------------------------------

    def _candidate_rowids(
        self,
        table: Table,
        access: AccessPath,
        env: dict,
        params: Sequence[Any],
    ) -> Iterator[int]:
        if access.kind == "scan":
            yield from list(table.rowids())
            return
        if access.kind == "pk":
            key = tuple(expr(env, params) for expr in access.key_exprs)
            rowid = table.lookup_pk(key)
            if rowid is not None:
                yield rowid
            return
        if access.kind == "index_eq":
            assert access.index_name is not None
            index = table.secondary[access.index_name]
            key = tuple(expr(env, params) for expr in access.key_exprs)
            yield from sorted(index.lookup(key))
            return
        if access.kind == "index_range":
            assert access.index_name is not None
            index = table.secondary[access.index_name]
            if not isinstance(index, OrderedIndex):  # pragma: no cover
                raise ExecutionError(
                    f"index {access.index_name!r} does not support ranges"
                )
            low = (
                tuple(expr(env, params) for expr in access.low_exprs)
                if access.low_exprs
                else None
            )
            high = (
                tuple(expr(env, params) for expr in access.high_exprs)
                if access.high_exprs
                else None
            )
            # A prefix-only high bound must include all longer keys with
            # that prefix; tuple comparison handles this because any
            # extension of the prefix compares greater, so extend with a
            # sentinel when the bound is a pure equality prefix.
            high_inclusive = access.high_inclusive
            if high is not None and len(access.high_exprs) < _index_width(index):
                high = high + (MAX_KEY,)
                high_inclusive = True
            yield from index.range_scan(
                low=low,
                high=high,
                low_inclusive=access.low_inclusive,
                high_inclusive=high_inclusive,
            )
            return
        raise ExecutionError(f"unknown access kind {access.kind!r}")

    def candidate_rowids(
        self,
        table: Table,
        access: AccessPath,
        env: dict,
        params: Sequence[Any],
    ) -> Iterator[int]:
        """Public access-path row source (shard router scatter path)."""
        return self._candidate_rowids(table, access, env, params)

    def _iter_table(
        self,
        table_access: TableAccess,
        env: dict,
        params: Sequence[Any],
        touched: list[int],
    ) -> Iterator[dict]:
        table = self.database.table(table_access.table_name)
        for rowid in self._candidate_rowids(
            table, table_access.access, env, params
        ):
            if not table.has_rowid(rowid):
                continue
            row = table.get(rowid)
            touched[0] += 1
            new_env = dict(env)
            new_env[table_access.binding] = row
            if table_access.residual is not None:
                verdict = table_access.residual(new_env, params)
                if verdict is None or not verdict:
                    continue
            yield new_env

    def _join_rows(
        self,
        tables: list[TableAccess],
        params: Sequence[Any],
        touched: list[int],
    ) -> Iterator[dict]:
        yield from self.join_envs(tables, params, touched)

    def join_envs(
        self,
        tables: list[TableAccess],
        params: Sequence[Any],
        touched: list[int],
        start: int = 0,
        env: Optional[dict] = None,
    ) -> Iterator[dict]:
        """Nested-loop join starting at table ``start`` with ``env``
        already bound.  The shard router uses the seeded form to join
        a sharded outer row against that shard's replicated inner
        tables."""

        def recurse(idx: int, env: dict) -> Iterator[dict]:
            if idx >= len(tables):
                yield env
                return
            for new_env in self._iter_table(tables[idx], env, params, touched):
                yield from recurse(idx + 1, new_env)

        yield from recurse(start, env if env is not None else {})

    # -- SELECT ------------------------------------------------------------------

    def execute_select(
        self, plan: SelectPlan, params: Sequence[Any]
    ) -> StatementResult:
        touched = [0]
        result = StatementResult(columns=list(plan.column_names))
        envs = self._join_rows(plan.tables, params, touched)
        rows = select_output_rows(plan, envs, params)
        result.rows = rows
        result.rowcount = len(rows)
        result.rows_touched = touched[0]
        self.database.notify("select", plan.tables[0].table_name, touched[0])
        return result

    # -- mutations ---------------------------------------------------------------

    def execute_insert(
        self,
        plan: InsertPlan,
        params: Sequence[Any],
        txn: Optional["Transaction"] = None,
    ) -> StatementResult:
        table = self.database.table(plan.table_name)
        schema = table.schema
        provided = {
            column: expr({}, params)
            for column, expr in zip(plan.columns, plan.values)
        }
        values = [provided.get(name) for name in schema.column_names]
        if txn is not None:
            txn.lock_table(plan.table_name)
        _, undo = table.insert(values)
        if txn is not None:
            txn.record_undo(undo)
        self.database.notify("insert", plan.table_name, 1)
        return StatementResult(rowcount=1, rows_touched=1)

    def _target_rowids(
        self,
        target: TableAccess,
        params: Sequence[Any],
        touched: list[int],
    ) -> list[int]:
        table = self.database.table(target.table_name)
        matches: list[int] = []
        for rowid in self._candidate_rowids(table, target.access, {}, params):
            if not table.has_rowid(rowid):
                continue
            row = table.get(rowid)
            touched[0] += 1
            if target.residual is not None:
                env = {target.binding: row}
                verdict = target.residual(env, params)
                if verdict is None or not verdict:
                    continue
            matches.append(rowid)
        return matches

    def execute_update(
        self,
        plan: UpdatePlan,
        params: Sequence[Any],
        txn: Optional["Transaction"] = None,
    ) -> StatementResult:
        table = self.database.table(plan.target.table_name)
        touched = [0]
        rowids = self._target_rowids(plan.target, params, touched)
        for rowid in rowids:
            if txn is not None:
                txn.lock_row(plan.target.table_name, rowid)
            row = table.get(rowid)
            env = {plan.target.binding: row}
            changes = {
                column: expr(env, params) for column, expr in plan.assignments
            }
            undo = table.update(rowid, changes)
            if txn is not None:
                txn.record_undo(undo)
        self.database.notify("update", plan.target.table_name, touched[0])
        return StatementResult(rowcount=len(rowids), rows_touched=touched[0])

    def execute_delete(
        self,
        plan: DeletePlan,
        params: Sequence[Any],
        txn: Optional["Transaction"] = None,
    ) -> StatementResult:
        table = self.database.table(plan.target.table_name)
        touched = [0]
        rowids = self._target_rowids(plan.target, params, touched)
        for rowid in rowids:
            if txn is not None:
                txn.lock_row(plan.target.table_name, rowid)
            undo = table.delete(rowid)
            if txn is not None:
                txn.record_undo(undo)
        self.database.notify("delete", plan.target.table_name, touched[0])
        return StatementResult(rowcount=len(rowids), rows_touched=touched[0])

    # -- dispatch ----------------------------------------------------------------

    def execute(
        self,
        plan: Plan,
        params: Sequence[Any] = (),
        txn: Optional["Transaction"] = None,
    ) -> StatementResult:
        if isinstance(plan, SelectPlan):
            if txn is not None:
                for access in plan.tables:
                    txn.lock_table(access.table_name, exclusive=False)
            return self.execute_select(plan, params)
        if isinstance(plan, InsertPlan):
            return self.execute_insert(plan, params, txn)
        if isinstance(plan, UpdatePlan):
            return self.execute_update(plan, params, txn)
        if isinstance(plan, DeletePlan):
            return self.execute_delete(plan, params, txn)
        raise ExecutionError(f"cannot execute {type(plan).__name__}")


def _index_width(index: HashIndex | OrderedIndex) -> int:
    """Number of columns in the index's keys (inferred from any key)."""
    if isinstance(index, OrderedIndex):
        sample = index.min_key()
    else:  # pragma: no cover - hash indexes don't reach range code
        sample = next(index.keys(), None)
    return len(sample) if sample is not None else 0
