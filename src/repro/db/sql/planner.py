"""Query planner.

Turns a parsed statement into a :class:`Plan`: a small operator tree
with compiled expression closures.  Access-path selection mirrors what
a simple RDBMS would do:

1. equality predicates covering the whole primary key -> point lookup,
2. equality predicates covering a secondary index -> index lookup,
3. range predicates on an ordered index prefix -> index range scan,
4. otherwise -> full table scan.

Predicates consumed by the access path are removed from the residual
filter.  Joins are nested-loop, using an index on the inner table's
join key when one exists.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.db.catalog import Catalog, TableSchema
from repro.db.engine import Database
from repro.db.errors import PlanError, UnknownColumnError
from repro.db.sql.ast import (
    Assignment,
    Between,
    BinaryOp,
    ColumnRef,
    Delete,
    Expr,
    FuncCall,
    InList,
    Insert,
    IsNull,
    Literal,
    OrderItem,
    Parameter,
    Select,
    SelectItem,
    Statement,
    TableRef,
    UnaryOp,
    Update,
)

# A compiled expression: (env, params) -> value, where env maps a table
# binding name to the current row tuple for that table.
Compiled = Callable[[dict, Sequence[Any]], Any]


@dataclass
class Scope:
    """Name-resolution scope: visible table bindings in order."""

    bindings: list[tuple[str, TableSchema]] = field(default_factory=list)

    def add(self, binding: str, schema: TableSchema) -> None:
        if any(b == binding for b, _ in self.bindings):
            raise PlanError(f"duplicate table binding {binding!r}")
        self.bindings.append((binding, schema))

    def resolve(self, ref: ColumnRef) -> tuple[str, int]:
        """Resolve a column reference to (binding, offset)."""
        if ref.table is not None:
            for binding, schema in self.bindings:
                if binding.lower() == ref.table.lower():
                    return binding, schema.offset(ref.column)
            raise PlanError(f"unknown table binding {ref.table!r}")
        matches = [
            (binding, schema.offset(ref.column))
            for binding, schema in self.bindings
            if schema.has_column(ref.column)
        ]
        if not matches:
            raise UnknownColumnError(ref.column)
        if len(matches) > 1:
            raise PlanError(f"ambiguous column {ref.column!r}")
        return matches[0]

    def binding_of(self, ref: ColumnRef) -> str:
        return self.resolve(ref)[0]


def _like_matcher(pattern: str) -> Callable[[str], bool]:
    regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
    compiled = re.compile(f"^{regex}$", re.DOTALL)
    return lambda text: compiled.match(text) is not None


def _apply_comparison(op: str, left: Any, right: Any) -> Optional[bool]:
    if left is None or right is None:
        return None
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == ">":
        return left > right
    if op == "<=":
        return left <= right
    if op == ">=":
        return left >= right
    raise AssertionError(f"unhandled comparison {op}")  # pragma: no cover


def compile_expr(expr: Expr, scope: Scope) -> Compiled:
    """Compile ``expr`` to a closure evaluated per row."""
    if isinstance(expr, Literal):
        value = expr.value
        return lambda env, params: value
    if isinstance(expr, Parameter):
        index = expr.index
        return lambda env, params: params[index]
    if isinstance(expr, ColumnRef):
        binding, offset = scope.resolve(expr)
        return lambda env, params: env[binding][offset]
    if isinstance(expr, UnaryOp):
        operand = compile_expr(expr.operand, scope)
        if expr.op == "-":
            def neg(env, params):
                value = operand(env, params)
                return None if value is None else -value
            return neg
        if expr.op == "not":
            def negate(env, params):
                value = operand(env, params)
                return None if value is None else not _truthy(value)
            return negate
        raise PlanError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, BinaryOp):
        left = compile_expr(expr.left, scope)
        right = compile_expr(expr.right, scope)
        op = expr.op
        if op == "and":
            def conj(env, params):
                lval = left(env, params)
                if lval is not None and not _truthy(lval):
                    return False
                rval = right(env, params)
                if rval is not None and not _truthy(rval):
                    return False
                if lval is None or rval is None:
                    return None
                return True
            return conj
        if op == "or":
            def disj(env, params):
                lval = left(env, params)
                if lval is not None and _truthy(lval):
                    return True
                rval = right(env, params)
                if rval is not None and _truthy(rval):
                    return True
                if lval is None or rval is None:
                    return None
                return False
            return disj
        if op in {"=", "<>", "<", ">", "<=", ">="}:
            return lambda env, params: _apply_comparison(
                op, left(env, params), right(env, params)
            )
        if op == "like":
            def like(env, params):
                lval = left(env, params)
                rval = right(env, params)
                if lval is None or rval is None:
                    return None
                return _like_matcher(rval)(lval)
            return like
        if op in {"+", "-", "*", "/", "||"}:
            def arith(env, params):
                lval = left(env, params)
                rval = right(env, params)
                if lval is None or rval is None:
                    return None
                if op == "+":
                    return lval + rval
                if op == "-":
                    return lval - rval
                if op == "*":
                    return lval * rval
                if op == "/":
                    return lval / rval
                return str(lval) + str(rval)
            return arith
        raise PlanError(f"unknown binary operator {op!r}")
    if isinstance(expr, IsNull):
        operand = compile_expr(expr.operand, scope)
        negated = expr.negated
        def isnull(env, params):
            value = operand(env, params)
            return (value is not None) if negated else (value is None)
        return isnull
    if isinstance(expr, InList):
        operand = compile_expr(expr.operand, scope)
        options = [compile_expr(o, scope) for o in expr.options]
        negated = expr.negated
        def in_list(env, params):
            value = operand(env, params)
            if value is None:
                return None
            found = any(value == opt(env, params) for opt in options)
            return (not found) if negated else found
        return in_list
    if isinstance(expr, Between):
        operand = compile_expr(expr.operand, scope)
        low = compile_expr(expr.low, scope)
        high = compile_expr(expr.high, scope)
        negated = expr.negated
        def between(env, params):
            value = operand(env, params)
            lo = low(env, params)
            hi = high(env, params)
            if value is None or lo is None or hi is None:
                return None
            result = lo <= value <= hi
            return (not result) if negated else result
        return between
    if isinstance(expr, FuncCall):
        if expr.is_aggregate:
            raise PlanError(
                f"aggregate {expr.name!r} not allowed in this context"
            )
        return _compile_scalar_func(expr, scope)
    raise PlanError(f"cannot compile expression {expr!r}")


def _truthy(value: Any) -> bool:
    return bool(value)


_SCALAR_FUNCS: dict[str, Callable[..., Any]] = {
    "abs": abs,
    "length": lambda s: None if s is None else len(s),
    "lower": lambda s: None if s is None else s.lower(),
    "upper": lambda s: None if s is None else s.upper(),
    "coalesce": lambda *args: next((a for a in args if a is not None), None),
    "round": lambda x, n=0: None if x is None else round(x, int(n)),
    "mod": lambda a, b: None if a is None or b is None else a % b,
    "substr": lambda s, start, length=None: (
        None if s is None
        else s[int(start) - 1:] if length is None
        else s[int(start) - 1:int(start) - 1 + int(length)]
    ),
}


def _compile_scalar_func(expr: FuncCall, scope: Scope) -> Compiled:
    name = expr.name.lower()
    if name not in _SCALAR_FUNCS:
        raise PlanError(f"unknown function {expr.name!r}")
    func = _SCALAR_FUNCS[name]
    args = [compile_expr(arg, scope) for arg in expr.args]
    return lambda env, params: func(*(arg(env, params) for arg in args))


# -- access paths ------------------------------------------------------------


@dataclass
class AccessPath:
    """How rows of one table will be fetched.

    ``kind`` is ``pk`` / ``index_eq`` / ``index_range`` / ``scan``.
    Key expressions are compiled against the *outer* scope so that a
    join's inner table can be probed with values from the outer row.

    The ``*_asts`` fields keep the source expressions of the compiled
    key closures and ``index_width`` the declared column count of the
    chosen index: the plan compiler (:mod:`repro.db.sql.compile_plan`)
    recompiles them into positional form and decides the prefix-bound
    MAX_KEY extension statically.
    """

    kind: str
    index_name: Optional[str] = None
    key_exprs: tuple[Compiled, ...] = ()
    low_exprs: tuple[Compiled, ...] = ()
    high_exprs: tuple[Compiled, ...] = ()
    low_inclusive: bool = True
    high_inclusive: bool = True
    reverse: bool = False
    key_asts: tuple[Expr, ...] = ()
    low_asts: tuple[Expr, ...] = ()
    high_asts: tuple[Expr, ...] = ()
    index_width: int = 0


@dataclass
class TableAccess:
    """One table in the FROM clause with its access path and residual filter.

    ``join_strategy`` is the planner's static classification of how
    this level can fetch join candidates (``driver`` / ``lookup`` /
    ``hash_scan`` / ``scan`` / ``hash`` / ``nested``); the codegen rung
    resolves the hash candidates against prepare-time table sizes
    (falling back to nested loops on tiny inners, partitioned spill
    builds on large ones) and records the final pick per plan.
    """

    table_name: str
    binding: str
    access: AccessPath
    residual: Optional[Compiled] = None
    residual_ast: Optional[Expr] = None
    join_strategy: Optional[str] = None


@dataclass
class AggregateSpec:
    """One aggregate in the projection (or HAVING-free group query)."""

    func: str  # count/sum/min/max/avg
    arg: Optional[Compiled]  # None for COUNT(*)
    distinct: bool = False
    arg_ast: Optional[Expr] = None


@dataclass
class OutputColumn:
    """One output column: either a plain compiled expression or an aggregate."""

    name: str
    expr: Optional[Compiled] = None
    aggregate_index: Optional[int] = None
    ast: Optional[Expr] = None


@dataclass
class SortKey:
    """Compiled ORDER BY key.

    ``source`` keys evaluate in the row scope; ``output`` keys index
    into the projected row (used for aggregate queries).
    """

    descending: bool
    expr: Optional[Compiled] = None
    output_index: Optional[int] = None
    ast: Optional[Expr] = None


@dataclass
class SelectPlan:
    tables: list[TableAccess]
    columns: list[OutputColumn]
    aggregates: list[AggregateSpec]
    group_exprs: list[Compiled]
    sort_keys: list[SortKey]
    limit: Optional[Compiled]
    distinct: bool
    for_update: bool
    column_names: list[str]
    group_asts: list[Expr] = field(default_factory=list)
    limit_ast: Optional[Expr] = None
    scope: Optional[Scope] = None
    # Batch metadata: single-table, non-aggregate, non-point shapes can
    # run scan/filter/project batch-at-a-time (materialize candidates
    # once, then comprehension passes) instead of row-at-a-time.
    batch_eligible: bool = False


@dataclass
class InsertPlan:
    table_name: str
    columns: tuple[str, ...]
    values: list[Compiled]
    value_asts: list[Expr] = field(default_factory=list)


@dataclass
class UpdatePlan:
    target: TableAccess
    assignments: list[tuple[str, Compiled]]
    assignment_asts: list[tuple[str, Expr]] = field(default_factory=list)
    scope: Optional[Scope] = None


@dataclass
class DeletePlan:
    target: TableAccess
    scope: Optional[Scope] = None


Plan = SelectPlan | InsertPlan | UpdatePlan | DeletePlan


# -- join-strategy analysis ---------------------------------------------------
#
# Static (size-independent) classification of join levels, shared by the
# planner (which records the class on each TableAccess) and the source
# codegen rung (which resolves hash candidates against table sizes).


def scope_positions(scope: Scope) -> dict[str, int]:
    """FROM-clause position of each binding, in placement order."""
    return {binding: i for i, (binding, _) in enumerate(scope.bindings)}


def flatten_conjuncts(ast: Expr) -> list[Expr]:
    """AND-flatten an expression into its conjuncts, left to right."""
    if isinstance(ast, BinaryOp) and ast.op == "and":
        return flatten_conjuncts(ast.left) + flatten_conjuncts(ast.right)
    return [ast]


def outer_only_expr(ast: Expr, scope: Scope, position: int) -> bool:
    """True when every column in ``ast`` binds before ``position``."""
    positions = scope_positions(scope)
    for node in ast.walk():
        if isinstance(node, ColumnRef):
            binding, _ = scope.resolve(node)
            if positions[binding] >= position:
                return False
    return True


def extract_equi_conjuncts(
    ta: TableAccess, scope: Scope, position: int
) -> Optional[tuple[list[int], list[Expr], list[Expr]]]:
    """Peel hash-joinable equality conjuncts from a scanned inner
    table's residual: ``inner_col = <outer-only expr>`` in either
    operand order.  Returns (inner build offsets, outer probe
    expressions, leftover conjuncts in original order), or None when
    no conjunct qualifies."""
    if ta.residual_ast is None:
        return None
    positions = scope_positions(scope)
    build: list[int] = []
    probe: list[Expr] = []
    leftover: list[Expr] = []
    for conjunct in flatten_conjuncts(ta.residual_ast):
        peeled = False
        if isinstance(conjunct, BinaryOp) and conjunct.op == "=":
            for inner_side, outer_side in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                if not isinstance(inner_side, ColumnRef):
                    continue
                binding, offset = scope.resolve(inner_side)
                if positions[binding] != position:
                    continue
                if not outer_only_expr(outer_side, scope, position):
                    continue
                build.append(offset)
                probe.append(outer_side)
                peeled = True
                break
        if not peeled:
            leftover.append(conjunct)
    if not build:
        return None
    return build, probe, leftover


def classify_join_access(
    position: int, ta: TableAccess, scope: Scope
) -> str:
    """Static strategy class for one join level.

    ``driver`` (outermost), ``lookup`` (constant probe, hoistable),
    ``hash_scan`` (scanned inner with peelable equi conjuncts --
    hash-join candidate), ``scan`` (scanned inner, no equi key),
    ``hash`` (outer-dependent pk/index_eq probe -- hash-build
    candidate), ``nested`` (outer-dependent range probe).
    """
    kind = ta.access.kind
    if position == 0:
        return "driver"
    if kind == "scan":
        if extract_equi_conjuncts(ta, scope, position) is not None:
            return "hash_scan"
        return "scan"
    probe_asts = (
        list(ta.access.key_asts)
        + list(ta.access.low_asts)
        + list(ta.access.high_asts)
    )
    has_column = any(
        isinstance(node, ColumnRef)
        for ast in probe_asts
        for node in ast.walk()
    )
    if not has_column:
        return "lookup"
    if kind == "index_range":
        return "nested"
    return "hash"


def _split_conjuncts(expr: Optional[Expr]) -> list[Expr]:
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "and":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _join_conjuncts(conjuncts: Sequence[Expr]) -> Optional[Expr]:
    if not conjuncts:
        return None
    combined = conjuncts[0]
    for nxt in conjuncts[1:]:
        combined = BinaryOp("and", combined, nxt)
    return combined


def _refs_only(expr: Expr, allowed: set[str], scope: Scope) -> bool:
    """True if every column in ``expr`` resolves into ``allowed`` bindings."""
    for node in expr.walk():
        if isinstance(node, ColumnRef):
            try:
                binding, _ = scope.resolve(node)
            except PlanError:
                return False
            if binding not in allowed:
                return False
    return True


class Planner:
    """Plans statements against a database's catalog."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self.catalog: Catalog = database.catalog

    # -- public API ------------------------------------------------------------

    def plan(self, stmt: Statement) -> Plan:
        if isinstance(stmt, Select):
            return self.plan_select(stmt)
        if isinstance(stmt, Insert):
            return self.plan_insert(stmt)
        if isinstance(stmt, Update):
            return self.plan_update(stmt)
        if isinstance(stmt, Delete):
            return self.plan_delete(stmt)
        raise PlanError(f"cannot plan {type(stmt).__name__}")

    # -- SELECT -----------------------------------------------------------------

    def plan_select(self, stmt: Select) -> SelectPlan:
        scope = Scope()
        base_schema = self.catalog.get(stmt.table.name)
        scope.add(stmt.table.binding, base_schema)
        join_schemas = []
        for join in stmt.joins:
            schema = self.catalog.get(join.table.name)
            scope.add(join.table.binding, schema)
            join_schemas.append(schema)

        conjuncts = _split_conjuncts(stmt.where)
        for join in stmt.joins:
            conjuncts.extend(_split_conjuncts(join.condition))

        tables: list[TableAccess] = []
        placed: set[str] = set()
        ordered_refs = [stmt.table] + [j.table for j in stmt.joins]
        remaining = list(conjuncts)
        for ref in ordered_refs:
            placed_after = placed | {ref.binding}
            usable = [
                c for c in remaining if _refs_only(c, placed_after, scope)
            ]
            schema = self.catalog.get(ref.name)
            access, used = self._choose_access(
                ref, schema, usable, placed, scope
            )
            residual_conjuncts = [c for c in usable if c not in used]
            remaining = [
                c for c in remaining if c not in usable
            ] + []
            # Conjuncts usable at this table but not consumed stay as the
            # residual filter here; conjuncts mentioning later tables wait.
            residual_expr = _join_conjuncts(residual_conjuncts)
            residual = (
                compile_expr(residual_expr, scope)
                if residual_expr is not None
                else None
            )
            tables.append(
                TableAccess(
                    table_name=ref.name,
                    binding=ref.binding,
                    access=access,
                    residual=residual,
                    residual_ast=residual_expr,
                )
            )
            placed = placed_after

        if remaining:
            leftover = _join_conjuncts(remaining)
            raise PlanError(f"could not place predicate {leftover!r}")

        for position, access_entry in enumerate(tables):
            access_entry.join_strategy = classify_join_access(
                position, access_entry, scope
            )

        # Projection.
        columns: list[OutputColumn] = []
        aggregates: list[AggregateSpec] = []
        names: list[str] = []
        has_aggregates = stmt.has_aggregates or bool(stmt.group_by)
        for item in stmt.items:
            if item.star:
                if has_aggregates:
                    raise PlanError("cannot mix * with aggregates")
                for binding, schema in scope.bindings:
                    for col in schema.column_names:
                        ref = ColumnRef(column=col, table=binding)
                        columns.append(
                            OutputColumn(
                                name=col,
                                expr=compile_expr(ref, scope),
                                ast=ref,
                            )
                        )
                        names.append(col)
                continue
            assert item.expr is not None
            name = item.alias or _default_name(item.expr)
            if has_aggregates and _contains_aggregate(item.expr):
                agg = _extract_single_aggregate(item.expr)
                arg = (
                    compile_expr(agg.args[0], scope)
                    if agg.args and not agg.star
                    else None
                )
                aggregates.append(
                    AggregateSpec(
                        func=agg.name.lower(), arg=arg, distinct=agg.distinct,
                        arg_ast=(
                            agg.args[0] if agg.args and not agg.star else None
                        ),
                    )
                )
                columns.append(
                    OutputColumn(name=name, aggregate_index=len(aggregates) - 1)
                )
            else:
                columns.append(
                    OutputColumn(
                        name=name,
                        expr=compile_expr(item.expr, scope),
                        ast=item.expr,
                    )
                )
            names.append(name)

        group_exprs = [compile_expr(g, scope) for g in stmt.group_by]
        if has_aggregates and not stmt.group_by:
            # Whole-input aggregation: every non-aggregate output is invalid.
            for col in columns:
                if col.aggregate_index is None and stmt.group_by == ():
                    if col.expr is not None and len(stmt.items) > len(aggregates):
                        # Allow constants; reject bare columns for clarity.
                        pass

        sort_keys = self._plan_order_by(stmt, scope, names, has_aggregates)
        limit = (
            compile_expr(stmt.limit, scope) if stmt.limit is not None else None
        )
        return SelectPlan(
            tables=tables,
            columns=columns,
            aggregates=aggregates,
            group_exprs=group_exprs,
            sort_keys=sort_keys,
            limit=limit,
            distinct=stmt.distinct,
            for_update=stmt.for_update,
            column_names=names,
            group_asts=list(stmt.group_by),
            limit_ast=stmt.limit,
            scope=scope,
            batch_eligible=(
                len(tables) == 1
                and not has_aggregates
                and tables[0].access.kind != "pk"
            ),
        )

    def _plan_order_by(
        self,
        stmt: Select,
        scope: Scope,
        output_names: list[str],
        has_aggregates: bool,
    ) -> list[SortKey]:
        sort_keys: list[SortKey] = []
        for item in stmt.order_by:
            expr = item.expr
            # ORDER BY may name an output alias (common with aggregates).
            if isinstance(expr, ColumnRef) and expr.table is None:
                lowered = [n.lower() for n in output_names]
                if expr.column.lower() in lowered:
                    sort_keys.append(
                        SortKey(
                            descending=item.descending,
                            output_index=lowered.index(expr.column.lower()),
                        )
                    )
                    continue
            if has_aggregates:
                raise PlanError(
                    "ORDER BY in aggregate queries must reference output columns"
                )
            sort_keys.append(
                SortKey(
                    descending=item.descending,
                    expr=compile_expr(expr, scope),
                    ast=expr,
                )
            )
        return sort_keys

    # -- access-path selection -----------------------------------------------

    def _choose_access(
        self,
        ref: TableRef,
        schema: TableSchema,
        conjuncts: list[Expr],
        outer_bindings: set[str],
        scope: Scope,
    ) -> tuple[AccessPath, list[Expr]]:
        """Pick the cheapest access path for ``ref`` given usable conjuncts.

        ``outer_bindings`` are tables already placed (their columns may
        appear in key expressions -- that is how index nested-loop joins
        probe the inner table).
        """
        binding = ref.binding
        equalities: dict[str, tuple[Expr, Expr]] = {}
        ranges: dict[str, list[tuple[str, Expr, Expr]]] = {}
        for conj in conjuncts:
            extracted = self._extract_predicate(
                conj, binding, outer_bindings, scope
            )
            if extracted is None:
                continue
            column, op, value_expr = extracted
            if op == "=":
                equalities.setdefault(column, (conj, value_expr))
            elif op in {"<", ">", "<=", ">="}:
                ranges.setdefault(column, []).append((op, conj, value_expr))

        # 1. Full primary-key match.
        if all(col in equalities for col in schema.primary_key):
            used = [equalities[col][0] for col in schema.primary_key]
            keys = tuple(
                compile_expr(equalities[col][1], scope)
                for col in schema.primary_key
            )
            return (
                AccessPath(
                    kind="pk",
                    key_exprs=keys,
                    key_asts=tuple(
                        equalities[col][1] for col in schema.primary_key
                    ),
                    index_width=len(schema.primary_key),
                ),
                used,
            )

        # 2. Secondary index equality match (prefer unique, then widest).
        best: Optional[tuple[AccessPath, list[Expr]]] = None
        best_score = -1
        for spec in schema.indexes:
            if all(col in equalities for col in spec.columns):
                score = len(spec.columns) + (100 if spec.unique else 0)
                if score > best_score:
                    used = [equalities[col][0] for col in spec.columns]
                    keys = tuple(
                        compile_expr(equalities[col][1], scope)
                        for col in spec.columns
                    )
                    best = (
                        AccessPath(
                            kind="index_eq",
                            index_name=spec.name,
                            key_exprs=keys,
                            key_asts=tuple(
                                equalities[col][1] for col in spec.columns
                            ),
                            index_width=len(spec.columns),
                        ),
                        used,
                    )
                    best_score = score
        if best is not None:
            return best

        # 3. Ordered-index range scan: equality prefix + range on next column.
        for spec in schema.indexes:
            if not spec.ordered:
                continue
            prefix: list[Expr] = []
            prefix_used: list[Expr] = []
            idx = 0
            for col in spec.columns:
                if col in equalities:
                    prefix.append(equalities[col][1])
                    prefix_used.append(equalities[col][0])
                    idx += 1
                else:
                    break
            range_col = spec.columns[idx] if idx < len(spec.columns) else None
            range_preds = ranges.get(range_col, []) if range_col else []
            if not prefix and not range_preds:
                continue
            low_exprs = list(prefix)
            high_exprs = list(prefix)
            low_inc = True
            high_inc = True
            used = list(prefix_used)
            low_bound: Optional[Expr] = None
            high_bound: Optional[Expr] = None
            for op, conj, value in range_preds:
                if op in {">", ">="} and low_bound is None:
                    low_bound = value
                    low_inc = op == ">="
                    used.append(conj)
                elif op in {"<", "<="} and high_bound is None:
                    high_bound = value
                    high_inc = op == "<="
                    used.append(conj)
            if low_bound is not None:
                low_exprs = low_exprs + [low_bound]
            if high_bound is not None:
                high_exprs = high_exprs + [high_bound]
            if not used:
                continue
            return (
                AccessPath(
                    kind="index_range",
                    index_name=spec.name,
                    low_exprs=tuple(compile_expr(e, scope) for e in low_exprs),
                    high_exprs=tuple(compile_expr(e, scope) for e in high_exprs),
                    low_inclusive=low_inc,
                    high_inclusive=high_inc,
                    low_asts=tuple(low_exprs),
                    high_asts=tuple(high_exprs),
                    index_width=len(spec.columns),
                ),
                used,
            )

        # 4. Full scan.
        return AccessPath(kind="scan"), []

    def _extract_predicate(
        self,
        conj: Expr,
        binding: str,
        outer_bindings: set[str],
        scope: Scope,
    ) -> Optional[tuple[str, str, Expr]]:
        """Extract ``(column, op, value_expr)`` if ``conj`` is sargable.

        The column must belong to ``binding``; the value side may only
        reference already-placed outer tables (or no tables at all).
        """
        if not isinstance(conj, BinaryOp):
            return None
        if conj.op not in {"=", "<", ">", "<=", ">="}:
            return None
        flipped = {"=": "=", "<": ">", ">": "<", "<=": ">=", ">=": "<="}
        for left, right, op in (
            (conj.left, conj.right, conj.op),
            (conj.right, conj.left, flipped[conj.op]),
        ):
            if not isinstance(left, ColumnRef):
                continue
            try:
                resolved_binding, _ = scope.resolve(left)
            except PlanError:
                continue
            if resolved_binding != binding:
                continue
            if _refs_only(right, outer_bindings, scope):
                return left.column, op, right
        return None

    # -- INSERT / UPDATE / DELETE ------------------------------------------------

    def plan_insert(self, stmt: Insert) -> InsertPlan:
        schema = self.catalog.get(stmt.table.name)
        columns = stmt.columns if stmt.columns else schema.column_names
        if len(columns) != len(stmt.values):
            raise PlanError(
                f"INSERT into {stmt.table.name!r}: {len(columns)} columns "
                f"but {len(stmt.values)} values"
            )
        for col in columns:
            schema.offset(col)  # validates existence
        scope = Scope()  # no tables visible in VALUES
        values = [compile_expr(v, scope) for v in stmt.values]
        return InsertPlan(
            table_name=stmt.table.name, columns=tuple(columns), values=values,
            value_asts=list(stmt.values),
        )

    def _plan_target(self, table: TableRef, where: Optional[Expr]) -> tuple[TableAccess, Scope]:
        scope = Scope()
        schema = self.catalog.get(table.name)
        scope.add(table.binding, schema)
        conjuncts = _split_conjuncts(where)
        access, used = self._choose_access(table, schema, conjuncts, set(), scope)
        residual_expr = _join_conjuncts([c for c in conjuncts if c not in used])
        residual = (
            compile_expr(residual_expr, scope)
            if residual_expr is not None
            else None
        )
        return (
            TableAccess(
                table_name=table.name,
                binding=table.binding,
                access=access,
                residual=residual,
                residual_ast=residual_expr,
            ),
            scope,
        )

    def plan_update(self, stmt: Update) -> UpdatePlan:
        target, scope = self._plan_target(stmt.table, stmt.where)
        schema = self.catalog.get(stmt.table.name)
        assignments: list[tuple[str, Compiled]] = []
        for assign in stmt.assignments:
            schema.offset(assign.column)  # validates existence
            assignments.append(
                (assign.column, compile_expr(assign.value, scope))
            )
        return UpdatePlan(
            target=target,
            assignments=assignments,
            assignment_asts=[(a.column, a.value) for a in stmt.assignments],
            scope=scope,
        )

    def plan_delete(self, stmt: Delete) -> DeletePlan:
        target, scope = self._plan_target(stmt.table, stmt.where)
        return DeletePlan(target=target, scope=scope)


def _default_name(expr: Expr) -> str:
    if isinstance(expr, ColumnRef):
        return expr.column
    if isinstance(expr, FuncCall):
        return expr.name.lower()
    return "expr"


def _contains_aggregate(expr: Expr) -> bool:
    return any(
        isinstance(node, FuncCall) and node.is_aggregate for node in expr.walk()
    )


def _extract_single_aggregate(expr: Expr) -> FuncCall:
    if isinstance(expr, FuncCall) and expr.is_aggregate:
        return expr
    raise PlanError(
        "aggregate expressions must be a bare aggregate call "
        f"(got {expr!r})"
    )
