"""SQL tokenizer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.db.errors import SqlSyntaxError


class TokenKind(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    PARAM = "param"
    EOF = "eof"


KEYWORDS = {
    "select", "from", "where", "and", "or", "not", "insert", "into",
    "values", "update", "set", "delete", "order", "by", "group",
    "limit", "asc", "desc", "join", "inner", "on", "as", "for",
    "distinct", "null", "true", "false", "like", "in", "between", "is",
}

OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "||")

PUNCT = {"(", ")", ",", ".", ";"}


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    position: int

    @property
    def lower(self) -> str:
        return self.text.lower()

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.lower == word


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql`` into a list ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if ch == "?":
            tokens.append(Token(TokenKind.PARAM, "?", i))
            i += 1
            continue
        if ch == "'":
            j = i + 1
            parts: list[str] = []
            while True:
                if j >= n:
                    raise SqlSyntaxError("unterminated string literal", i)
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(sql[j])
                j += 1
            tokens.append(Token(TokenKind.STRING, "".join(parts), i))
            i = j + 1
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and sql[i + 1].isdigit()
        ):
            j = i
            seen_dot = False
            while j < n and (sql[j].isdigit() or (sql[j] == "." and not seen_dot)):
                if sql[j] == ".":
                    # A dot not followed by a digit terminates the number
                    # (e.g. table.column after an alias that looks numeric
                    # can't happen, but be strict anyway).
                    if j + 1 >= n or not sql[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token(TokenKind.NUMBER, sql[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            kind = (
                TokenKind.KEYWORD if word.lower() in KEYWORDS
                else TokenKind.IDENTIFIER
            )
            tokens.append(Token(kind, word, i))
            i = j
            continue
        matched = False
        for op in OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token(TokenKind.OPERATOR, op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in PUNCT:
            tokens.append(Token(TokenKind.PUNCT, ch, i))
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenKind.EOF, "", n))
    return tokens
