"""SQL front end: lexer, AST, parser, planner, executor.

Supports the dialect used by the TPC-C / TPC-W workloads:

* ``SELECT`` with projections, aggregates (COUNT/SUM/MIN/MAX/AVG),
  inner joins, ``WHERE`` conjunctions/disjunctions of comparisons,
  ``GROUP BY``, ``ORDER BY ... [DESC]``, ``LIMIT`` and ``FOR UPDATE``.
* ``INSERT INTO ... VALUES``.
* ``UPDATE ... SET col = expr [, ...] WHERE ...`` with arithmetic.
* ``DELETE FROM ... WHERE ...``.
* ``?`` positional parameters everywhere a literal is allowed.
"""

from repro.db.sql.lexer import Token, TokenKind, tokenize
from repro.db.sql.ast import (
    Statement,
    Select,
    Insert,
    Update,
    Delete,
    SelectItem,
    TableRef,
    Expr,
    ColumnRef,
    Literal,
    Parameter,
    BinaryOp,
    FuncCall,
    OrderItem,
)
from repro.db.sql.parser import parse
from repro.db.sql.planner import Planner, Plan
from repro.db.sql.executor import Executor, StatementResult
from repro.db.sql.compile_plan import (
    DEFAULT_SQL_EXEC,
    SQL_EXEC_ENV_VAR,
    SQL_EXEC_MODES,
    CompiledPlan,
    compile_plan,
    resolve_sql_exec_mode,
)

__all__ = [
    "Token",
    "TokenKind",
    "tokenize",
    "Statement",
    "Select",
    "Insert",
    "Update",
    "Delete",
    "SelectItem",
    "TableRef",
    "Expr",
    "ColumnRef",
    "Literal",
    "Parameter",
    "BinaryOp",
    "FuncCall",
    "OrderItem",
    "parse",
    "Planner",
    "Plan",
    "Executor",
    "StatementResult",
    "DEFAULT_SQL_EXEC",
    "SQL_EXEC_ENV_VAR",
    "SQL_EXEC_MODES",
    "CompiledPlan",
    "compile_plan",
    "resolve_sql_exec_mode",
]
