"""SQL abstract syntax tree."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Union


class Expr:
    """Base class for scalar expressions."""

    def walk(self):
        """Yield this node and all descendants."""
        yield self


@dataclass(frozen=True)
class Literal(Expr):
    value: Any

    def walk(self):
        yield self


@dataclass(frozen=True)
class Parameter(Expr):
    """A ``?`` placeholder; ``index`` is its 0-based position."""

    index: int

    def walk(self):
        yield self


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A possibly table-qualified column reference."""

    column: str
    table: Optional[str] = None

    def walk(self):
        yield self

    @property
    def display(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Binary operator: comparison, boolean, or arithmetic."""

    op: str
    left: Expr
    right: Expr

    def walk(self):
        yield self
        yield from self.left.walk()
        yield from self.right.walk()


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # "not" or "-"
    operand: Expr

    def walk(self):
        yield self
        yield from self.operand.walk()


@dataclass(frozen=True)
class FuncCall(Expr):
    """Aggregate or scalar function call.  ``star`` marks COUNT(*)."""

    name: str
    args: tuple[Expr, ...] = ()
    star: bool = False
    distinct: bool = False

    def walk(self):
        yield self
        for arg in self.args:
            yield from arg.walk()

    @property
    def is_aggregate(self) -> bool:
        return self.name.lower() in {"count", "sum", "min", "max", "avg"}


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False

    def walk(self):
        yield self
        yield from self.operand.walk()


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    options: tuple[Expr, ...]
    negated: bool = False

    def walk(self):
        yield self
        yield from self.operand.walk()
        for option in self.options:
            yield from option.walk()


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def walk(self):
        yield self
        yield from self.operand.walk()
        yield from self.low.walk()
        yield from self.high.walk()


@dataclass(frozen=True)
class SelectItem:
    """One projection: an expression with an optional alias, or ``*``."""

    expr: Optional[Expr]
    alias: Optional[str] = None
    star: bool = False


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias if self.alias else self.name


@dataclass(frozen=True)
class JoinClause:
    table: TableRef
    condition: Expr


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False


class Statement:
    """Base class for SQL statements."""


@dataclass(frozen=True)
class Select(Statement):
    items: tuple[SelectItem, ...]
    table: TableRef
    joins: tuple[JoinClause, ...] = ()
    where: Optional[Expr] = None
    group_by: tuple[Expr, ...] = ()
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[Expr] = None
    distinct: bool = False
    for_update: bool = False

    @property
    def has_aggregates(self) -> bool:
        for item in self.items:
            if item.expr is None:
                continue
            for node in item.expr.walk():
                if isinstance(node, FuncCall) and node.is_aggregate:
                    return True
        return False


@dataclass(frozen=True)
class Insert(Statement):
    table: TableRef
    columns: tuple[str, ...]
    values: tuple[Expr, ...]


@dataclass(frozen=True)
class Assignment:
    column: str
    value: Expr


@dataclass(frozen=True)
class Update(Statement):
    table: TableRef
    assignments: tuple[Assignment, ...]
    where: Optional[Expr] = None


@dataclass(frozen=True)
class Delete(Statement):
    table: TableRef
    where: Optional[Expr] = None


def count_parameters(stmt: Statement) -> int:
    """Number of ``?`` placeholders in a statement."""
    exprs: list[Expr] = []
    if isinstance(stmt, Select):
        for item in stmt.items:
            if item.expr is not None:
                exprs.append(item.expr)
        if stmt.where is not None:
            exprs.append(stmt.where)
        exprs.extend(stmt.group_by)
        exprs.extend(o.expr for o in stmt.order_by)
        for join in stmt.joins:
            exprs.append(join.condition)
        if stmt.limit is not None:
            exprs.append(stmt.limit)
    elif isinstance(stmt, Insert):
        exprs.extend(stmt.values)
    elif isinstance(stmt, Update):
        exprs.extend(a.value for a in stmt.assignments)
        if stmt.where is not None:
            exprs.append(stmt.where)
    elif isinstance(stmt, Delete):
        if stmt.where is not None:
            exprs.append(stmt.where)
    count = 0
    for expr in exprs:
        for node in expr.walk():
            if isinstance(node, Parameter):
                count = max(count, node.index + 1)
    return count
