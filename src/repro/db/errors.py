"""Exception hierarchy for the database substrate."""

from __future__ import annotations


class DatabaseError(Exception):
    """Base class for all errors raised by :mod:`repro.db`."""


class SqlSyntaxError(DatabaseError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class PlanError(DatabaseError):
    """The statement parsed but could not be planned (e.g. bad column)."""


class ExecutionError(DatabaseError):
    """A runtime failure while executing a planned statement."""


class IntegrityError(DatabaseError):
    """A constraint violation (duplicate primary key, null in NOT NULL)."""


class UnknownTableError(PlanError):
    """Referenced table does not exist."""

    def __init__(self, table: str) -> None:
        self.table = table
        super().__init__(f"unknown table {table!r}")


class UnknownColumnError(PlanError):
    """Referenced column does not exist."""

    def __init__(self, column: str, table: str | None = None) -> None:
        self.column = column
        self.table = table
        where = f" in table {table!r}" if table else ""
        super().__init__(f"unknown column {column!r}{where}")


class TransactionError(DatabaseError):
    """Misuse of the transaction API (e.g. operating on a closed txn)."""


class ShardError(DatabaseError):
    """Invalid sharded-database configuration (zero shards, shard key
    not part of the primary key, unknown shard-key column, ...)."""


class ShardRoutingError(ShardError):
    """The statement cannot be routed against the sharding scheme
    (cross-shard join, update of a shard-key column, ...)."""


class ShardDownError(ShardError):
    """The target shard's primary is crashed and no promotion has
    happened yet; callers should abort and retry after failover."""

    def __init__(self, shard: int) -> None:
        self.shard = shard
        super().__init__(f"shard {shard} primary is down")


class TwoPhaseAbortError(TransactionError):
    """A distributed transaction was aborted because a participant
    shard failed (crash or failover) before the commit decision."""

    def __init__(self, shard: int, phase: str) -> None:
        self.shard = shard
        self.phase = phase
        super().__init__(
            f"distributed transaction aborted: shard {shard} failed "
            f"during {phase}"
        )


class WalError(DatabaseError):
    """A write-ahead-log failure (unusable log directory, missing
    checkpoint for a non-empty log, malformed metadata, ...)."""


class WalCorruptionError(WalError):
    """A complete WAL frame failed validation (bad CRC, broken header,
    non-monotone LSN).  Distinct from a *torn* final frame, which is
    the expected shape of a crash mid-append and is tolerated."""

    def __init__(self, path: object, lsn: int, detail: str = "") -> None:
        self.path = str(path)
        self.lsn = lsn
        message = f"corrupt WAL frame at LSN {lsn} in {self.path}"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class DeadlockError(TransactionError):
    """The lock manager chose this transaction as a deadlock victim."""

    def __init__(self, txn_id: int, cycle: list[int]) -> None:
        self.txn_id = txn_id
        self.cycle = cycle
        super().__init__(
            f"transaction {txn_id} aborted to break deadlock cycle {cycle}"
        )


class LockTimeoutError(TransactionError):
    """A lock could not be acquired within the configured timeout."""

    def __init__(self, txn_id: int, resource: object) -> None:
        self.txn_id = txn_id
        self.resource = resource
        super().__init__(f"transaction {txn_id} timed out waiting for {resource!r}")
