"""Sharded database tier: horizontal partitioning plus a statement router.

The paper's deployment has one application server talking to one
database server.  This module breaks that last single-server
assumption: a :class:`ShardedDatabase` hash- or range-partitions each
table across N independent :class:`~repro.db.engine.Database`
instances, and a :class:`ShardedConnection` routes planned statements:

* **single-shard** -- every sharded table in the statement has its
  full shard key bound by equality predicates (extracted from the
  planner's recorded ASTs and :class:`~repro.db.sql.planner.Scope`),
  so the whole plan executes point-to-point on one shard, through the
  tree executor or a per-shard compiled plan;
* **scatter-gather** -- an unkeyed scan/aggregate over one sharded
  table fans out to every shard and the router merges the per-shard
  streams back into *global scan order* before running the shared
  SELECT tail (:func:`~repro.db.sql.executor.select_output_rows`), so
  ORDER BY / GROUP BY / DISTINCT / LIMIT semantics -- including group
  emission order and sort-tie order -- are bit-identical to a single
  server;
* **broadcast** -- mutations of replicated tables apply to every
  shard's copy in lockstep;
* **pinned** -- reads touching only replicated tables run on the
  connection's current affinity shard.

Two invariants make the scatter merge exact rather than best-effort:
partitions of one logical table share a global rowid allocator (see
:meth:`~repro.db.engine.Table.use_rowid_counter`), and the row store
stays in ascending-rowid scan order across rollbacks.  Ordering keys
per access path mirror the single-server executor: rowid for scans,
pk and hash-index lookups; (index key, rowid) for ordered-index range
scans.

Cross-shard transactions run two-phase commit through
:class:`~repro.db.txn.ShardedTransaction`, with per-shard undo logs
and per-shard lock managers.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Iterator, Optional, Sequence

from repro.db.catalog import Column, IndexSpec, TableSchema
from repro.db.engine import Database, RowidAllocator, Table
from repro.db.errors import (
    ExecutionError,
    ShardDownError,
    ShardError,
    ShardRoutingError,
    TransactionError,
    TwoPhaseAbortError,
)
from repro.db.index import _sortable
from repro.db.jdbc import (
    DEFAULT_PLAN_CACHE_SIZE,
    CallObserver,
    PlanCacheStats,
    ResultSet,
)
from repro.db.sql.ast import (
    BinaryOp,
    ColumnRef,
    Expr,
    Select,
    Statement,
)
from repro.db.sql.codegen_plan import (
    SourcePlan,
    maybe_compile_plan_source,
)
from repro.db.sql.compile_plan import (
    CompiledPlan,
    maybe_compile_plan,
    resolve_sql_exec_mode,
)
from repro.db.sql.executor import (
    Executor,
    StatementResult,
    select_output_rows,
)
from repro.db.sql.parser import parse
from repro.db.sql.planner import (
    Compiled,
    DeletePlan,
    InsertPlan,
    Plan,
    Planner,
    Scope,
    SelectPlan,
    TableAccess,
    UpdatePlan,
    _refs_only,
    _split_conjuncts,
    compile_expr,
)
from repro.db.replica import PromotionReport, ReplicaGroup
from repro.db.txn import LockManager, ShardedTransaction, TxnState
from repro.obs.trace import NULL_TRACER

SHARD_STRATEGIES = ("hash", "mod", "range")


def _canonical_key_value(value: Any) -> Any:
    """Collapse values the engine treats as equal onto one token.

    Python equality (and therefore index lookup) makes ``1``, ``1.0``
    and ``True`` the same key, so the router must send them to the
    same shard: numerics canonicalize to ``('i', int)`` when integral
    and ``('f', repr(float))`` otherwise.
    """
    if isinstance(value, bool):
        return ("i", int(value))
    if isinstance(value, int):
        return ("i", value)
    if isinstance(value, float):
        if value == int(value):
            return ("i", int(value))
        return ("f", repr(value))
    return value


def stable_shard_hash(values: tuple) -> int:
    """Deterministic hash of a key tuple (process- and run-stable).

    Python's own ``hash`` is salted for strings, so a router using it
    would route differently across runs; CRC32 over the canonicalized
    repr keeps placement reproducible and type-insensitive for
    numerically equal keys.
    """
    canonical = tuple(_canonical_key_value(v) for v in values)
    return zlib.crc32(repr(canonical).encode("utf-8"))


@dataclass(frozen=True)
class TableSharding:
    """How one table is split across shards.

    ``columns`` name the shard key (must be a subset of the table's
    primary key, so uniqueness checks stay local to one shard).
    ``strategy`` is one of:

    * ``hash`` -- :func:`stable_shard_hash` of the key tuple modulo N;
    * ``mod`` -- the first key column (an int) modulo N, e.g. the
      warehouse-affine TPC-C placement;
    * ``range`` -- ``boundaries`` holds ascending *exclusive* upper
      bounds for shards 0..k-1 on the first key column; values at or
      above the last boundary go to shard k.
    """

    columns: tuple[str, ...]
    strategy: str = "hash"
    boundaries: tuple = ()

    def __post_init__(self) -> None:
        if not self.columns:
            raise ShardError("a sharded table needs at least one key column")
        if self.strategy not in SHARD_STRATEGIES:
            raise ShardError(
                f"unknown shard strategy {self.strategy!r}; "
                f"options: {SHARD_STRATEGIES}"
            )
        if self.strategy == "range" and not self.boundaries:
            raise ShardError("range sharding needs boundaries")
        object.__setattr__(
            self, "columns", tuple(c.lower() for c in self.columns)
        )

    def shard_for(self, key_values: tuple, n_shards: int) -> int:
        if self.strategy == "mod":
            first = _canonical_key_value(key_values[0])
            if isinstance(first, tuple) and first[0] == "i":
                return first[1] % n_shards
            return stable_shard_hash(key_values) % n_shards
        if self.strategy == "range":
            shard = 0
            first = key_values[0]
            for bound in self.boundaries:
                try:
                    below = first is not None and first < bound
                except TypeError:
                    return stable_shard_hash(key_values) % n_shards
                if below:
                    break
                shard += 1
            if shard >= n_shards:
                raise ShardError(
                    f"range boundaries map key {key_values!r} to shard "
                    f"{shard}, but only {n_shards} shard(s) exist"
                )
            return shard
        return stable_shard_hash(key_values) % n_shards


class ShardingScheme:
    """Table name -> :class:`TableSharding` (absent = replicated).

    Replication is the default: small dimension tables (TPC-C ``item``)
    keep a full copy on every shard, so joins against them stay local.
    A table may be declared replicated explicitly with ``None``, or
    sharded with a :class:`TableSharding` / a bare column sequence
    (hash strategy).
    """

    def __init__(
        self,
        tables: Optional[
            dict[str, Optional[TableSharding | Sequence[str]]]
        ] = None,
    ) -> None:
        self._tables: dict[str, Optional[TableSharding]] = {}
        for name, sharding in (tables or {}).items():
            if sharding is not None and not isinstance(sharding, TableSharding):
                sharding = TableSharding(columns=tuple(sharding))
            self._tables[name.lower()] = sharding

    def add(self, table: str, sharding: Optional[TableSharding]) -> None:
        self._tables[table.lower()] = sharding

    def sharding(self, table: str) -> Optional[TableSharding]:
        return self._tables.get(table.lower())

    def sharded_tables(self) -> list[str]:
        return sorted(t for t, s in self._tables.items() if s is not None)

    def shard_for(self, table: str, key_values: tuple, n_shards: int) -> int:
        sharding = self.sharding(table)
        if sharding is None:
            raise ShardError(f"table {table!r} is not sharded")
        return sharding.shard_for(key_values, n_shards)


class ShardedDatabase:
    """N independent :class:`Database` shards behind one logical schema.

    Every shard holds the full catalog; sharded tables hold disjoint
    row subsets (sharing a global rowid allocator), replicated tables
    hold identical full copies.  All access goes through a
    :class:`ShardedConnection`; the loader fast path
    (:meth:`insert`) routes direct engine inserts the same way.
    """

    def __init__(
        self,
        name: str = "main",
        shards: int = 2,
        scheme: Optional[ShardingScheme] = None,
        replicas: int = 0,
    ) -> None:
        if shards < 1:
            raise ShardError("a sharded database needs at least one shard")
        if replicas < 0:
            raise ShardError("replicas must be >= 0")
        self.name = name
        self.shards = [Database(f"{name}/shard{i}") for i in range(shards)]
        self.scheme = scheme if scheme is not None else ShardingScheme()
        # With replicas > 0 every shard becomes a replica group: the
        # entry in ``self.shards`` is always the group's *current*
        # primary (promote() swaps it in place, so routers holding the
        # shards list see the new primary immediately).
        self.replicas = replicas
        self.groups: list[Optional[ReplicaGroup]] = [
            ReplicaGroup(shard, replicas) if replicas else None
            for shard in self.shards
        ]
        # Set by repro.db.wal.attach_wal; when present, mutations are
        # made durable (per-shard redo frames + coordinator decision
        # records) and implicit statement transactions capture redo.
        self.wal_manager = None

    @property
    def replicated(self) -> bool:
        return self.replicas > 0

    @classmethod
    def from_database(
        cls,
        database: Database,
        shards: int,
        scheme: ShardingScheme,
        replicas: int = 0,
    ) -> "ShardedDatabase":
        """Shard an existing single-server database.

        Recreates the schema on every shard and routes each table's
        rows in rowid order, so per-table rowids in the sharded
        deployment match the source exactly (the property the
        differential test harness compares against).
        """
        sharded = cls(
            database.name, shards=shards, scheme=scheme, replicas=replicas
        )
        for table in database.tables():
            schema = table.schema
            sharded.create_table(
                schema.name, schema.columns, schema.primary_key,
                schema.indexes,
            )
            for _, row in table.scan():
                sharded.insert(schema.name, row)
        return sharded

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def catalog(self):
        return self.shards[0].catalog

    # -- schema ---------------------------------------------------------------

    def _validate_sharding(
        self, schema: TableSchema, sharding: TableSharding
    ) -> None:
        pk = {c.lower() for c in schema.primary_key}
        for col in sharding.columns:
            if not schema.has_column(col):
                raise ShardError(
                    f"shard key column {col!r} does not exist in table "
                    f"{schema.name!r}"
                )
            if col not in pk:
                raise ShardError(
                    f"shard key column {col!r} of table {schema.name!r} "
                    "must be part of the primary key (uniqueness is "
                    "enforced per shard)"
                )
        for spec in schema.indexes:
            self._validate_unique_index(schema.name, sharding, spec)

    @staticmethod
    def _validate_unique_index(
        table: str, sharding: TableSharding, spec: IndexSpec
    ) -> None:
        if not spec.unique:
            return
        index_cols = {c.lower() for c in spec.columns}
        if not set(sharding.columns) <= index_cols:
            raise ShardError(
                f"unique index {spec.name!r} on sharded table {table!r} "
                "must include the shard key columns"
            )

    def create_table(
        self,
        name: str,
        columns: Sequence[Column | tuple],
        primary_key: Sequence[str],
        indexes: Sequence[IndexSpec] = (),
    ) -> None:
        tables = [
            shard.create_table(name, columns, primary_key, indexes)
            for shard in self.shards
        ]
        sharding = self.scheme.sharding(name)
        if sharding is not None:
            self._validate_sharding(tables[0].schema, sharding)
            # One global rowid sequence: merged per-shard scans
            # reconstruct single-server insertion order exactly.
            counter = RowidAllocator()
            for table in tables:
                table.use_rowid_counter(counter)
        # DDL is not logged: mirror it onto every replica now.  The
        # mirror runs after counter sharing so replica tables pick up
        # the live allocator (global for sharded tables) and a
        # promoted replica keeps allocating from the right position.
        for group in self.groups:
            if group is not None:
                group.mirror_create_table(name, columns, primary_key, indexes)

    def create_index(self, table_name: str, spec: IndexSpec) -> None:
        sharding = self.scheme.sharding(table_name)
        if sharding is not None:
            self._validate_unique_index(table_name, sharding, spec)
        for shard in self.shards:
            shard.table(table_name).create_index(spec)
        for group in self.groups:
            if group is not None:
                for replica in group.replicas:
                    replica.database.table(table_name).create_index(spec)

    def drop_table(self, name: str) -> None:
        for shard in self.shards:
            shard.drop_table(name)
        for group in self.groups:
            if group is not None:
                for replica in group.replicas:
                    replica.database.drop_table(name)

    def has_table(self, name: str) -> bool:
        return self.shards[0].has_table(name)

    def table(self, name: str, shard: int = 0) -> Table:
        return self.shards[shard].table(name)

    # -- loading --------------------------------------------------------------

    def shard_for_row(self, table_name: str, values: Sequence[Any]) -> int:
        """The owning shard of a full row of ``table_name``."""
        sharding = self.scheme.sharding(table_name)
        if sharding is None:
            raise ShardError(f"table {table_name!r} is replicated")
        schema = self.shards[0].table(table_name).schema
        key = tuple(values[schema.offset(col)] for col in sharding.columns)
        return sharding.shard_for(key, self.n_shards)

    def insert(self, table_name: str, values: Sequence[Any]) -> int:
        """Route one direct engine insert (bulk-loader fast path)."""
        if self.scheme.sharding(table_name) is None:
            rowid = 0
            for index, shard in enumerate(self.shards):
                table = shard.table(table_name)
                rowid, _ = table.insert(values)
                group = self.groups[index]
                if group is not None:
                    group.bootstrap_insert(
                        table_name, rowid, table.fetch(rowid)
                    )
            return rowid
        shard = self.shard_for_row(table_name, values)
        table = self.shards[shard].table(table_name)
        rowid, _ = table.insert(values)
        group = self.groups[shard]
        if group is not None:
            group.bootstrap_insert(table_name, rowid, table.fetch(rowid))
        return rowid

    # -- replication / failover ----------------------------------------------

    def generation(self, shard: int) -> int:
        """The replica group's promotion generation (0 unreplicated).
        Routers compare this against a cached value to notice that a
        promotion replaced the shard's database object."""
        group = self.groups[shard]
        return group.generation if group is not None else 0

    def is_down(self, shard: int) -> bool:
        group = self.groups[shard]
        return group.crashed if group is not None else False

    def crash_primary(self, shard: int) -> None:
        """Kill ``shard``'s primary; routing there fails with
        :class:`ShardDownError` until :meth:`promote`."""
        group = self.groups[shard]
        if group is None:
            raise ShardError(
                f"shard {shard} has no replicas; cannot survive a crash"
            )
        group.crash_primary()

    def promote(self, shard: int) -> PromotionReport:
        """Fail ``shard`` over to its most caught-up replica."""
        group = self.groups[shard]
        if group is None:
            raise ShardError(f"shard {shard} is not replicated")
        report = group.promote()
        self.shards[shard] = group.primary
        return report

    def replication_lag(self, shard: int) -> list[int]:
        group = self.groups[shard]
        return group.replication_lag() if group is not None else []

    def assert_replica_groups_consistent(self) -> None:
        """Catch every replica up, then require bit-identity with its
        primary (the tentpole's zero-divergence check)."""
        for group in self.groups:
            if group is not None:
                group.assert_replicas_consistent()

    # -- introspection --------------------------------------------------------

    def logical_rows(self, table_name: str) -> dict[int, tuple]:
        """rowid -> row across shards, in global rowid order.

        For replicated tables this is shard 0's copy (all copies are
        identical by construction).
        """
        if self.scheme.sharding(table_name) is None:
            return dict(self.shards[0].table(table_name).scan())
        merged: dict[int, tuple] = {}
        for shard in self.shards:
            merged.update(shard.table(table_name).scan())
        return dict(sorted(merged.items()))

    def total_rows(self) -> int:
        """Logical row count (replicated copies counted once)."""
        return sum(
            len(self.logical_rows(name)) for name in self.catalog.names()
        )


# ---------------------------------------------------------------------------
# Statement routing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _KeyedTable:
    """One sharded table with shard-key value closures ((env, params))."""

    table: str
    getters: tuple[Compiled, ...]


@dataclass(frozen=True)
class RoutePlan:
    """Where a prepared statement executes.

    ``single`` routes point-to-point via ``keyed`` shard-key getters
    (evaluated per execution, since keys are usually ``?`` parameters);
    ``scatter`` fans ``scatter_target`` out to every shard and merges;
    ``broadcast`` applies a replicated-table mutation to every copy;
    ``pinned`` runs a replicated-only read on the affinity shard.
    """

    mode: str  # single | scatter | broadcast | pinned
    keyed: tuple[_KeyedTable, ...] = ()
    scatter_target: Optional[TableAccess] = None


_NULL_GETTER: Compiled = lambda env, params: None  # noqa: E731


def _equality_conjuncts(
    stmt: Statement, scope: Scope
) -> dict[tuple[str, str], Expr]:
    """(binding, column) -> value AST for sargable shard-key equalities.

    Mirrors the planner's predicate extraction, restricted to ``=``
    with a parameter/literal/expression side free of column references
    (so the router can evaluate it before choosing a shard).
    """
    conjuncts = list(_split_conjuncts(getattr(stmt, "where", None)))
    if isinstance(stmt, Select):
        for join in stmt.joins:
            conjuncts.extend(_split_conjuncts(join.condition))
    equalities: dict[tuple[str, str], Expr] = {}
    for conj in conjuncts:
        if not isinstance(conj, BinaryOp) or conj.op != "=":
            continue
        for left, right in ((conj.left, conj.right), (conj.right, conj.left)):
            if not isinstance(left, ColumnRef):
                continue
            try:
                binding, _ = scope.resolve(left)
            except Exception:
                continue
            if not _refs_only(right, set(), scope):
                continue
            equalities.setdefault((binding, left.column.lower()), right)
    return equalities


def route_statement(
    scheme: ShardingScheme, stmt: Statement, plan: Plan
) -> RoutePlan:
    """Decide the routing mode for one planned statement."""
    if isinstance(plan, InsertPlan):
        sharding = scheme.sharding(plan.table_name)
        if sharding is None:
            return RoutePlan(mode="broadcast")
        provided = {c.lower(): i for i, c in enumerate(plan.columns)}
        getters = []
        for col in sharding.columns:
            index = provided.get(col)
            # A missing shard-key column inserts NULL and fails the
            # NOT-NULL primary-key check on whichever shard NULL maps
            # to -- identical to the single-server error.
            getters.append(
                plan.values[index] if index is not None else _NULL_GETTER
            )
        return RoutePlan(
            mode="single",
            keyed=(_KeyedTable(plan.table_name, tuple(getters)),),
        )

    if isinstance(plan, SelectPlan):
        accesses = list(plan.tables)
        scope = plan.scope
    else:
        accesses = [plan.target]
        scope = plan.scope

    if isinstance(plan, UpdatePlan):
        sharding = scheme.sharding(plan.target.table_name)
        if sharding is not None:
            for column, _ in plan.assignments:
                if column.lower() in sharding.columns:
                    raise ShardRoutingError(
                        f"cannot update shard key column {column!r} of "
                        f"table {plan.target.table_name!r} (rows would "
                        "have to migrate between shards)"
                    )

    sharded = [
        (access, scheme.sharding(access.table_name))
        for access in accesses
        if scheme.sharding(access.table_name) is not None
    ]
    if not sharded:
        if isinstance(plan, SelectPlan):
            return RoutePlan(mode="pinned")
        return RoutePlan(mode="broadcast")

    if scope is None:
        raise ShardRoutingError(
            "cannot route a plan without planner scope metadata"
        )
    equalities = _equality_conjuncts(stmt, scope)
    keyed: list[_KeyedTable] = []
    unkeyed: list[TableAccess] = []
    for access, sharding in sharded:
        getters = []
        for col in sharding.columns:
            ast = equalities.get((access.binding, col))
            if ast is None:
                break
            getters.append(compile_expr(ast, Scope()))
        else:
            keyed.append(_KeyedTable(access.table_name, tuple(getters)))
            continue
        unkeyed.append(access)

    if not unkeyed:
        return RoutePlan(mode="single", keyed=tuple(keyed))

    if isinstance(plan, (UpdatePlan, DeletePlan)):
        return RoutePlan(mode="scatter", scatter_target=plan.target)

    if len(sharded) == 1 and unkeyed[0] is plan.tables[0]:
        return RoutePlan(mode="scatter", scatter_target=plan.tables[0])

    names = sorted({a.table_name for a in unkeyed})
    raise ShardRoutingError(
        f"cannot route SELECT: sharded table(s) {names} lack full "
        "shard-key equality predicates, and scatter-gather requires "
        "the statement's only sharded table to drive the join (all "
        "other tables replicated)"
    )


# ---------------------------------------------------------------------------
# The router connection
# ---------------------------------------------------------------------------


class ShardPreparedStatement:
    """A parsed, planned and *routed* statement.

    Compiled plans are per shard (each binds one shard's tables and
    indexes) and minted lazily on the first execution routed there.
    """

    def __init__(
        self,
        connection: "ShardedConnection",
        sql: str,
        plan: Plan,
        route: RoutePlan,
    ) -> None:
        self.connection = connection
        self.sql = sql
        self.plan = plan
        self.route = route
        # Keyed by shard; the value remembers the replica-group
        # generation the plan was compiled under, because a compiled
        # plan binds the primary's table/index objects and must be
        # re-minted after a failover swaps the primary.
        self._compiled: dict[
            int, tuple[int, Optional[CompiledPlan | SourcePlan]]
        ] = {}

    @property
    def is_query(self) -> bool:
        return isinstance(self.plan, SelectPlan)

    def compiled_for(self, shard: int) -> Optional[CompiledPlan | SourcePlan]:
        mode = self.connection.sql_exec
        if mode not in ("compiled", "source"):
            return None
        generation = self.connection.database.generation(shard)
        cached = self._compiled.get(shard)
        if cached is not None and cached[0] == generation:
            return cached[1]
        stats = self.connection.plan_cache_stats
        target = self.connection.database.shards[shard]
        compiled: Optional[CompiledPlan | SourcePlan] = None
        if mode == "source":
            compiled = maybe_compile_plan_source(
                self.plan, target,
                tracer=getattr(self.connection, "tracer", None),
            )
            if compiled is not None:
                stats.source_plans += 1
        if compiled is None:
            compiled = maybe_compile_plan(self.plan, target)
        if compiled is not None:
            stats.compiled_plans += 1
        self._compiled[shard] = (generation, compiled)
        return compiled

    def query(self, *params: Any) -> ResultSet:
        if not self.is_query:
            raise ExecutionError(f"not a query: {self.sql!r}")
        return self.connection._run(self, params)  # noqa: SLF001

    def update(self, *params: Any) -> int:
        if self.is_query:
            raise ExecutionError(f"not an update: {self.sql!r}")
        return self.connection._run(self, params)  # noqa: SLF001

    def execute(self, *params: Any) -> ResultSet | int:
        return self.query(*params) if self.is_query else self.update(*params)


class ShardedConnection:
    """Client connection to a :class:`ShardedDatabase`.

    Mirrors :class:`~repro.db.jdbc.Connection` -- prepared statements
    with a bounded LRU plan cache, ``?`` parameters, autocommit,
    explicit transactions -- but transactions are
    :class:`~repro.db.txn.ShardedTransaction` coordinators and every
    statement goes through the router.  ``clock`` /
    ``one_way_latency`` price the two-phase commit message rounds on a
    virtual clock when provided.
    """

    def __init__(
        self,
        database: ShardedDatabase,
        *,
        use_locks: bool = False,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
        sql_exec: Optional[str] = None,
        clock=None,
        one_way_latency: float = 0.0,
        replica_reads: bool = False,
    ) -> None:
        self.database = database
        self.scheme = database.scheme
        self.planner = Planner(database.shards[0])
        self.executors = [Executor(shard) for shard in database.shards]
        self.sql_exec = resolve_sql_exec_mode(sql_exec)
        # Replication state: per-shard generation each Executor was
        # built against, read-your-writes session watermarks (highest
        # commit LSN this connection produced per shard), and cached
        # executors over replica databases for watermark-safe reads.
        self._executor_gens = [database.generation(i) for i in range(database.n_shards)]
        self.replica_reads = replica_reads and database.replicated
        self._watermarks: dict[int, int] = {}
        self._replica_executors: dict[int, tuple[Any, Executor]] = {}
        self.replica_read_count = 0
        self.replica_fallback_count = 0
        # Observability: the serving engine swaps in its tracer so
        # router dispatch and 2PC rounds land on the shared timeline.
        self.tracer = NULL_TRACER
        # 2PC outcome counters surfaced by serve reports.
        self.two_pc_aborts = 0
        self.two_pc_commits = 0
        self.lock_managers: Optional[list[Optional[LockManager]]] = (
            [LockManager() for _ in database.shards] if use_locks else None
        )
        self.clock = clock
        self.one_way_latency = one_way_latency
        # Keyed on (executor mode, sql) so flipping ``sql_exec`` on a
        # live connection cannot serve a plan minted for another rung.
        self._plan_cache: OrderedDict[
            tuple[str, str], ShardPreparedStatement
        ] = OrderedDict()
        self.plan_cache_size = max(1, plan_cache_size)
        self.plan_cache_stats = PlanCacheStats()
        self._txn: Optional[ShardedTransaction] = None
        self.observer: Optional[CallObserver] = None
        self.closed = False
        self.calls = 0
        # Replicated-only reads run on the shard the connection last
        # routed to: co-located with the conversation, like reading a
        # dimension table on whichever server you are already at.
        self._affinity = 0

    # -- statement preparation ------------------------------------------------

    def prepare(self, sql: str) -> ShardPreparedStatement:
        self._check_open()
        cache = self._plan_cache
        cache_key = (self.sql_exec, sql)
        cached = cache.get(cache_key)
        stats = self.plan_cache_stats
        if cached is not None:
            cache.move_to_end(cache_key)
            stats.hits += 1
            return cached
        stats.misses += 1
        stmt = parse(sql)
        plan = self.planner.plan(stmt)
        route = route_statement(self.scheme, stmt, plan)
        prepared = ShardPreparedStatement(self, sql, plan, route)
        cache[cache_key] = prepared
        if len(cache) > self.plan_cache_size:
            cache.popitem(last=False)
            stats.evictions += 1
        return prepared

    # -- execution ----------------------------------------------------------------

    def _run(self, prepared: ShardPreparedStatement, params: Sequence[Any]):
        self._check_open()
        self.calls += 1
        auto = False
        txn = self._txn
        if txn is None and (
            self.lock_managers is not None
            or (
                not prepared.is_query
                and (
                    self.database.replicated
                    or self.database.wal_manager is not None
                )
            )
        ):
            # With locks off, a replicated or WAL-backed tier still
            # needs an implicit transaction around mutations: redo
            # capture, commit-time log shipping and durable logging
            # all hang off the transaction layer.
            txn = self._new_transaction()
            auto = True
        try:
            result = self._execute_routed(prepared, params, txn)
        except BaseException:
            if auto and txn is not None:
                if self.lock_managers is not None:
                    # Statement atomicity for the implicit transaction:
                    # a failed autocommit statement must not strand
                    # branch locks (wedging the shard) or abandon
                    # partial cross-shard mutations with their undo
                    # discarded.
                    txn.rollback()
                else:
                    # No locks: the single server persists a failed
                    # statement's partial mutations, so the replicated
                    # tier must ship them too or replicas diverge from
                    # their primary.
                    try:
                        self._commit_auto(txn)
                    except TransactionError:
                        if txn.state in (TxnState.ACTIVE, TxnState.PREPARED):
                            txn.rollback()
            raise
        if auto and txn is not None:
            self._commit_auto(txn)
        if self.observer is not None:
            kind = "query" if prepared.is_query else "update"
            self.observer(
                kind, prepared.sql, result.rows_touched, result.rowcount
            )
        if prepared.is_query:
            return ResultSet(result)
        return result.rowcount

    def _new_transaction(self) -> ShardedTransaction:
        return ShardedTransaction(
            self.database.shards,
            self.lock_managers,
            clock=self.clock,
            one_way_latency=self.one_way_latency,
            groups=self.database.groups if self.database.replicated else None,
            tracer=self.tracer,
            wal=self.database.wal_manager,
        )

    def _commit_auto(self, txn: ShardedTransaction) -> None:
        try:
            txn.commit()
        except TwoPhaseAbortError:
            self.two_pc_aborts += 1
            raise
        self.two_pc_commits += 1
        self._absorb_watermarks(txn)

    def _absorb_watermarks(self, txn: ShardedTransaction) -> None:
        for shard, lsn in txn.commit_lsns.items():
            if lsn > self._watermarks.get(shard, 0):
                self._watermarks[shard] = lsn

    def _branch(self, txn: Optional[ShardedTransaction], shard: int):
        return txn.branch(shard) if txn is not None else None

    def _shard_ready(self, shard: int) -> None:
        """Refuse a down shard; refresh state bound to a dead primary.

        Tree plans are name-based and survive promotion untouched, but
        each shard's :class:`Executor` holds the database object it was
        built on -- a generation bump means a promotion swapped the
        primary, so the executor is re-minted over the new one.
        """
        if not self.database.replicated:
            return
        group = self.database.groups[shard]
        if group.crashed:
            raise ShardDownError(shard)
        generation = group.generation
        if generation != self._executor_gens[shard]:
            self.executors[shard] = Executor(self.database.shards[shard])
            self._executor_gens[shard] = generation

    def _execute_routed(
        self,
        prepared: ShardPreparedStatement,
        params: Sequence[Any],
        txn: Optional[ShardedTransaction],
    ) -> StatementResult:
        if not self.tracer.active:
            return self._route_and_run(prepared, params, txn, None)
        span = self.tracer.span(
            "router.dispatch", track="router", mode=prepared.route.mode
        )
        try:
            return self._route_and_run(prepared, params, txn, span)
        finally:
            span.finish()

    def _route_and_run(
        self,
        prepared: ShardPreparedStatement,
        params: Sequence[Any],
        txn: Optional[ShardedTransaction],
        span,
    ) -> StatementResult:
        route = prepared.route
        plan = prepared.plan
        if route.mode == "single":
            shard = self._resolve_single_shard(route, params)
            self._affinity = shard
            if span is not None:
                span.annotate(shard=shard)
            if self._can_read_replica(prepared, txn):
                result = self._run_on_replica(prepared, shard, params)
                if result is not None:
                    if span is not None:
                        span.annotate(replica=True)
                    return result
            return self._run_on_shard(prepared, shard, params, txn)
        if route.mode == "pinned":
            if span is not None:
                span.annotate(shard=self._affinity)
            if self._can_read_replica(prepared, txn):
                result = self._run_on_replica(prepared, self._affinity, params)
                if result is not None:
                    if span is not None:
                        span.annotate(replica=True)
                    return result
            return self._run_on_shard(prepared, self._affinity, params, txn)
        if route.mode == "broadcast":
            return self._run_broadcast(prepared, params, txn)
        assert route.scatter_target is not None
        if isinstance(plan, SelectPlan):
            return self._scatter_select(plan, params, txn)
        if isinstance(plan, UpdatePlan):
            return self._scatter_update(plan, params, txn)
        assert isinstance(plan, DeletePlan)
        return self._scatter_delete(plan, params, txn)

    def _resolve_single_shard(
        self, route: RoutePlan, params: Sequence[Any]
    ) -> int:
        shards = set()
        for keyed in route.keyed:
            values = tuple(getter({}, params) for getter in keyed.getters)
            shards.add(
                self.scheme.shard_for(
                    keyed.table, values, self.database.n_shards
                )
            )
        if len(shards) != 1:
            raise ShardRoutingError(
                "statement binds shard keys on different shards "
                f"{sorted(shards)}; cross-shard joins are not supported"
            )
        return shards.pop()

    def _can_read_replica(
        self,
        prepared: ShardPreparedStatement,
        txn: Optional[ShardedTransaction],
    ) -> bool:
        """Read-your-writes replica offload applies to plain reads
        only: a query outside any transaction (open transactions must
        see their own uncommitted branch state on the primary)."""
        return self.replica_reads and txn is None and prepared.is_query

    def _run_on_replica(
        self,
        prepared: ShardPreparedStatement,
        shard: int,
        params: Sequence[Any],
    ) -> Optional[StatementResult]:
        """Serve a read from a caught-up replica, or None to fall back
        to the primary (every replica behind the session watermark)."""
        group = self.database.groups[shard]
        replica_db = group.read_replica(self._watermarks.get(shard, 0))
        if replica_db is None:
            # Every replica is behind the session watermark (or
            # partitioned away): the read falls back to the primary.
            self.replica_fallback_count += 1
            return None
        cached = self._replica_executors.get(shard)
        if cached is None or cached[0] is not replica_db:
            cached = (replica_db, Executor(replica_db))
            self._replica_executors[shard] = cached
        self.replica_read_count += 1
        return cached[1].execute(prepared.plan, params, None)

    def _run_on_shard(
        self,
        prepared: ShardPreparedStatement,
        shard: int,
        params: Sequence[Any],
        txn: Optional[ShardedTransaction],
    ) -> StatementResult:
        self._shard_ready(shard)
        branch = self._branch(txn, shard)
        compiled = prepared.compiled_for(shard)
        if compiled is not None:
            return compiled.run(params, branch)
        return self.executors[shard].execute(prepared.plan, params, branch)

    def _run_broadcast(
        self,
        prepared: ShardPreparedStatement,
        params: Sequence[Any],
        txn: Optional[ShardedTransaction],
    ) -> StatementResult:
        """Apply a replicated-table statement to every shard's copy.

        A mid-statement failure is replayed on every copy (all copies
        hold identical rows, so each fails at the same row with the
        same partial state) and the first error re-raised -- replicas
        never diverge, and the observable behavior matches the single
        server exactly.
        """
        first_result: Optional[StatementResult] = None
        first_error: Optional[BaseException] = None
        for shard in range(self.database.n_shards):
            # Refuse up front: a down shard must not leave the other
            # copies mutated (the no-locks autocommit path would commit
            # that partial broadcast and the copies would diverge).
            self._shard_ready(shard)
        for shard in range(self.database.n_shards):
            branch = self._branch(txn, shard)
            try:
                compiled = prepared.compiled_for(shard)
                if compiled is not None:
                    result = compiled.run(params, branch)
                else:
                    result = self.executors[shard].execute(
                        prepared.plan, params, branch
                    )
            except Exception as err:  # noqa: BLE001 - replayed verbatim
                if first_error is None:
                    first_error = err
                continue
            if first_result is None:
                first_result = result
        if first_error is not None:
            raise first_error
        assert first_result is not None
        return first_result

    # -- scatter-gather -------------------------------------------------------

    def _outer_order_key(
        self, table: Table, access, row: tuple, rowid: int
    ) -> tuple:
        """Global ordering key reproducing single-server candidate
        order: rowid for scan/pk/index_eq (rowids are globally
        allocated), (ranked index key, rowid) for ordered ranges."""
        if access.kind == "index_range" and access.index_name is not None:
            return (_sortable(table.index_key(access.index_name, row)), rowid)
        return (rowid,)

    def _iter_shard_outer(
        self,
        shard: int,
        target: TableAccess,
        params: Sequence[Any],
        touched: list[int],
        *,
        apply_residual: bool,
    ) -> Iterator[tuple[tuple, int, tuple]]:
        """Yield (order_key, rowid, row) for one shard's share of the
        scatter target, counting touched rows like the executor."""
        self._shard_ready(shard)
        executor = self.executors[shard]
        table = self.database.shards[shard].table(target.table_name)
        access = target.access
        for rowid in executor.candidate_rowids(table, access, {}, params):
            row = table.fetch(rowid)
            if row is None:
                continue
            touched[0] += 1
            if apply_residual and target.residual is not None:
                verdict = target.residual({target.binding: row}, params)
                if verdict is None or not verdict:
                    continue
            yield (
                self._outer_order_key(table, access, row, rowid),
                rowid,
                row,
            )

    def _scatter_select(
        self,
        plan: SelectPlan,
        params: Sequence[Any],
        txn: Optional[ShardedTransaction],
    ) -> StatementResult:
        if txn is not None:
            for shard in range(self.database.n_shards):
                branch = txn.branch(shard)
                for access in plan.tables:
                    branch.lock_table(access.table_name, exclusive=False)
        target = plan.tables[0]
        per_touched = [[0] for _ in self.database.shards]
        outer: list[tuple[tuple, int, dict]] = []
        for shard in range(self.database.n_shards):
            for okey, _, row in self._iter_shard_outer(
                shard, target, params, per_touched[shard],
                apply_residual=True,
            ):
                outer.append((okey, shard, {target.binding: row}))
        outer.sort(key=lambda item: item[0])

        has_joins = len(plan.tables) > 1

        def env_stream() -> Iterator[dict]:
            for _, shard, env in outer:
                if has_joins:
                    # Inner tables are replicated: every shard holds
                    # the full copy, so the local join is the global
                    # join for this outer row.
                    yield from self.executors[shard].join_envs(
                        plan.tables, params, per_touched[shard],
                        start=1, env=env,
                    )
                else:
                    yield env

        rows = select_output_rows(plan, env_stream(), params)
        total = self._notify_scatter("select", target.table_name, per_touched)
        result = StatementResult(columns=list(plan.column_names))
        result.rows = rows
        result.rowcount = len(rows)
        result.rows_touched = total
        return result

    def _notify_scatter(
        self, operation: str, table_name: str, per_touched: list[list[int]]
    ) -> int:
        """Report per-shard row touches; returns the total.

        Shards notify in ascending-touched order so the *dominant*
        shard fires last: the simulated cluster's observer attributes
        the statement's subsequent DB-CPU charge to the most recent
        shard, and the heaviest participant is the least-wrong home
        for a scatter statement's cost.  Untouched shards stay silent
        (no work, no attribution change); a statement that touched
        nothing anywhere still notifies the affinity shard once,
        mirroring the single server's unconditional notify.
        """
        ranked = sorted(
            range(self.database.n_shards),
            key=lambda shard: (per_touched[shard][0], shard),
        )
        total = 0
        for shard in ranked:
            touched = per_touched[shard][0]
            if touched > 0:
                self.database.shards[shard].notify(
                    operation, table_name, touched
                )
                total += touched
        if total == 0:
            self.database.shards[self._affinity].notify(
                operation, table_name, 0
            )
        return total

    def _scatter_targets(
        self,
        target: TableAccess,
        params: Sequence[Any],
        per_touched: list[list[int]],
    ) -> list[tuple[tuple, int, int]]:
        """Materialize (order_key, shard, rowid) for a scatter
        mutation, then sort into global order -- the single-server
        executor also fully materializes targets before mutating, so
        mid-statement failures happen at the same global row."""
        items: list[tuple[tuple, int, int]] = []
        for shard in range(self.database.n_shards):
            for okey, rowid, _ in self._iter_shard_outer(
                shard, target, params, per_touched[shard],
                apply_residual=True,
            ):
                items.append((okey, shard, rowid))
        items.sort(key=lambda item: item[0])
        return items

    def _scatter_update(
        self,
        plan: UpdatePlan,
        params: Sequence[Any],
        txn: Optional[ShardedTransaction],
    ) -> StatementResult:
        target = plan.target
        per_touched = [[0] for _ in self.database.shards]
        items = self._scatter_targets(target, params, per_touched)
        for _, shard, rowid in items:
            branch = self._branch(txn, shard)
            if branch is not None:
                branch.lock_row(target.table_name, rowid)
            table = self.database.shards[shard].table(target.table_name)
            row = table.get(rowid)
            env = {target.binding: row}
            changes = {
                column: expr(env, params)
                for column, expr in plan.assignments
            }
            undo = table.update(rowid, changes)
            if branch is not None:
                branch.record_undo(undo)
        total = self._notify_scatter("update", target.table_name, per_touched)
        return StatementResult(rowcount=len(items), rows_touched=total)

    def _scatter_delete(
        self,
        plan: DeletePlan,
        params: Sequence[Any],
        txn: Optional[ShardedTransaction],
    ) -> StatementResult:
        target = plan.target
        per_touched = [[0] for _ in self.database.shards]
        items = self._scatter_targets(target, params, per_touched)
        for _, shard, rowid in items:
            branch = self._branch(txn, shard)
            if branch is not None:
                branch.lock_row(target.table_name, rowid)
            table = self.database.shards[shard].table(target.table_name)
            undo = table.delete(rowid)
            if branch is not None:
                branch.record_undo(undo)
        total = self._notify_scatter("delete", target.table_name, per_touched)
        return StatementResult(rowcount=len(items), rows_touched=total)

    # -- convenience API (mirrors Connection) ---------------------------------

    def query(self, sql: str, *params: Any) -> ResultSet:
        """Parse (cached), route and run a SELECT."""
        return self.prepare(sql).query(*params)

    def query_one(self, sql: str, *params: Any):
        return self.query(sql, *params).one()

    def query_scalar(self, sql: str, *params: Any) -> Any:
        return self.query(sql, *params).scalar()

    def execute(self, sql: str, *params: Any) -> int:
        prepared = self.prepare(sql)
        if prepared.is_query:
            raise ExecutionError(
                f"use query() for SELECT statements: {sql!r}"
            )
        return prepared.update(*params)

    # -- transactions ---------------------------------------------------------------

    def begin(self) -> ShardedTransaction:
        self._check_open()
        if self._txn is not None:
            raise TransactionError("a transaction is already open")
        self._txn = self._new_transaction()
        return self._txn

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None

    def commit(self) -> None:
        if self._txn is None:
            raise TransactionError("no open transaction to commit")
        try:
            self._commit_auto(self._txn)
        finally:
            self._txn = None

    def rollback(self) -> None:
        if self._txn is None:
            raise TransactionError("no open transaction to roll back")
        self._txn.rollback()
        self._txn = None

    # -- lifecycle ----------------------------------------------------------------------

    def close(self) -> None:
        if self._txn is not None:
            self._txn.rollback()
            self._txn = None
        self.closed = True

    def _check_open(self) -> None:
        if self.closed:
            raise ExecutionError("connection is closed")

    def __enter__(self) -> "ShardedConnection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def connect_sharded(
    database: ShardedDatabase,
    *,
    use_locks: bool = False,
    plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
    sql_exec: Optional[str] = None,
    clock=None,
    one_way_latency: float = 0.0,
    replica_reads: bool = False,
) -> ShardedConnection:
    """Open a router connection to ``database``.

    ``sql_exec`` selects the statement executor for single-shard /
    broadcast statements (``tree`` / ``compiled``); scatter-gather
    statements always merge at the router.  None reads
    ``REPRO_SQL_EXEC`` (default: compiled).  ``replica_reads`` lets
    out-of-transaction point reads run on a replica that has caught up
    to this session's commit watermark (read-your-writes).
    """
    return ShardedConnection(
        database,
        use_locks=use_locks,
        plan_cache_size=plan_cache_size,
        sql_exec=sql_exec,
        clock=clock,
        one_way_latency=one_way_latency,
        replica_reads=replica_reads,
    )
