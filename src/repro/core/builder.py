"""Partition-graph construction (Section 4.2).

Combines the static analyses (control dependence, def/use, points-to,
call graph) with dynamic profile data into the weighted partition
graph.  Edge weights follow the paper exactly:

=============  =======================================
Control edge   ``LAT * cnt(e)``
Data edge      ``size(src) / BW * cnt(e)``
Update edge    ``size(src) / BW * cnt(dst)``
Statement      node weight ``cnt(s)``
Field node     weight 0
=============  =======================================

with ``cnt(e) = min(cnt(src), cnt(dst))``.

Construction is split in two so the partitioning service can cache the
expensive half and redo the cheap half:

* :func:`build_graph_structure` runs the static analyses only --
  nodes, edges, pins, co-location groups and per-edge *weight recipes*
  (:class:`WeightSpec`), no profile required;
* :func:`reweight_graph` evaluates the recorded recipes against a
  :class:`~repro.profiler.profile_data.ProfileData`, assigning numeric
  node and edge weights in place.

:func:`build_partition_graph` composes the two and is the batch
(one-shot) entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Optional

from repro.analysis.defuse import StatementAccess
from repro.analysis.interproc import CallGraph
from repro.analysis.points_to import AllocKind, PointsToResult
from repro.lang.cfg import ENTRY
from repro.lang.ir import (
    Assign,
    Atom,
    Block,
    CallKind,
    FunctionIR,
    ProgramIR,
    Stmt,
    VarRef,
)
from repro.core.partition_graph import (
    DBCODE_NODE_ID,
    Edge,
    EdgeKind,
    Node,
    NodeKind,
    PartitionGraph,
    Placement,
    array_node_id,
    entry_node_id,
    field_node_id,
    stmt_node_id,
)
from repro.profiler.profile_data import ProfileData


@dataclass
class _AggregateAccess:
    """Transitive read/write footprint used for ordering decisions."""

    var_reads: set[str] = dataclass_field(default_factory=set)
    var_writes: set[str] = dataclass_field(default_factory=set)
    field_reads: set[str] = dataclass_field(default_factory=set)
    field_writes: set[str] = dataclass_field(default_factory=set)
    array_reads: set[int] = dataclass_field(default_factory=set)
    array_writes: set[int] = dataclass_field(default_factory=set)
    effectful: bool = False

    def merge(self, other: "_AggregateAccess") -> None:
        self.var_reads |= other.var_reads
        self.var_writes |= other.var_writes
        self.field_reads |= other.field_reads
        self.field_writes |= other.field_writes
        self.array_reads |= other.array_reads
        self.array_writes |= other.array_writes
        self.effectful = self.effectful or other.effectful

    def conflicts(self, other: "_AggregateAccess") -> bool:
        if self.var_writes & other.var_writes:
            return True
        if self.var_reads & other.var_writes:
            return True
        if self.var_writes & other.var_reads:
            return True
        if (self.field_reads | self.field_writes) & other.field_writes:
            return True
        if self.field_writes & (other.field_reads | other.field_writes):
            return True
        if (self.array_reads | self.array_writes) & other.array_writes:
            return True
        if self.array_writes & (other.array_reads | other.array_writes):
            return True
        return self.effectful and other.effectful


@dataclass
class BuilderConfig:
    """Network parameters for edge weights (Section 4.2).

    ``latency`` is the one-way control-transfer latency in seconds and
    ``bandwidth`` is in bytes/second, matching the simulator defaults.
    """

    latency: float = 0.001
    bandwidth: float = 125_000_000.0
    # Statements never observed during profiling still get a small
    # weight so the solver keeps rarely-run code near its dependencies.
    unprofiled_count: int = 1


@dataclass(frozen=True)
class WeightSpec:
    """A symbolic edge-weight recipe, evaluated against a profile.

    ``kind`` is ``"lat"`` (control-transfer cost: ``factor * LAT *
    cnt``) or ``"size"`` (data-shipping cost: ``size / BW * cnt``)
    where ``cnt`` is the minimum profiled count over ``cnt_sids`` and
    ``size`` is looked up via ``size_kind`` / ``size_key``:

    =============  ==========================================
    ``assign``     ``profile.assign_size(size_key[0])``
    ``arg``        ``profile.arg_size(size_key[0])``
    ``result``     ``profile.result_size(size_key[0])``
    ``field``      ``profile.field_size(*size_key)``
    =============  ==========================================
    """

    kind: str
    cnt_sids: tuple
    factor: float = 1.0
    size_kind: str = ""
    size_key: tuple = ()

    def evaluate(self, profile: ProfileData, config: BuilderConfig) -> float:
        cnt = min(
            float(profile.count(sid) or config.unprofiled_count)
            for sid in self.cnt_sids
        )
        if self.kind == "lat":
            return self.factor * config.latency * cnt
        if self.size_kind == "assign":
            size = profile.assign_size(self.size_key[0])
        elif self.size_kind == "arg":
            size = profile.arg_size(self.size_key[0])
        elif self.size_kind == "result":
            size = profile.result_size(self.size_key[0])
        else:  # "field"
            size = profile.field_size(*self.size_key)
        return size / config.bandwidth * cnt


class GraphBuilder:
    """Builds the *structure* of a :class:`PartitionGraph` for one
    analyzed program: nodes, edges, pins, co-location groups, weight
    recipes.  Numeric weights come from :func:`reweight_graph`."""

    def __init__(
        self,
        program: ProgramIR,
        call_graph: CallGraph,
        points_to: PointsToResult,
    ) -> None:
        self.program = program
        self.cg = call_graph
        self.pts = points_to
        self.graph = PartitionGraph()

    # -- top level ------------------------------------------------------------------

    def build(self) -> PartitionGraph:
        self._add_nodes()
        self._add_control_edges()
        self._add_seq_edges()
        self._add_db_edges()
        self._add_local_data_edges()
        self._add_interproc_data_edges()
        self._add_field_edges()
        self._add_array_edges()
        self._add_order_edges()
        return self.graph

    # -- nodes ---------------------------------------------------------------------

    def _add_nodes(self) -> None:
        graph = self.graph
        graph.add_node(
            Node(DBCODE_NODE_ID, NodeKind.DBCODE, pin=Placement.DB,
                 label="database code")
        )
        jdbc_sids: list[int] = []
        for func in self.program.functions():
            analysis = self.cg.analysis(func.qualified_name)
            for stmt in func.walk():
                node = Node(
                    stmt_node_id(stmt.sid),
                    NodeKind.STMT,
                    sid=stmt.sid,
                    label=f"{func.qualified_name}:{stmt.sid}",
                )
                graph.add_node(node)
                acc = analysis.defuse.accesses[stmt.sid]
                if acc.has_db_call:
                    jdbc_sids.append(stmt.sid)
                if acc.is_print:
                    graph.pin(node.id, Placement.APP)
            if func.is_entry:
                entry = graph.add_node(
                    Node(
                        entry_node_id(func.qualified_name),
                        NodeKind.ENTRY,
                        pin=Placement.APP,
                        label=f"entry {func.qualified_name}",
                    )
                )
        # All JDBC calls share the connection's native state: one variable.
        if jdbc_sids:
            graph.colocate(stmt_node_id(sid) for sid in jdbc_sids)
        # Field nodes.
        for cls in self.program.classes.values():
            for field_name in cls.fields:
                graph.add_node(
                    Node(
                        field_node_id(cls.name, field_name),
                        NodeKind.FIELD,
                        weight=0.0,
                        label=f"field {cls.name}.{field_name}",
                    )
                )
        # Array/native allocation-site nodes, placed with their site.
        for sid, site in self.pts.alloc_sites.items():
            if site.kind is AllocKind.OBJECT:
                continue  # objects are split per-field, not placed whole
            node_id = array_node_id(sid)
            graph.add_node(
                Node(node_id, NodeKind.ARRAY, weight=0.0, sid=sid,
                     label=f"alloc@{sid}:{site.kind.value}")
            )
            graph.colocate([node_id, stmt_node_id(sid)])

    # -- control edges ------------------------------------------------------------

    def _add_control_edges(self) -> None:
        for func in self.program.functions():
            analysis = self.cg.analysis(func.qualified_name)
            entry_sids = sorted(analysis.control_deps.get(ENTRY, set()))
            for src_sid, dependents in analysis.control_deps.items():
                if src_sid == ENTRY:
                    continue
                for dst_sid in dependents:
                    if dst_sid == src_sid:
                        continue
                    self.graph.add_edge(
                        stmt_node_id(src_sid),
                        stmt_node_id(dst_sid),
                        EdgeKind.CONTROL,
                        label="ctrl",
                        spec=WeightSpec("lat", (src_sid, dst_sid)),
                    )
            # Entry-level statements: control-dependent on every caller.
            callers = self.cg.callers_of(func.qualified_name)
            for dst_sid in entry_sids:
                for site in callers:
                    self.graph.add_edge(
                        stmt_node_id(site.sid),
                        stmt_node_id(dst_sid),
                        EdgeKind.CONTROL,
                        label="call",
                        spec=WeightSpec("lat", (site.sid, dst_sid)),
                    )
            # Entry-point methods are invoked from unpartitioned code on
            # the application server.  Entering (and leaving) the method
            # costs one control transfer regardless of how many
            # statements it contains, so charge a single edge to the
            # first statement (2x latency: the transfer in and the
            # return transfer out) rather than one edge per entry-level
            # statement -- the paper's cost model notes that charging
            # every such edge "leads to overestimation".
            if func.is_entry and func.body.stmts:
                first_sid = func.body.stmts[0].sid
                self.graph.add_edge(
                    entry_node_id(func.qualified_name),
                    stmt_node_id(first_sid),
                    EdgeKind.CONTROL,
                    label="entry",
                    spec=WeightSpec("lat", (first_sid,), factor=2.0),
                )

    def _add_db_edges(self) -> None:
        """Control edges from JDBC-call statements to the database code.

        A JDBC call issued from the application server costs a full
        request/response round trip, so the edge carries 2x latency.
        """
        for func in self.program.functions():
            analysis = self.cg.analysis(func.qualified_name)
            for stmt in func.walk():
                acc = analysis.defuse.accesses[stmt.sid]
                if acc.has_db_call:
                    self.graph.add_edge(
                        stmt_node_id(stmt.sid),
                        DBCODE_NODE_ID,
                        EdgeKind.CONTROL,
                        label="jdbc",
                        spec=WeightSpec("lat", (stmt.sid,), factor=2.0),
                    )

    def _add_seq_edges(self) -> None:
        """Sequencing edges between consecutive statements of a block.

        The runtime transfers control whenever consecutive statements
        have different placements, even when no control or data
        dependency links them (e.g. two independent loops in a row).
        One edge per adjacent pair, weighted like a control edge,
        models exactly that cost.
        """
        for func in self.program.functions():
            pending: list[Block] = [func.body]
            while pending:
                block = pending.pop()
                stmts = block.stmts
                for first, second in zip(stmts, stmts[1:]):
                    self.graph.add_edge(
                        stmt_node_id(first.sid),
                        stmt_node_id(second.sid),
                        EdgeKind.CONTROL,
                        label="seq",
                        spec=WeightSpec("lat", (first.sid, second.sid)),
                    )
                for stmt in stmts:
                    pending.extend(stmt.blocks())

    # -- data edges -----------------------------------------------------------------

    def _add_local_data_edges(self) -> None:
        for func in self.program.functions():
            analysis = self.cg.analysis(func.qualified_name)
            for def_sid, use_sid, var in analysis.defuse.edges():
                if def_sid == use_sid:
                    continue
                self.graph.add_edge(
                    stmt_node_id(def_sid),
                    stmt_node_id(use_sid),
                    EdgeKind.DATA,
                    label=var,
                    spec=WeightSpec(
                        "size", (def_sid, use_sid),
                        size_kind="assign", size_key=(def_sid,),
                    ),
                )

    def _add_interproc_data_edges(self) -> None:
        """Call-argument and return-value data edges."""
        for site in self.cg.call_sites.values():
            for callee_name in site.callees:
                callee = self.cg.functions.get(callee_name)
                if callee is None:
                    continue
                for param in callee.func.params:
                    for use_sid in callee.defuse.param_uses(param):
                        self.graph.add_edge(
                            stmt_node_id(site.sid),
                            stmt_node_id(use_sid),
                            EdgeKind.DATA,
                            label=f"arg:{param}",
                            spec=WeightSpec(
                                "size", (site.sid, use_sid),
                                size_kind="arg", size_key=(site.sid,),
                            ),
                        )
                for ret in callee.return_stmts():
                    self.graph.add_edge(
                        stmt_node_id(ret.sid),
                        stmt_node_id(site.sid),
                        EdgeKind.DATA,
                        label="ret",
                        spec=WeightSpec(
                            "size", (ret.sid, site.sid),
                            size_kind="result", size_key=(site.sid,),
                        ),
                    )

    def _field_classes(self, func: FunctionIR, obj: Atom, field_name: str) -> list[str]:
        """Classes whose field node an access may touch."""
        classes: set[str] = set()
        if isinstance(obj, VarRef):
            if obj.name == "self":
                classes.add(func.class_name)
            classes.update(
                self.pts.classes_of(func.qualified_name, obj.name)
            )
        out = []
        for cls_name in sorted(classes):
            cls = self.program.classes.get(cls_name)
            if cls is not None and field_name in cls.fields:
                out.append(cls_name)
        return out

    def _add_field_edges(self) -> None:
        for func in self.program.functions():
            analysis = self.cg.analysis(func.qualified_name)
            for stmt in func.walk():
                acc = analysis.defuse.accesses[stmt.sid]
                for obj, field_name in acc.field_reads:
                    for cls in self._field_classes(func, obj, field_name):
                        self.graph.add_edge(
                            field_node_id(cls, field_name),
                            stmt_node_id(stmt.sid),
                            EdgeKind.DATA,
                            label=f"read {field_name}",
                            spec=WeightSpec(
                                "size", (stmt.sid,),
                                size_kind="field",
                                size_key=(cls, field_name),
                            ),
                        )
                for obj, field_name in acc.field_writes:
                    for cls in self._field_classes(func, obj, field_name):
                        self.graph.add_edge(
                            field_node_id(cls, field_name),
                            stmt_node_id(stmt.sid),
                            EdgeKind.UPDATE,
                            label=f"write {field_name}",
                            spec=WeightSpec(
                                "size", (stmt.sid,),
                                size_kind="field",
                                size_key=(cls, field_name),
                            ),
                        )

    def _array_sites(self, func: FunctionIR, atom: Atom) -> list[int]:
        sites = []
        if isinstance(atom, VarRef):
            for site in self.pts.pts(func.qualified_name, atom.name):
                if site.kind is not AllocKind.OBJECT and site.sid > 0:
                    sites.append(site.sid)
        return sorted(set(sites))

    def _add_array_edges(self) -> None:
        for func in self.program.functions():
            analysis = self.cg.analysis(func.qualified_name)
            for stmt in func.walk():
                acc = analysis.defuse.accesses[stmt.sid]
                for atom in acc.index_reads:
                    for alloc_sid in self._array_sites(func, atom):
                        if alloc_sid == stmt.sid:
                            continue
                        self.graph.add_edge(
                            array_node_id(alloc_sid),
                            stmt_node_id(stmt.sid),
                            EdgeKind.DATA,
                            label="elem-read",
                            spec=WeightSpec(
                                "size", (stmt.sid,),
                                size_kind="assign", size_key=(alloc_sid,),
                            ),
                        )
                for atom in acc.index_writes:
                    for alloc_sid in self._array_sites(func, atom):
                        if alloc_sid == stmt.sid:
                            continue
                        self.graph.add_edge(
                            array_node_id(alloc_sid),
                            stmt_node_id(stmt.sid),
                            EdgeKind.UPDATE,
                            label="elem-write",
                            spec=WeightSpec(
                                "size", (stmt.sid,),
                                size_kind="assign", size_key=(alloc_sid,),
                            ),
                        )

    # -- ordering edges (Section 4.4) ---------------------------------------------
    #
    # Reordering permutes the *direct children* of a block, so a
    # compound statement (loop, if) or a call must be ordered using the
    # accesses of everything it transitively executes -- its nested
    # statements and its callees' statements.  The aggregates below
    # summarize exactly that ("side-effects and data dependencies due
    # to calls are summarized at the call site", Section 4.4).

    def _is_effectful(self, acc: StatementAccess) -> bool:
        for call in acc.calls:
            if call.kind in (CallKind.DB, CallKind.METHOD, CallKind.ALLOC_OBJECT):
                return True
            if call.kind is CallKind.NATIVE and call.name == "print":
                return True
        return False

    def _function_summary(self, name: str) -> "_AggregateAccess":
        cached = self._summaries.get(name)
        if cached is not None:
            return cached
        # Pre-seed to guard against (rejected) recursion.
        summary = _AggregateAccess()
        self._summaries[name] = summary
        analysis = self.cg.functions.get(name)
        if analysis is not None:
            for stmt in analysis.func.walk():
                summary.merge(self._stmt_direct(analysis.func, stmt))
        return summary

    def _stmt_direct(self, func: FunctionIR, stmt: Stmt) -> "_AggregateAccess":
        """Aggregate for one statement alone plus its callees."""
        analysis = self.cg.analysis(func.qualified_name)
        acc = analysis.defuse.accesses[stmt.sid]
        # Any read of a variable that may alias an array observes the
        # array's contents (it may escape via return or call), so it
        # must be ordered after element writes.
        aliased_reads = {
            s
            for var in acc.var_reads
            for s in self._array_sites(func, VarRef(var))
        }
        agg = _AggregateAccess(
            var_reads=set(acc.var_reads),
            var_writes=set(acc.var_writes),
            field_reads={f for _, f in acc.field_reads},
            field_writes={f for _, f in acc.field_writes},
            array_reads=aliased_reads | {
                s for atom in acc.index_reads
                for s in self._array_sites(func, atom)
            },
            array_writes={
                s for atom in acc.index_writes
                for s in self._array_sites(func, atom)
            },
            effectful=self._is_effectful(acc),
        )
        for callee in self.cg.callees_of(stmt.sid):
            agg.merge(self._function_summary(callee))
        return agg

    def _aggregate(self, func: FunctionIR, stmt: Stmt) -> "_AggregateAccess":
        """Aggregate for a statement including its nested statements."""
        agg = self._stmt_direct(func, stmt)
        for block in stmt.blocks():
            for inner in block.walk():
                agg.merge(self._stmt_direct(func, inner))
        return agg

    def _add_order_edges(self) -> None:
        """Output/anti dependence edges within each straight-line block."""
        self._summaries: dict[str, _AggregateAccess] = {}
        for func in self.program.functions():
            blocks: list[Block] = [func.body]
            seen: list[Block] = []
            while blocks:
                block = blocks.pop()
                seen.append(block)
                for stmt in block.stmts:
                    blocks.extend(stmt.blocks())
            for block in seen:
                stmts = block.stmts
                aggregates = [self._aggregate(func, s) for s in stmts]
                barriers = [_is_barrier(s) for s in stmts]
                for i, first in enumerate(stmts):
                    for j in range(i + 1, len(stmts)):
                        if (
                            barriers[i]
                            or barriers[j]
                            or aggregates[i].conflicts(aggregates[j])
                        ):
                            self.graph.add_edge(
                                stmt_node_id(first.sid),
                                stmt_node_id(stmts[j].sid),
                                EdgeKind.ORDER,
                                label="order",
                            )


def _is_barrier(stmt: Stmt) -> bool:
    """True when ``stmt`` may exit its enclosing block early.

    Such statements cannot move relative to *anything* in the block:
    code hoisted above them may wrongly execute on the early-exit path,
    and effectful code sunk below them may wrongly be skipped.

    * ``return`` (or any compound statement containing one) exits
      through every nesting level;
    * ``break`` / ``continue`` exit their block, as does an ``if``
      containing them -- but a loop *consumes* its own breaks and
      continues, so they do not propagate out of While/ForEach.
    """
    from repro.lang.ir import Break as _Break
    from repro.lang.ir import Continue as _Continue
    from repro.lang.ir import ForEach as _ForEach
    from repro.lang.ir import If as _If
    from repro.lang.ir import Return as _Return
    from repro.lang.ir import While as _While

    if isinstance(stmt, (_Return, _Break, _Continue)):
        return True
    if isinstance(stmt, _If):
        return any(
            _is_barrier(inner)
            for block in stmt.blocks()
            for inner in block.stmts
        )
    if isinstance(stmt, (_While, _ForEach)):
        # Breaks/continues are consumed; only returns escape.
        return any(
            isinstance(inner, _Return)
            for block in stmt.blocks()
            for inner in block.walk()
        )
    return False


def build_graph_structure(
    program: ProgramIR,
    call_graph: CallGraph,
    points_to: PointsToResult,
) -> PartitionGraph:
    """Build the profile-independent partition-graph structure.

    All node and edge weights are zero; every weighted edge carries
    the :class:`WeightSpec` recipes needed to assign them later.  The
    result is cacheable across profiles: call :func:`reweight_graph`
    (cheap) whenever new profile data arrives.
    """
    return GraphBuilder(program, call_graph, points_to).build()


def reweight_graph(
    graph: PartitionGraph,
    profile: ProfileData,
    config: Optional[BuilderConfig] = None,
) -> PartitionGraph:
    """Assign numeric weights from ``profile`` in place (and return
    ``graph``).  Statement nodes get ``cnt(s)``; weighted edges get the
    sum of their recorded :class:`WeightSpec` recipes.  Idempotent per
    profile; safe to call repeatedly as observations evolve."""
    config = config if config is not None else BuilderConfig()
    for node in graph.nodes.values():
        if node.kind is NodeKind.STMT:
            count = profile.count(node.sid)
            node.weight = float(
                count if count > 0 else config.unprofiled_count
            )
    for edge in graph.edges:
        if edge.specs:
            edge.weight = sum(
                spec.evaluate(profile, config) for spec in edge.specs
            )
    return graph


def build_partition_graph(
    program: ProgramIR,
    call_graph: CallGraph,
    points_to: PointsToResult,
    profile: ProfileData,
    config: Optional[BuilderConfig] = None,
) -> PartitionGraph:
    """Build the weighted partition graph for ``program`` (one-shot)."""
    return reweight_graph(
        build_graph_structure(program, call_graph, points_to),
        profile,
        config,
    )
