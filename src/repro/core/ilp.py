"""The binary integer program of Figure 5.

For each (merged) node a binary variable ``n`` -- 0 for the
application server, 1 for the database -- and for each weighted edge a
variable ``e`` forced to 1 when the edge is cut:

    minimize    sum_e w_e * e
    subject to  n_j - n_k - e <= 0
                n_k - n_j - e <= 0          for every edge (j, k)
                sum_n w_n * n <= Budget

Co-location groups (JDBC calls, array allocation sites) are merged
into single variables before solving -- the paper's "assign the same
node variable to all statements that contain a JDBC call".  Pinned
nodes become fixed values; edges touching them fold into linear terms.
"""

from __future__ import annotations

import hashlib
import inspect
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.partition_graph import (
    Edge,
    PartitionGraph,
    Placement,
)


class _UnionFind:
    def __init__(self) -> None:
        self.parent: dict[str, str] = {}

    def find(self, item: str) -> str:
        parent = self.parent.setdefault(item, item)
        if parent != item:
            root = self.find(parent)
            self.parent[item] = root
            return root
        return item

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


@dataclass
class PartitioningResult:
    """A solved partitioning."""

    assignment: dict[str, Placement]
    objective: float
    db_load: float
    budget: float
    solver: str
    # True when the solver actually received a warm-start seed (the
    # seed mapped onto the problem, was feasible, and the solver
    # accepts one) -- telemetry for the incremental session.
    warm_started: bool = False

    def placement_of(self, node_id: str) -> Placement:
        return self.assignment[node_id]

    def signature(self) -> str:
        """Stable content hash of the assignment.

        Two results with the same signature place every node
        identically, so all downstream artifacts (sync plan, compiled
        blocks) are interchangeable -- the partitioning service keys
        its PyxIL cache on this.
        """
        digest = hashlib.sha1()
        for node_id in sorted(self.assignment):
            digest.update(node_id.encode())
            digest.update(b"=1" if self.assignment[node_id] is Placement.DB
                          else b"=0")
        return digest.hexdigest()

    def fraction_on_db(self) -> float:
        if not self.assignment:
            return 0.0
        on_db = sum(
            1 for p in self.assignment.values() if p is Placement.DB
        )
        return on_db / len(self.assignment)


class InfeasibleError(Exception):
    """No assignment satisfies the pins within the budget."""


@dataclass
class ILPProblem:
    """The reduced problem over merged free variables.

    ``var_groups[i]`` is the set of node ids represented by variable
    ``i``; ``loads[i]`` its total CPU weight; ``linear[i]`` the folded
    coefficient from edges to pinned nodes; ``edges`` the free-free
    weighted edges as (i, j, w).
    """

    graph: PartitionGraph
    budget: float
    var_groups: list[frozenset[str]] = field(default_factory=list)
    loads: list[float] = field(default_factory=list)
    linear: list[float] = field(default_factory=list)
    edges: list[tuple[int, int, float]] = field(default_factory=list)
    constant: float = 0.0
    pinned_db_load: float = 0.0
    group_of: dict[str, int] = field(default_factory=dict)
    pinned: dict[str, Placement] = field(default_factory=dict)

    # -- evaluation -------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        return len(self.var_groups)

    def objective_of(self, values: list[int]) -> float:
        total = self.constant
        for i, value in enumerate(values):
            total += self.linear[i] * value
        for i, j, weight in self.edges:
            if values[i] != values[j]:
                total += weight
        return total

    def db_load_of(self, values: list[int]) -> float:
        return self.pinned_db_load + sum(
            load for load, v in zip(self.loads, values) if v
        )

    def feasible(self, values: list[int]) -> bool:
        return self.db_load_of(values) <= self.budget + 1e-9

    def expand(self, values: list[int], solver: str) -> PartitioningResult:
        """Expand variable values to a full node assignment."""
        assignment: dict[str, Placement] = dict(self.pinned)
        for i, group in enumerate(self.var_groups):
            placement = Placement.DB if values[i] else Placement.APP
            for node_id in group:
                assignment[node_id] = placement
        self.graph.check_assignment(assignment)
        return PartitioningResult(
            assignment=assignment,
            objective=self.objective_of(values),
            db_load=self.db_load_of(values),
            budget=self.budget,
            solver=solver,
        )


def build_ilp(graph: PartitionGraph, budget: float) -> ILPProblem:
    """Merge co-location groups and pins; fold pinned edges."""
    uf = _UnionFind()
    for node_id in graph.nodes:
        uf.find(node_id)
    for group in graph.colocate_groups:
        members = sorted(group)
        for other in members[1:]:
            uf.union(members[0], other)

    # Collect groups and effective pins.
    members: dict[str, list[str]] = {}
    for node_id in graph.nodes:
        members.setdefault(uf.find(node_id), []).append(node_id)

    problem = ILPProblem(graph=graph, budget=budget)
    root_pin: dict[str, Optional[Placement]] = {}
    for root, ids in members.items():
        pin: Optional[Placement] = None
        for node_id in ids:
            node_pin = graph.nodes[node_id].pin
            if node_pin is None:
                continue
            if pin is not None and pin is not node_pin:
                raise InfeasibleError(
                    f"co-location group {sorted(ids)} has conflicting pins"
                )
            pin = node_pin
        root_pin[root] = pin

    root_index: dict[str, int] = {}
    for root, ids in sorted(members.items()):
        pin = root_pin[root]
        load = sum(graph.nodes[node_id].weight for node_id in ids)
        if pin is None:
            index = len(problem.var_groups)
            root_index[root] = index
            problem.var_groups.append(frozenset(ids))
            problem.loads.append(load)
            problem.linear.append(0.0)
            for node_id in ids:
                problem.group_of[node_id] = index
        else:
            for node_id in ids:
                problem.pinned[node_id] = pin
            if pin is Placement.DB:
                problem.pinned_db_load += load

    if problem.pinned_db_load > budget + 1e-9:
        raise InfeasibleError(
            f"pinned database load {problem.pinned_db_load} exceeds "
            f"budget {budget}"
        )

    edge_acc: dict[tuple[int, int], float] = {}
    for edge in graph.weighted_edges():
        if edge.weight <= 0:
            continue
        src_root, dst_root = uf.find(edge.src), uf.find(edge.dst)
        if src_root == dst_root:
            continue
        src_pin, dst_pin = root_pin[src_root], root_pin[dst_root]
        if src_pin is not None and dst_pin is not None:
            if src_pin is not dst_pin:
                problem.constant += edge.weight
            continue
        if src_pin is not None or dst_pin is not None:
            pin = src_pin if src_pin is not None else dst_pin
            free_root = dst_root if src_pin is not None else src_root
            index = root_index[free_root]
            if pin is Placement.APP:
                # Cost = w * x (cut when the free node goes to DB).
                problem.linear[index] += edge.weight
            else:
                # Cost = w * (1 - x).
                problem.constant += edge.weight
                problem.linear[index] -= edge.weight
            continue
        i, j = root_index[src_root], root_index[dst_root]
        if i > j:
            i, j = j, i
        edge_acc[(i, j)] = edge_acc.get((i, j), 0.0) + edge.weight
    problem.edges = [(i, j, w) for (i, j), w in sorted(edge_acc.items())]
    return problem


# A solver maps a problem to variable values (one 0/1 per free group).
# Solvers may additionally accept a ``warm_start`` keyword (a seed
# value list) -- ``resolve`` passes one only when the signature allows.
Solver = Callable[[ILPProblem], list[int]]


def warm_start_values(
    problem: ILPProblem, previous: PartitioningResult
) -> Optional[list[int]]:
    """Map a previous assignment onto the problem's free variables.

    Returns one 0/1 seed per variable group (by the placement of the
    group's nodes in ``previous``), or ``None`` when the previous
    assignment does not cover this graph or is infeasible under the
    new budget (a seed must always be a valid starting point).
    """
    values: list[int] = []
    for group in problem.var_groups:
        placements = {previous.assignment.get(nid) for nid in group}
        placements.discard(None)
        if not placements:
            return None
        # Groups are placement-uniform in any valid result; if the
        # previous solve used different groups, fall back to majority.
        votes = sum(
            1
            for nid in group
            if previous.assignment.get(nid) is Placement.DB
        )
        values.append(1 if 2 * votes >= len(group) else 0)
    if not problem.feasible(values):
        return None
    return values


def _accepts_warm_start(solver: Solver) -> bool:
    try:
        return "warm_start" in inspect.signature(solver).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False


def resolve(
    graph: PartitionGraph,
    budget: float,
    solver: Solver,
    solver_name: str = "custom",
    warm_start: Optional[PartitioningResult] = None,
) -> PartitioningResult:
    """Incremental entry point: build, seed from ``warm_start``, solve.

    ``warm_start`` is a previous :class:`PartitioningResult` for the
    same graph structure (typically the last solve at this budget, or
    an adjacent budget rung).  Solvers that accept a ``warm_start``
    keyword (greedy: extra hill-climbing start; branch-and-bound:
    initial incumbent) are seeded with the mapped variable values; the
    exact MILP backend ignores seeds and stays exact.
    """
    problem = build_ilp(graph, budget)
    seed = (
        warm_start_values(problem, warm_start)
        if warm_start is not None
        else None
    )
    warm_used = seed is not None and _accepts_warm_start(solver)
    if warm_used:
        values = solver(problem, warm_start=seed)
    else:
        values = solver(problem)
    if len(values) != problem.num_vars:
        raise ValueError(
            f"solver returned {len(values)} values for "
            f"{problem.num_vars} variables"
        )
    if not problem.feasible(values):
        raise InfeasibleError(
            f"solver returned an infeasible assignment "
            f"(load {problem.db_load_of(values)} > budget {budget})"
        )
    result = problem.expand(values, solver_name)
    result.warm_started = warm_used
    return result


def solve_partitioning(
    graph: PartitionGraph,
    budget: float,
    solver: Solver,
    solver_name: str = "custom",
) -> PartitioningResult:
    """Convenience wrapper: build, solve cold, expand and validate."""
    return resolve(graph, budget, solver, solver_name)
