"""The paper's primary contribution: the automatic partitioner.

* :mod:`repro.core.partition_graph` -- the partition graph (a PDG
  augmented with weights, pins and co-location groups; Section 4.2).
* :mod:`repro.core.builder` -- builds the graph from the static
  analyses plus profile data.
* :mod:`repro.core.ilp` -- the binary integer program of Figure 5.
* :mod:`repro.core.solvers` -- interchangeable solvers: scipy/HiGHS
  MILP, a from-scratch branch-and-bound, and a greedy local-search
  heuristic (the reproduction's stand-ins for Gurobi and lpsolve).
* :mod:`repro.core.budgets` -- CPU-budget ladder generation.
* :mod:`repro.core.pipeline` -- the end-to-end Pyxis pipeline:
  profile -> analyze -> partition -> compile -> deploy.
"""

from repro.core.partition_graph import (
    Placement,
    NodeKind,
    EdgeKind,
    Node,
    Edge,
    PartitionGraph,
)
from repro.core.builder import GraphBuilder, build_partition_graph
from repro.core.ilp import ILPProblem, build_ilp, PartitioningResult
from repro.core.solvers import (
    SolverError,
    solve_with_scipy,
    solve_branch_and_bound,
    solve_greedy,
    default_solver,
)
from repro.core.budgets import budget_ladder
from repro.core.pipeline import Pyxis, PartitionSet, PyxisConfig

__all__ = [
    "Placement",
    "NodeKind",
    "EdgeKind",
    "Node",
    "Edge",
    "PartitionGraph",
    "GraphBuilder",
    "build_partition_graph",
    "ILPProblem",
    "build_ilp",
    "PartitioningResult",
    "SolverError",
    "solve_with_scipy",
    "solve_branch_and_bound",
    "solve_greedy",
    "default_solver",
    "budget_ladder",
    "Pyxis",
    "PartitionSet",
    "PyxisConfig",
]
