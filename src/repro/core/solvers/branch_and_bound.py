"""Exact branch-and-bound BIP solver (from scratch).

Depth-first search over node variables ordered by incident edge
weight.  The bound at a partial assignment is the weight of edges
already forced cut -- admissible because undecided edges can always be
uncut -- plus folded linear terms at their best possible value.  The
greedy solution seeds the incumbent, so large subtrees prune early.

Exponential in the worst case; intended for cross-checking the MILP
backend on small/medium graphs (tests cap the variable count).

A ``warm_start`` (a feasible value list from a previous solve of the
same graph) seeds the incumbent through the greedy improver: a tight
incumbent up front prunes large subtrees immediately, which is what
makes incremental re-solves after a small profile shift cheap.
"""

from __future__ import annotations

from typing import Optional

from repro.core.ilp import ILPProblem, InfeasibleError
from repro.core.solvers.greedy import solve_greedy


def solve_branch_and_bound(
    problem: ILPProblem,
    max_nodes: int = 2_000_000,
    warm_start: Optional[list[int]] = None,
) -> list[int]:
    n = problem.num_vars
    if n == 0:
        return []

    # Variable order: heaviest total incident weight first.
    incident = [abs(problem.linear[i]) for i in range(n)]
    adj: list[list[tuple[int, float]]] = [[] for _ in range(n)]
    for i, j, w in problem.edges:
        incident[i] += w
        incident[j] += w
        adj[i].append((j, w))
        adj[j].append((i, w))
    order = sorted(range(n), key=lambda i: -incident[i])
    rank = {var: pos for pos, var in enumerate(order)}

    # Incumbent from greedy (itself seeded by the warm start, if any).
    best = solve_greedy(problem, warm_start=warm_start)
    best_cost = problem.objective_of(best)

    # Best possible contribution of each linear term (for the bound).
    optimistic_linear = sum(min(0.0, c) for c in problem.linear)

    values: list[int] = [-1] * n
    explored = 0

    def bound(partial_cost: float) -> float:
        return partial_cost + optimistic_linear + problem.constant

    def dfs(pos: int, partial_cut: float, db_load: float) -> None:
        nonlocal best, best_cost, explored
        explored += 1
        if explored > max_nodes:
            raise RuntimeError(
                f"branch-and-bound exceeded {max_nodes} nodes; use the "
                "scipy solver for graphs this large"
            )
        if bound(partial_cut) >= best_cost - 1e-12:
            return
        if pos == n:
            assignment = list(values)
            cost = problem.objective_of(assignment)
            if cost < best_cost - 1e-12 and problem.feasible(assignment):
                best = assignment
                best_cost = cost
            return
        var = order[pos]
        for choice in (0, 1):
            if choice == 1:
                new_load = db_load + problem.loads[var]
                if new_load > problem.budget - problem.pinned_db_load + 1e-9:
                    continue
            else:
                new_load = db_load
            values[var] = choice
            extra = 0.0
            for neighbor, weight in adj[var]:
                if values[neighbor] != -1 and values[neighbor] != choice:
                    extra += weight
            # Linear term realized by this choice, versus its optimistic
            # value already included in the bound.
            realized = problem.linear[var] * choice - min(
                0.0, problem.linear[var]
            )
            dfs(pos + 1, partial_cut + extra + realized, new_load)
            values[var] = -1

    dfs(0, 0.0, 0.0)
    if any(v == -1 for v in best):  # pragma: no cover - defensive
        raise InfeasibleError("branch and bound found no assignment")
    return best
