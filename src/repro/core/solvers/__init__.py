"""Interchangeable BIP solvers.

The paper uses Gurobi or lpsolve; here:

* :func:`solve_with_scipy` -- ``scipy.optimize.milp`` (HiGHS), the
  default production solver;
* :func:`solve_branch_and_bound` -- a from-scratch exact solver used
  to cross-check optimality in tests and as an offline fallback;
* :func:`solve_greedy` -- hill-climbing local search, used to seed the
  branch-and-bound incumbent and as a fast approximate mode.
"""

from repro.core.solvers.scipy_milp import solve_with_scipy
from repro.core.solvers.branch_and_bound import solve_branch_and_bound
from repro.core.solvers.greedy import solve_greedy


class SolverError(Exception):
    """A solver failed to produce a usable solution."""


def default_solver(problem):
    """Scipy/HiGHS when available, otherwise exact branch-and-bound."""
    try:
        return solve_with_scipy(problem)
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        return solve_branch_and_bound(problem)


# The registry of named solvers the pipeline (and the CLI) selects
# from.  ``repro.core.pipeline`` re-exports it as ``SOLVERS`` for
# backwards compatibility.
SOLVERS = {
    "scipy": solve_with_scipy,
    "bnb": solve_branch_and_bound,
    "greedy": solve_greedy,
}


__all__ = [
    "SOLVERS",
    "SolverError",
    "solve_with_scipy",
    "solve_branch_and_bound",
    "solve_greedy",
    "default_solver",
]
