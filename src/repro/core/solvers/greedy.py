"""Greedy local-search solver.

Hill climbing over single-variable flips from two starting points
(everything on APP; everything that fits on DB), keeping the better
local optimum.  Used to seed the branch-and-bound incumbent and as a
fast approximate solver for very large graphs.

An optional ``warm_start`` (a feasible value list, typically mapped
from a previous solve of the same graph) adds a third starting point,
so incremental re-solves converge from the old placement instead of
from scratch.
"""

from __future__ import annotations

from typing import Optional

from repro.core.ilp import ILPProblem


def _improve(problem: ILPProblem, values: list[int], max_rounds: int = 200) -> list[int]:
    """Single-flip hill climbing until no improving feasible move."""
    n = problem.num_vars
    current = list(values)
    current_cost = problem.objective_of(current)
    for _ in range(max_rounds):
        best_delta = -1e-12
        best_var = -1
        for i in range(n):
            current[i] ^= 1
            if problem.feasible(current):
                delta = problem.objective_of(current) - current_cost
                if delta < best_delta:
                    best_delta = delta
                    best_var = i
            current[i] ^= 1
        if best_var < 0:
            break
        current[best_var] ^= 1
        current_cost += best_delta
    return current


def solve_greedy(
    problem: ILPProblem, warm_start: Optional[list[int]] = None
) -> list[int]:
    n = problem.num_vars
    candidates: list[list[int]] = []

    if (
        warm_start is not None
        and len(warm_start) == n
        and problem.feasible(warm_start)
    ):
        candidates.append(_improve(problem, warm_start))

    all_app = [0] * n
    if problem.feasible(all_app):
        candidates.append(_improve(problem, all_app))

    all_db = [1] * n
    if problem.feasible(all_db):
        candidates.append(_improve(problem, all_db))
    else:
        # Fill DB greedily by load until the budget is reached.
        remaining = problem.budget - problem.pinned_db_load
        values = [0] * n
        order = sorted(range(n), key=lambda i: problem.loads[i])
        for i in order:
            if problem.loads[i] <= remaining:
                values[i] = 1
                remaining -= problem.loads[i]
        candidates.append(_improve(problem, values))

    if not candidates:
        from repro.core.ilp import InfeasibleError

        raise InfeasibleError("no feasible starting point under budget")
    return min(candidates, key=problem.objective_of)
