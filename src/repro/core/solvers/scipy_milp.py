"""MILP backend via scipy.optimize.milp (HiGHS)."""

from __future__ import annotations

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.core.ilp import ILPProblem


def solve_with_scipy(problem: ILPProblem) -> list[int]:
    """Solve the BIP exactly with HiGHS.

    Variables: ``n`` node variables (binary) followed by ``m`` edge
    variables (continuous in [0, 1]; they take 0/1 automatically at the
    optimum because edge weights are non-negative).
    """
    n = problem.num_vars
    m = len(problem.edges)
    if n == 0:
        return []

    cost = np.zeros(n + m)
    for i, coeff in enumerate(problem.linear):
        cost[i] = coeff
    for k, (_, _, weight) in enumerate(problem.edges):
        cost[n + k] = weight

    rows: list[np.ndarray] = []
    uppers: list[float] = []
    for k, (i, j, _) in enumerate(problem.edges):
        row = np.zeros(n + m)
        row[i], row[j], row[n + k] = 1.0, -1.0, -1.0
        rows.append(row)
        uppers.append(0.0)
        row2 = np.zeros(n + m)
        row2[i], row2[j], row2[n + k] = -1.0, 1.0, -1.0
        rows.append(row2)
        uppers.append(0.0)

    budget_row = np.zeros(n + m)
    for i, load in enumerate(problem.loads):
        budget_row[i] = load
    rows.append(budget_row)
    uppers.append(problem.budget - problem.pinned_db_load)

    constraints = LinearConstraint(
        np.vstack(rows), lb=-np.inf, ub=np.array(uppers)
    )
    integrality = np.concatenate([np.ones(n), np.zeros(m)])
    bounds = Bounds(lb=np.zeros(n + m), ub=np.ones(n + m))

    result = milp(
        c=cost,
        constraints=constraints,
        integrality=integrality,
        bounds=bounds,
    )
    if not result.success or result.x is None:
        from repro.core.solvers import SolverError

        raise SolverError(f"scipy milp failed: {result.message}")
    values = [int(round(v)) for v in result.x[:n]]
    if not problem.feasible(values):
        # HiGHS accepts budget violations within its primal feasibility
        # tolerance (~1e-7), which the strict check rejects when loads
        # are tiny or the budget sits exactly on a boundary.  Small
        # problems re-solve exactly; larger ones (where exhaustive
        # search could blow past the branch-and-bound node cap) get a
        # bounded repair -- the violation is tolerance-level, so moving
        # the lightest DB assignments to APP restores feasibility with
        # minimal objective damage.
        if n <= 20:
            from repro.core.solvers import solve_branch_and_bound

            return solve_branch_and_bound(problem)
        for _, i in sorted(
            (problem.loads[i], i) for i, v in enumerate(values) if v
        ):
            values[i] = 0
            if problem.feasible(values):
                break
    return values
