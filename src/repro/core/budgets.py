"""CPU-budget ladder generation (Section 4, "multiple server
instruction budgets").

The partitioner generates several partitionings under different upper
limits on database-server computation; the runtime later switches
among them based on measured load (Section 6.3).  Budgets are
expressed in the same unit as statement node weights: profiled
execution counts.
"""

from __future__ import annotations

from typing import Sequence

from repro.profiler.profile_data import ProfileData

# Fractions of the total profiled statement weight used when the
# caller does not specify budgets.  0 forces everything possible onto
# the application server (the JDBC-like partition); the final rung is
# effectively unconstrained (the Manual-like partition).
DEFAULT_FRACTIONS: tuple[float, ...] = (0.0, 0.25, 0.5, 1.0)


def budget_ladder(
    profile: ProfileData,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    headroom: float = 1.05,
) -> list[float]:
    """Budgets as fractions of the total profiled statement weight.

    ``headroom`` slightly inflates the top rung so the all-DB
    partition stays feasible despite profiling noise.
    """
    if not fractions:
        raise ValueError("need at least one budget fraction")
    total = float(profile.total_statement_weight())
    ladder = []
    for fraction in fractions:
        if fraction < 0:
            raise ValueError(f"budget fraction {fraction} is negative")
        ladder.append(total * fraction * headroom)
    return ladder


def describe_budget(budget: float, profile: ProfileData) -> str:
    total = max(float(profile.total_statement_weight()), 1.0)
    return f"{budget:.0f} stmt-weight ({100.0 * budget / total:.0f}% of profile)"
