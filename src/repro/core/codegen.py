"""Shared infrastructure for the source-codegen rung.

Both source generators -- :mod:`repro.runtime.codegen_blocks` (execution
blocks) and :mod:`repro.db.sql.codegen_plan` (SQL plans) -- emit plain
Python modules as text and ``exec`` them.  This module holds the pieces
they share and that must not create a dependency between the two layers
(``runtime`` imports ``db``, so ``db`` cannot import ``runtime``; both
may import ``core``):

* :class:`SourceWriter` -- an indentation-tracking line buffer whose
  output is deterministic: generating the same program twice yields
  byte-identical text, which CI checks (see ISSUE 8's determinism
  satellite).
* :func:`source_signature` -- the stable content hash used both as the
  dump filename component and as the debugging identity of a generated
  module.
* :func:`maybe_dump_source` -- honours ``REPRO_DUMP_CODEGEN`` (or an
  explicit directory configured through :func:`set_dump_dir`, which the
  CLI's ``--dump-codegen`` flag uses) and writes each generated module
  to ``<dir>/<kind>_<name>_<hash12>.py``.
"""

from __future__ import annotations

import hashlib
import os
import re
from typing import Optional

# Environment variable consumed by maybe_dump_source; the CLI flag
# --dump-codegen overrides it for the current process via set_dump_dir.
DUMP_ENV_VAR = "REPRO_DUMP_CODEGEN"

_dump_dir_override: Optional[str] = None

_SLUG_RE = re.compile(r"[^A-Za-z0-9_.-]+")


def set_dump_dir(path: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-wide dump directory.

    Takes precedence over :data:`DUMP_ENV_VAR`; used by the CLI so
    ``repro partition --dump-codegen DIR`` works without mutating the
    caller's environment.
    """
    global _dump_dir_override
    _dump_dir_override = path


def dump_dir() -> Optional[str]:
    """The active dump directory, or None when dumping is off."""
    if _dump_dir_override is not None:
        return _dump_dir_override
    value = os.environ.get(DUMP_ENV_VAR, "").strip()
    return value or None


def source_signature(text: str) -> str:
    """Stable identity of one generated module: sha256 of its text."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _slug(name: str) -> str:
    return _SLUG_RE.sub("_", name).strip("_") or "module"


def dump_filename(kind: str, name: str, text: str) -> str:
    """The stable dump name: ``<kind>_<slug>_<sha12>.py``.

    The hash covers the full generated text, so two plans (or two cost
    models) that generate different code never collide, while re-running
    the same build overwrites the identical file in place.
    """
    return f"{_slug(kind)}_{_slug(name)}_{source_signature(text)[:12]}.py"


def maybe_dump_source(kind: str, name: str, text: str) -> Optional[str]:
    """Write a generated module to the dump directory, if one is set.

    Returns the written path (or None when dumping is off).  Dump
    failures are deliberately not swallowed: the knob is a debugging
    aid, and a silently missing dump defeats its purpose.
    """
    directory = dump_dir()
    if directory is None:
        return None
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, dump_filename(kind, name, text))
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return path


class SourceWriter:
    """A deterministic indented-line buffer for generated modules."""

    __slots__ = ("_lines", "_indent")

    def __init__(self) -> None:
        self._lines: list[str] = []
        self._indent = 0

    def line(self, text: str = "") -> None:
        if text:
            self._lines.append("    " * self._indent + text)
        else:
            self._lines.append("")

    def indent(self) -> None:
        self._indent += 1

    def dedent(self) -> None:
        if self._indent == 0:  # pragma: no cover - generator bug guard
            raise RuntimeError("unbalanced dedent in source generation")
        self._indent -= 1

    def text(self) -> str:
        return "\n".join(self._lines) + "\n"
