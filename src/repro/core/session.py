"""The incremental partitioning service (compilation session).

The paper's pipeline is run-once: profile offline, solve a budget
ladder, compile, done.  :class:`PartitionService` refactors that batch
shape into a long-lived *session* that a serving system can keep
re-solving as live observations arrive:

* **Static artifacts** -- parsed IR, points-to, call graph and the
  partition-graph *structure* (nodes/edges/pins/co-location plus
  symbolic weight recipes) -- are computed once per program and
  cached on the session.
* **Reweighting** -- a new :class:`~repro.profiler.profile_data.
  ProfileData` only re-evaluates the recorded weight recipes
  (:func:`repro.core.builder.reweight_graph`); no analysis re-runs.
* **Incremental solving** -- each budget re-solve is seeded with the
  previous placement (:func:`repro.core.ilp.resolve`); the greedy and
  branch-and-bound solvers climb from the old assignment, the exact
  MILP backend stays exact.
* **PyxIL artifact reuse** -- solved assignments are content-hashed
  (:meth:`PartitioningResult.signature`); sync plans and compiled
  block programs are cached by that hash, so a re-solve that lands on
  an unchanged placement skips recompilation entirely and returns the
  *identical* :class:`~repro.pyxil.blocks.CompiledProgram` object.

``repro.core.pipeline.Pyxis`` is this class (re-exported under the
historical name), so every existing call site runs through the
session; :class:`SessionStats` records how much work each call
actually performed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.analysis.interproc import CallGraph, build_call_graph
from repro.analysis.points_to import PointsToResult, analyze_points_to
from repro.core.budgets import DEFAULT_FRACTIONS, budget_ladder
from repro.core.builder import (
    BuilderConfig,
    build_graph_structure,
    reweight_graph,
)
from repro.core.ilp import PartitioningResult, resolve
from repro.core.partition_graph import PartitionGraph
from repro.core.solvers import SOLVERS
from repro.db.jdbc import Connection
from repro.lang.interp import NativeRegistry
from repro.lang.ir import ProgramIR
from repro.lang.parser import parse_program, parse_source
from repro.profiler.instrument import Profiler
from repro.profiler.profile_data import ProfileData
from repro.pyxil.blocks import CompiledProgram
from repro.pyxil.compiler import compile_program
from repro.pyxil.program import PlacedProgram
from repro.pyxil.sync_insertion import SyncPlan, compute_sync_plan


@dataclass
class PyxisConfig:
    """Tunables of the partitioning pipeline.

    The solver name is validated here, at construction, so a typo
    fails immediately instead of after the (expensive) graph build.
    """

    latency: float = 0.001
    bandwidth: float = 125_000_000.0
    budget_fractions: Sequence[float] = DEFAULT_FRACTIONS
    solver: str = "scipy"
    reorder: bool = True

    def __post_init__(self) -> None:
        if self.solver not in SOLVERS:
            raise ValueError(
                f"unknown solver {self.solver!r}; "
                f"options: {sorted(SOLVERS)}"
            )

    def builder_config(self) -> BuilderConfig:
        return BuilderConfig(latency=self.latency, bandwidth=self.bandwidth)


@dataclass
class Partition:
    """One budgeted partitioning with all its artifacts."""

    budget: float
    result: PartitioningResult
    placed: PlacedProgram
    sync_plan: SyncPlan
    compiled: CompiledProgram

    @property
    def fraction_on_db(self) -> float:
        return self.placed.fraction_on_db()

    @property
    def signature(self) -> str:
        """Content hash of the assignment (the PyxIL cache key)."""
        return self.result.signature()


@dataclass
class PartitionSet:
    """The pipeline's full output: shared analyses + per-budget partitions."""

    program: ProgramIR
    call_graph: CallGraph
    points_to: PointsToResult
    profile: ProfileData
    graph: PartitionGraph
    partitions: list[Partition] = field(default_factory=list)

    def lowest(self) -> Partition:
        """The most APP-heavy partition (smallest budget)."""
        return min(self.partitions, key=lambda p: p.budget)

    def highest(self) -> Partition:
        """The most DB-heavy partition (largest budget)."""
        return max(self.partitions, key=lambda p: p.budget)

    def by_budget(self) -> list[Partition]:
        return sorted(self.partitions, key=lambda p: p.budget)


@dataclass
class SessionStats:
    """How much work the session actually performed (cache telemetry)."""

    structure_builds: int = 0
    reweights: int = 0
    solves: int = 0
    warm_solves: int = 0
    pyxil_compiles: int = 0
    pyxil_reuses: int = 0

    def snapshot(self) -> dict:
        return {
            "structure_builds": self.structure_builds,
            "reweights": self.reweights,
            "solves": self.solves,
            "warm_solves": self.warm_solves,
            "pyxil_compiles": self.pyxil_compiles,
            "pyxil_reuses": self.pyxil_reuses,
        }


class PartitionService:
    """Programmatic front door: parse, profile, partition, compile --
    incrementally.

    The first :meth:`partition` call pays for everything (structure
    build, cold solves, PyxIL compilation); subsequent calls with new
    profiles only reweight, warm-start the solver from the previous
    placement per budget, and recompile only the budgets whose solved
    assignment actually changed.
    """

    def __init__(
        self,
        program: ProgramIR,
        config: Optional[PyxisConfig] = None,
    ) -> None:
        self.program = program
        self.config = config if config is not None else PyxisConfig()
        self.points_to = analyze_points_to(program)
        self.call_graph = build_call_graph(program, self.points_to)
        self.stats = SessionStats()
        self._structure: Optional[PartitionGraph] = None
        self._profile: Optional[ProfileData] = None
        # Previous solve per budget value: the warm-start seed.
        # Both caches are bounded (oldest-first eviction) so a
        # long-lived serving session -- whose default budget ladder
        # yields fresh budget floats on every new profile -- cannot
        # grow memory without limit.
        self._last_results: dict[float, PartitioningResult] = {}
        self._max_results = 64
        # PyxIL artifacts keyed by assignment signature.
        self._pyxil_cache: dict[str, tuple[SyncPlan, CompiledProgram]] = {}
        self._max_pyxil = 64

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_source(
        cls,
        source: str,
        entry_points: Optional[Sequence[tuple[str, str]]] = None,
        config: Optional[PyxisConfig] = None,
    ) -> "PartitionService":
        return cls(parse_source(source, entry_points), config)

    @classmethod
    def from_classes(
        cls,
        *classes: type,
        entry_points: Optional[Sequence[tuple[str, str]]] = None,
        config: Optional[PyxisConfig] = None,
    ) -> "PartitionService":
        return cls(parse_program(*classes, entry_points=entry_points), config)

    # -- profiling ----------------------------------------------------------------

    def profile_with(
        self,
        connection: Connection,
        workload: Callable[[Profiler], None],
        natives: Optional[NativeRegistry] = None,
    ) -> ProfileData:
        """Run the representative workload under instrumentation."""
        profiler = Profiler(self.program, connection, natives=natives)
        workload(profiler)
        return profiler.data

    # -- cached artifacts ----------------------------------------------------------

    @property
    def structure(self) -> PartitionGraph:
        """The cached partition-graph structure (built on first use).

        A freshly (re)built structure is immediately reweighted
        against the session's current profile, so an
        :meth:`invalidate` between partition() calls can never leave
        a zero-weight graph in front of the solver.
        """
        if self._structure is None:
            self._structure = build_graph_structure(
                self.program, self.call_graph, self.points_to
            )
            self.stats.structure_builds += 1
            if self._profile is not None:
                reweight_graph(
                    self._structure,
                    self._profile,
                    self.config.builder_config(),
                )
                self.stats.reweights += 1
        return self._structure

    @property
    def profile(self) -> Optional[ProfileData]:
        """The profile the graph weights currently reflect."""
        return self._profile

    def update_profile(
        self, profile: ProfileData, merge: bool = False
    ) -> PartitionGraph:
        """Point the session at new observations and reweight.

        With ``merge=True`` the new observations fold into the current
        profile instead of replacing it.  Reweighting mutates the
        session's (shared) graph in place; solved results keep the
        objective value they were solved under.
        """
        if merge and self._profile is not None:
            self._profile.merge(profile)
        else:
            self._profile = profile
        graph = reweight_graph(
            self.structure, self._profile, self.config.builder_config()
        )
        self.stats.reweights += 1
        return graph

    def known_signatures(self) -> list[str]:
        """Assignment signatures with cached PyxIL artifacts."""
        return list(self._pyxil_cache)

    def invalidate(self) -> None:
        """Drop every cached artifact (structure, solves, PyxIL)."""
        self._structure = None
        self._last_results.clear()
        self._pyxil_cache.clear()

    # -- partitioning --------------------------------------------------------------

    def partition(
        self,
        profile: Optional[ProfileData] = None,
        budgets: Optional[Sequence[float]] = None,
    ) -> PartitionSet:
        """Solve the placement BIP for each budget and compile.

        ``profile`` defaults to the session's current profile (set by
        a previous call or :meth:`update_profile`).  Re-solves are
        warm-started from the previous placement at the same budget
        (falling back to the nearest solved budget), and budgets whose
        solved assignment hash is unchanged reuse the cached sync plan
        and compiled program without recompiling.
        """
        if profile is not None:
            self.update_profile(profile)
        if self._profile is None:
            raise ValueError(
                "no profile: pass one to partition() or call "
                "update_profile() first"
            )
        graph = self.structure
        if budgets is None:
            budgets = budget_ladder(
                self._profile, self.config.budget_fractions
            )
        # Guard again at solve time: the config is a mutable dataclass,
        # so a name assigned after construction bypasses __post_init__.
        solver = SOLVERS.get(self.config.solver)
        if solver is None:
            raise ValueError(
                f"unknown solver {self.config.solver!r}; "
                f"options: {sorted(SOLVERS)}"
            )
        out = PartitionSet(
            program=self.program,
            call_graph=self.call_graph,
            points_to=self.points_to,
            profile=self._profile,
            graph=graph,
        )
        for budget in budgets:
            result = self._solve(graph, float(budget), solver)
            out.partitions.append(self._materialize(float(budget), result))
        return out

    def _solve(
        self,
        graph: PartitionGraph,
        budget: float,
        solver,
    ) -> PartitioningResult:
        warm = self._warm_start_for(budget)
        result = resolve(
            graph,
            budget,
            solver,
            solver_name=self.config.solver,
            warm_start=warm,
        )
        self.stats.solves += 1
        if result.warm_started:
            self.stats.warm_solves += 1
        self._last_results.pop(budget, None)
        self._last_results[budget] = result
        while len(self._last_results) > self._max_results:
            self._last_results.pop(next(iter(self._last_results)))
        return result

    def _warm_start_for(self, budget: float) -> Optional[PartitioningResult]:
        exact = self._last_results.get(budget)
        if exact is not None:
            return exact
        if not self._last_results:
            return None
        nearest = min(self._last_results, key=lambda b: abs(b - budget))
        return self._last_results[nearest]

    def _materialize(
        self, budget: float, result: PartitioningResult
    ) -> Partition:
        """Wrap a solve into a Partition, reusing PyxIL artifacts when
        the assignment is unchanged.

        A cache hit returns the *identical* CompiledProgram -- that is
        the contract (shared executors and block-code caches), so the
        object keeps the name of the budget it was first compiled for
        even when a different budget solves to the same assignment.
        Per-budget labels live on ``Partition.placed.name``.
        """
        name = f"budget={budget:.0f}"
        placed = PlacedProgram(
            program=self.program, result=result, name=name
        )
        signature = result.signature()
        cached = self._pyxil_cache.get(signature)
        if cached is not None:
            sync_plan, compiled = cached
            self.stats.pyxil_reuses += 1
        else:
            sync_plan = compute_sync_plan(
                placed, self.call_graph, self.points_to
            )
            compiled = compile_program(
                placed,
                self.call_graph,
                sync_plan,
                graph=self.structure,
                reorder=self.config.reorder,
                name=name,
            )
            self._pyxil_cache[signature] = (sync_plan, compiled)
            self.stats.pyxil_compiles += 1
            while len(self._pyxil_cache) > self._max_pyxil:
                self._pyxil_cache.pop(next(iter(self._pyxil_cache)))
        return Partition(
            budget=budget,
            result=result,
            placed=placed,
            sync_plan=sync_plan,
            compiled=compiled,
        )
