"""The end-to-end Pyxis pipeline (the paper's Figure 1).

``source -> instrumented profile -> static analysis -> partition graph
-> ILP -> PyxIL -> execution blocks``, producing one compiled
partitioning per CPU budget.  The runtime then executes any of them
and can switch dynamically under load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.analysis.interproc import CallGraph, build_call_graph
from repro.analysis.points_to import PointsToResult, analyze_points_to
from repro.core.budgets import DEFAULT_FRACTIONS, budget_ladder
from repro.core.builder import BuilderConfig, build_partition_graph
from repro.core.ilp import PartitioningResult, solve_partitioning
from repro.core.partition_graph import PartitionGraph
from repro.core.solvers import (
    solve_branch_and_bound,
    solve_greedy,
    solve_with_scipy,
)
from repro.db.jdbc import Connection
from repro.lang.interp import NativeRegistry
from repro.lang.ir import ProgramIR
from repro.lang.parser import parse_program, parse_source
from repro.profiler.instrument import Profiler
from repro.profiler.profile_data import ProfileData
from repro.pyxil.blocks import CompiledProgram
from repro.pyxil.compiler import compile_program
from repro.pyxil.program import PlacedProgram
from repro.pyxil.sync_insertion import SyncPlan, compute_sync_plan

SOLVERS = {
    "scipy": solve_with_scipy,
    "bnb": solve_branch_and_bound,
    "greedy": solve_greedy,
}


@dataclass
class PyxisConfig:
    """Tunables of the partitioning pipeline."""

    latency: float = 0.001
    bandwidth: float = 125_000_000.0
    budget_fractions: Sequence[float] = DEFAULT_FRACTIONS
    solver: str = "scipy"
    reorder: bool = True

    def builder_config(self) -> BuilderConfig:
        return BuilderConfig(latency=self.latency, bandwidth=self.bandwidth)


@dataclass
class Partition:
    """One budgeted partitioning with all its artifacts."""

    budget: float
    result: PartitioningResult
    placed: PlacedProgram
    sync_plan: SyncPlan
    compiled: CompiledProgram

    @property
    def fraction_on_db(self) -> float:
        return self.placed.fraction_on_db()


@dataclass
class PartitionSet:
    """The pipeline's full output: shared analyses + per-budget partitions."""

    program: ProgramIR
    call_graph: CallGraph
    points_to: PointsToResult
    profile: ProfileData
    graph: PartitionGraph
    partitions: list[Partition] = field(default_factory=list)

    def lowest(self) -> Partition:
        """The most APP-heavy partition (smallest budget)."""
        return min(self.partitions, key=lambda p: p.budget)

    def highest(self) -> Partition:
        """The most DB-heavy partition (largest budget)."""
        return max(self.partitions, key=lambda p: p.budget)

    def by_budget(self) -> list[Partition]:
        return sorted(self.partitions, key=lambda p: p.budget)


class Pyxis:
    """Programmatic front door: parse, profile, partition, compile."""

    def __init__(
        self,
        program: ProgramIR,
        config: Optional[PyxisConfig] = None,
    ) -> None:
        self.program = program
        self.config = config if config is not None else PyxisConfig()
        self.points_to = analyze_points_to(program)
        self.call_graph = build_call_graph(program, self.points_to)

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_source(
        cls,
        source: str,
        entry_points: Optional[Sequence[tuple[str, str]]] = None,
        config: Optional[PyxisConfig] = None,
    ) -> "Pyxis":
        return cls(parse_source(source, entry_points), config)

    @classmethod
    def from_classes(
        cls,
        *classes: type,
        entry_points: Optional[Sequence[tuple[str, str]]] = None,
        config: Optional[PyxisConfig] = None,
    ) -> "Pyxis":
        return cls(parse_program(*classes, entry_points=entry_points), config)

    # -- profiling ----------------------------------------------------------------

    def profile_with(
        self,
        connection: Connection,
        workload: Callable[[Profiler], None],
        natives: Optional[NativeRegistry] = None,
    ) -> ProfileData:
        """Run the representative workload under instrumentation."""
        profiler = Profiler(self.program, connection, natives=natives)
        workload(profiler)
        return profiler.data

    # -- partitioning --------------------------------------------------------------

    def partition(
        self,
        profile: ProfileData,
        budgets: Optional[Sequence[float]] = None,
    ) -> PartitionSet:
        """Solve the placement BIP for each budget and compile."""
        graph = build_partition_graph(
            self.program,
            self.call_graph,
            self.points_to,
            profile,
            self.config.builder_config(),
        )
        if budgets is None:
            budgets = budget_ladder(profile, self.config.budget_fractions)
        solver = SOLVERS.get(self.config.solver)
        if solver is None:
            raise ValueError(
                f"unknown solver {self.config.solver!r}; "
                f"options: {sorted(SOLVERS)}"
            )
        out = PartitionSet(
            program=self.program,
            call_graph=self.call_graph,
            points_to=self.points_to,
            profile=profile,
            graph=graph,
        )
        for budget in budgets:
            result = solve_partitioning(
                graph, budget, solver, solver_name=self.config.solver
            )
            placed = PlacedProgram(
                program=self.program,
                result=result,
                name=f"budget={budget:.0f}",
            )
            sync_plan = compute_sync_plan(
                placed, self.call_graph, self.points_to
            )
            compiled = compile_program(
                placed,
                self.call_graph,
                sync_plan,
                graph=graph,
                reorder=self.config.reorder,
            )
            compiled.name = placed.name
            out.partitions.append(
                Partition(
                    budget=budget,
                    result=result,
                    placed=placed,
                    sync_plan=sync_plan,
                    compiled=compiled,
                )
            )
        return out
