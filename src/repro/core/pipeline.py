"""The end-to-end Pyxis pipeline (the paper's Figure 1).

``source -> instrumented profile -> static analysis -> partition graph
-> ILP -> PyxIL -> execution blocks``, producing one compiled
partitioning per CPU budget.  The runtime then executes any of them
and can switch dynamically under load.

Since the incremental-service refactor the pipeline *is* a session:
:class:`Pyxis` is :class:`repro.core.session.PartitionService` under
its historical name.  One-shot callers behave exactly as before; a
caller that keeps the object and calls :meth:`partition` again with a
fresh profile gets the incremental path -- cached static artifacts,
graph reweighting instead of rebuilding, warm-started solves, and
PyxIL reuse keyed by assignment hash.

``SOLVERS`` is re-exported from :mod:`repro.core.solvers` (its
canonical home) for callers -- the CLI derives its ``--solver``
choices from it.
"""

from __future__ import annotations

from repro.core.session import (
    Partition,
    PartitionService,
    PartitionSet,
    PyxisConfig,
    SessionStats,
)
from repro.core.solvers import SOLVERS


class Pyxis(PartitionService):
    """Programmatic front door: parse, profile, partition, compile.

    The historical name for :class:`~repro.core.session.
    PartitionService`; see that class for the incremental behavior.
    """


__all__ = [
    "Partition",
    "PartitionService",
    "PartitionSet",
    "Pyxis",
    "PyxisConfig",
    "SOLVERS",
    "SessionStats",
]
