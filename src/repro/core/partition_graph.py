"""The partition graph (Section 4.2).

A program dependence graph augmented with:

* **weights** on edges modelling the cost of satisfying a dependency
  remotely, and on nodes modelling server CPU load;
* **pins** forcing nodes to one server (database code -> DB, console
  output -> APP);
* **co-location groups** forcing sets of nodes onto the same (free)
  placement -- used for JDBC calls, which share unserializable driver
  state, and for arrays, which live where their allocation site lives.

Node id conventions: ``s<sid>`` statements, ``f:<Class>.<field>``
fields, ``a<sid>`` arrays/native allocations, ``entry:<func>`` entry
points, ``dbcode`` the database.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional


class Placement(enum.Enum):
    APP = "app"
    DB = "db"

    @property
    def other(self) -> "Placement":
        return Placement.DB if self is Placement.APP else Placement.APP


class NodeKind(enum.Enum):
    STMT = "stmt"
    FIELD = "field"
    ARRAY = "array"
    DBCODE = "dbcode"
    ENTRY = "entry"


class EdgeKind(enum.Enum):
    CONTROL = "control"
    DATA = "data"
    UPDATE = "update"
    # Unweighted ordering edges (output / anti dependencies) used only
    # during code generation (Section 4.4).
    ORDER = "order"

    @property
    def weighted(self) -> bool:
        return self is not EdgeKind.ORDER


@dataclass
class Node:
    id: str
    kind: NodeKind
    weight: float = 0.0  # CPU load contribution (cnt(s) for statements)
    pin: Optional[Placement] = None
    sid: Optional[int] = None
    label: str = ""


@dataclass
class Edge:
    src: str
    dst: str
    kind: EdgeKind
    weight: float = 0.0
    label: str = ""
    # Weight *recipes* recorded at structure-build time so a new
    # profile can recompute ``weight`` without re-running analysis
    # (see repro.core.builder.reweight_graph).  Parallel edges of the
    # same kind merge by accumulating their specs.
    specs: list = field(default_factory=list)


def stmt_node_id(sid: int) -> str:
    return f"s{sid}"


def field_node_id(class_name: str, field_name: str) -> str:
    return f"f:{class_name}.{field_name}"


def array_node_id(sid: int) -> str:
    return f"a{sid}"


def entry_node_id(func: str) -> str:
    return f"entry:{func}"


DBCODE_NODE_ID = "dbcode"


class PartitionGraph:
    """Mutable partition graph with weight/pin/co-location bookkeeping."""

    def __init__(self) -> None:
        self.nodes: dict[str, Node] = {}
        self._edges: dict[tuple[str, str, EdgeKind], Edge] = {}
        self.colocate_groups: list[set[str]] = []

    # -- construction -----------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        existing = self.nodes.get(node.id)
        if existing is not None:
            return existing
        self.nodes[node.id] = node
        return node

    def node(self, node_id: str) -> Node:
        return self.nodes[node_id]

    def has_node(self, node_id: str) -> bool:
        return node_id in self.nodes

    def add_edge(
        self,
        src: str,
        dst: str,
        kind: EdgeKind,
        weight: float = 0.0,
        label: str = "",
        spec=None,
    ) -> None:
        """Add an edge; parallel edges of the same kind merge weights."""
        if src not in self.nodes or dst not in self.nodes:
            raise KeyError(f"edge endpoints must exist: {src} -> {dst}")
        if src == dst:
            return  # self-dependencies never cost anything
        key = (src, dst, kind)
        edge = self._edges.get(key)
        if edge is None:
            edge = Edge(src, dst, kind, weight, label)
            if spec is not None:
                edge.specs.append(spec)
            self._edges[key] = edge
        else:
            edge.weight += weight
            if spec is not None:
                edge.specs.append(spec)

    @property
    def edges(self) -> list[Edge]:
        return list(self._edges.values())

    def weighted_edges(self) -> list[Edge]:
        return [e for e in self._edges.values() if e.kind.weighted]

    def order_edges(self) -> list[Edge]:
        return [e for e in self._edges.values() if e.kind is EdgeKind.ORDER]

    def pin(self, node_id: str, placement: Placement) -> None:
        node = self.nodes[node_id]
        if node.pin is not None and node.pin is not placement:
            raise ValueError(
                f"conflicting pins for {node_id}: {node.pin} vs {placement}"
            )
        node.pin = placement

    def colocate(self, node_ids: Iterable[str]) -> None:
        """Force ``node_ids`` onto the same placement (one ILP variable)."""
        group = {nid for nid in node_ids}
        for nid in group:
            if nid not in self.nodes:
                raise KeyError(f"cannot colocate unknown node {nid}")
        if len(group) > 1:
            self.colocate_groups.append(group)

    # -- evaluation ----------------------------------------------------------------

    def cut_weight(self, assignment: dict[str, Placement]) -> float:
        """Objective value of ``assignment`` (sum of cut weighted edges)."""
        total = 0.0
        for edge in self.weighted_edges():
            if assignment[edge.src] is not assignment[edge.dst]:
                total += edge.weight
        return total

    def db_load(self, assignment: dict[str, Placement]) -> float:
        """Total node weight assigned to the database server."""
        return sum(
            node.weight
            for node in self.nodes.values()
            if assignment[node.id] is Placement.DB
        )

    def check_assignment(self, assignment: dict[str, Placement]) -> None:
        """Validate pins and co-location; raises ValueError on violation."""
        for node in self.nodes.values():
            if node.id not in assignment:
                raise ValueError(f"assignment missing node {node.id}")
            if node.pin is not None and assignment[node.id] is not node.pin:
                raise ValueError(
                    f"assignment violates pin on {node.id} "
                    f"({assignment[node.id]} != {node.pin})"
                )
        for group in self.colocate_groups:
            placements = {assignment[nid] for nid in group}
            if len(placements) > 1:
                raise ValueError(
                    f"assignment splits co-location group {sorted(group)}"
                )

    # -- conveniences ----------------------------------------------------------------

    def stmt_nodes(self) -> Iterator[Node]:
        return (n for n in self.nodes.values() if n.kind is NodeKind.STMT)

    def summary(self) -> str:
        kinds: dict[str, int] = {}
        for node in self.nodes.values():
            kinds[node.kind.value] = kinds.get(node.kind.value, 0) + 1
        edge_kinds: dict[str, int] = {}
        for edge in self._edges.values():
            edge_kinds[edge.kind.value] = edge_kinds.get(edge.kind.value, 0) + 1
        return (
            f"PartitionGraph(nodes={kinds}, edges={edge_kinds}, "
            f"colocate_groups={len(self.colocate_groups)})"
        )
