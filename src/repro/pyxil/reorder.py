"""Statement reordering (Section 4.4).

Within each straight-line block the compiler may reorder statements as
long as all dependencies (data, control, update, output, anti) are
respected.  The paper's algorithm is a topological sort implemented as
a breadth-first traversal with *two* ready queues -- one per placement
-- draining one queue completely before switching to the other.  This
groups statements with the same placement into longer runs, reducing
control transfers.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.core.partition_graph import (
    EdgeKind,
    PartitionGraph,
    Placement,
    stmt_node_id,
)
from repro.lang.ir import Block, FunctionIR, ProgramIR, Stmt


def reorder_block(
    block: Block,
    placement_of: Callable[[int], Placement],
    graph: PartitionGraph,
) -> None:
    """Reorder ``block.stmts`` in place using the dual-queue traversal.

    Dependencies are taken from the partition graph restricted to this
    block's direct children (which contains the intra-block data edges
    plus the output/anti ordering edges; back edges and interprocedural
    edges never connect two children of the same block).
    """
    stmts = block.stmts
    if len(stmts) <= 2:
        return
    sids = [stmt.sid for stmt in stmts]
    sid_set = set(sids)
    position = {sid: i for i, sid in enumerate(sids)}

    succs: dict[int, list[int]] = {sid: [] for sid in sids}
    indegree: dict[int, int] = {sid: 0 for sid in sids}
    seen_pairs: set[tuple[int, int]] = set()
    for edge in graph.edges:
        if not edge.src.startswith("s") or not edge.dst.startswith("s"):
            continue
        try:
            src_sid = int(edge.src[1:])
            dst_sid = int(edge.dst[1:])
        except ValueError:  # pragma: no cover - non-stmt ids
            continue
        if src_sid not in sid_set or dst_sid not in sid_set:
            continue
        # Respect only forward (program-order) dependencies; anything
        # else is a back edge at this level and is ignored (paper 4.4).
        if position[src_sid] >= position[dst_sid]:
            continue
        if (src_sid, dst_sid) in seen_pairs:
            continue
        seen_pairs.add((src_sid, dst_sid))
        succs[src_sid].append(dst_sid)
        indegree[dst_sid] += 1

    queues: dict[Placement, deque[int]] = {
        Placement.APP: deque(),
        Placement.DB: deque(),
    }
    # Seed ready queues in original order for determinism.
    for sid in sids:
        if indegree[sid] == 0:
            queues[placement_of(sid)].append(sid)

    ordered: list[int] = []
    current = (
        placement_of(sids[0])
        if queues[placement_of(sids[0])]
        else placement_of(sids[0]).other
    )
    while queues[Placement.APP] or queues[Placement.DB]:
        if not queues[current]:
            current = current.other
        sid = queues[current].popleft()
        ordered.append(sid)
        for succ in succs[sid]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                queues[placement_of(succ)].append(succ)

    if len(ordered) != len(sids):  # pragma: no cover - defensive
        raise RuntimeError(
            f"reordering dropped statements: {len(ordered)} != {len(sids)}"
        )
    by_sid = {stmt.sid: stmt for stmt in stmts}
    block.stmts = [by_sid[sid] for sid in ordered]


def reorder_blocks(
    program: ProgramIR,
    placement_of: Callable[[int], Placement],
    graph: PartitionGraph,
) -> int:
    """Reorder every block of every function; returns blocks touched."""
    touched = 0
    for func in program.functions():
        pending: list[Block] = [func.body]
        while pending:
            block = pending.pop()
            before = [s.sid for s in block.stmts]
            reorder_block(block, placement_of, graph)
            if [s.sid for s in block.stmts] != before:
                touched += 1
            for stmt in block.stmts:
                pending.extend(stmt.blocks())
    return touched
