"""Placed programs: IR + partitioning assignment."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.ilp import PartitioningResult
from repro.core.partition_graph import (
    Placement,
    array_node_id,
    field_node_id,
    stmt_node_id,
)
from repro.lang.ir import ProgramIR
from repro.lang.pretty import format_program


@dataclass
class PlacedProgram:
    """The IR together with a placement for every statement, field and
    allocation site -- the semantic content of a PyxIL program."""

    program: ProgramIR
    result: PartitioningResult
    name: str = "partition"

    def placement_of(self, sid: int) -> Placement:
        return self.result.assignment[stmt_node_id(sid)]

    def field_placement(self, class_name: str, field_name: str) -> Placement:
        node_id = field_node_id(class_name, field_name)
        placement = self.result.assignment.get(node_id)
        # Fields never mentioned in the graph (dead fields) default APP.
        return placement if placement is not None else Placement.APP

    def array_placement(self, alloc_sid: int) -> Placement:
        node_id = array_node_id(alloc_sid)
        placement = self.result.assignment.get(node_id)
        if placement is not None:
            return placement
        # Allocation sites always co-locate with their statement.
        return self.placement_of(alloc_sid)

    def stmts_on(self, placement: Placement) -> list[int]:
        return sorted(
            sid
            for sid in self.program.statement_map()
            if self.placement_of(sid) is placement
        )

    def fraction_on_db(self) -> float:
        sids = list(self.program.statement_map())
        if not sids:
            return 0.0
        on_db = sum(
            1 for sid in sids if self.placement_of(sid) is Placement.DB
        )
        return on_db / len(sids)


def format_pyxil(placed: PlacedProgram) -> str:
    """Annotated listing in the style of the paper's Figure 3."""

    def annotate(sid: int) -> str:
        placement = placed.placement_of(sid)
        return ":APP:" if placement is Placement.APP else ":DB: "

    header_lines = []
    for cls in placed.program.classes.values():
        for field_name in cls.fields:
            placement = placed.field_placement(cls.name, field_name)
            tag = ":APP:" if placement is Placement.APP else ":DB: "
            header_lines.append(f"{tag} field {cls.name}.{field_name}")
    body = format_program(placed.program, annotate)
    prefix = "\n".join(header_lines)
    return f"{prefix}\n\n{body}" if prefix else body
