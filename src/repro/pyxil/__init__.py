"""PyxIL: the placed intermediate language and its compiler.

PyxIL (Section 3.1) is the paper's intermediate form: the original
program with every statement and field annotated ``:APP:`` or ``:DB:``
plus explicit heap-synchronization operations.  Here it comprises:

* :mod:`repro.pyxil.program` -- a :class:`PlacedProgram` pairing the IR
  with a partitioning assignment (and the annotated listing of Fig. 3);
* :mod:`repro.pyxil.sync_insertion` -- placement of sendAPP / sendDB /
  sendNative synchronization (Section 4.5);
* :mod:`repro.pyxil.reorder` -- the dual-queue topological statement
  reordering that enlarges same-placement runs (Section 4.4);
* :mod:`repro.pyxil.blocks` -- execution blocks (continuation-passing
  compiled form, Section 5.1);
* :mod:`repro.pyxil.compiler` -- PyxIL -> execution blocks.
"""

from repro.pyxil.program import PlacedProgram, format_pyxil
from repro.pyxil.sync_insertion import SyncPlan, compute_sync_plan, SyncOp
from repro.pyxil.reorder import reorder_blocks
from repro.pyxil.blocks import (
    ExecutionBlock,
    OpAssign,
    TBranch,
    TCall,
    TGoto,
    THalt,
    TReturn,
    CompiledProgram,
)
from repro.pyxil.compiler import compile_program

__all__ = [
    "PlacedProgram",
    "format_pyxil",
    "SyncPlan",
    "compute_sync_plan",
    "SyncOp",
    "reorder_blocks",
    "ExecutionBlock",
    "OpAssign",
    "TBranch",
    "TCall",
    "TGoto",
    "THalt",
    "TReturn",
    "CompiledProgram",
    "compile_program",
]
