"""Execution blocks (Section 5.1).

Each method compiles to a set of straight-line blocks; each block runs
entirely on one server and ends with a terminator naming the next
block -- continuation-passing style, exactly like the paper's Fig. 7.
The runtime regains control after every block, transferring control to
the peer runtime whenever the next block's placement differs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.partition_graph import Placement
from repro.lang.ir import Atom, Expr, LValue


@dataclass
class OpAssign:
    """Evaluate ``value`` and store into ``target`` (None = discard).

    ``value`` may be any normalized IR expression except METHOD and
    ALLOC_OBJECT calls (those become :class:`TCall` terminators).
    ``sid`` ties the op back to its source statement for CPU
    accounting and tracing; compiler-introduced ops reuse the sid of
    the construct they lower (e.g. loop bookkeeping uses the loop sid).
    """

    target: Optional[LValue]
    value: Expr
    sid: int


@dataclass
class TGoto:
    target: int


@dataclass
class TBranch:
    cond: Atom
    then_target: int
    else_target: int
    sid: int


@dataclass
class TCall:
    """Call a partitioned method: push a frame, jump to its entry block.

    ``receiver`` evaluates to the target object (or None when the call
    allocates: the runtime then creates the object first).  On return,
    the callee's TReturn pops the frame and stores the value into
    ``result`` in the caller frame, continuing at ``return_target``.
    """

    callee: str  # qualified method name
    receiver: Optional[Atom]
    args: tuple[Atom, ...]
    result: Optional[LValue]
    return_target: int
    sid: int
    alloc_class: Optional[str] = None  # set for constructor calls
    alloc_sid: Optional[int] = None


@dataclass
class TReturn:
    value: Optional[Atom]


@dataclass
class THalt:
    value: Optional[Atom] = None


Terminator = Union[TGoto, TBranch, TCall, TReturn, THalt]


@dataclass
class ExecutionBlock:
    """A straight-line run of ops on one server."""

    bid: int
    placement: Placement
    label: str = ""
    ops: list[OpAssign] = field(default_factory=list)
    terminator: Optional[Terminator] = None
    # Precompiled closure form of this block, filled in lazily by
    # repro.runtime.compile_blocks.ensure_program_code.  Blocks are
    # immutable once compile_program returns, so the slot never needs
    # invalidation.
    code: Optional[object] = field(
        default=None, init=False, repr=False, compare=False
    )

    def describe(self) -> str:
        where = "APP" if self.placement is Placement.APP else "DB"
        return f"block {self.bid} [{where}] {self.label} ({len(self.ops)} ops)"


@dataclass
class CompiledProgram:
    """All blocks for one partitioning, plus placement metadata."""

    name: str
    blocks: dict[int, ExecutionBlock] = field(default_factory=dict)
    entries: dict[str, int] = field(default_factory=dict)  # method -> bid
    # Placement metadata consumed by the runtime heap.
    field_placements: dict[tuple[str, str], Placement] = field(
        default_factory=dict
    )
    array_placements: dict[int, Placement] = field(default_factory=dict)
    # Which heap locations ship with control transfers (sync plan).
    field_ships: dict[tuple[str, str], bool] = field(default_factory=dict)
    array_ships: dict[int, bool] = field(default_factory=dict)
    # Method signatures: qualified name -> parameter list.
    params: dict[str, list[str]] = field(default_factory=dict)
    classes: dict[str, list[str]] = field(default_factory=dict)
    # Dense bid-indexed list of BlockCode objects (see
    # repro.runtime.compile_blocks); populated on first use.
    code_cache: Optional[list] = field(
        default=None, init=False, repr=False, compare=False
    )
    # Generated-source executors keyed by cost-model signature (see
    # repro.runtime.codegen_blocks.ensure_program_source); generated text
    # bakes model-derived cost literals, so each signature gets its own
    # module.  Populated on first use.
    source_cache: Optional[dict] = field(
        default=None, init=False, repr=False, compare=False
    )
    # Lazily computed per-block statement multiplicities (see
    # sid_multiplicities); blocks are immutable after compilation.
    _sid_mult: Optional[dict] = field(
        default=None, init=False, repr=False, compare=False
    )

    def entry_of(self, class_name: str, method: str) -> int:
        return self.entries[f"{class_name}.{method}"]

    def block(self, bid: int) -> ExecutionBlock:
        return self.blocks[bid]

    def field_placement(self, class_name: str, field_name: str) -> Placement:
        return self.field_placements.get(
            (class_name, field_name), Placement.APP
        )

    def array_placement(self, alloc_sid: int) -> Placement:
        return self.array_placements.get(alloc_sid, Placement.APP)

    def sid_multiplicities(self) -> dict[int, dict[int, int]]:
        """``{bid: {sid: ops charged to sid}}`` for live profiling.

        One block execution implies executing each of its ops (plus a
        branching/calling terminator) once, so per-block execution
        counts times these multiplicities reconstruct per-statement
        execution counts without any per-op instrumentation.
        """
        if self._sid_mult is None:
            mult: dict[int, dict[int, int]] = {}
            for bid, block in self.blocks.items():
                counts: dict[int, int] = {}
                for op in block.ops:
                    counts[op.sid] = counts.get(op.sid, 0) + 1
                term = block.terminator
                if isinstance(term, (TBranch, TCall)):
                    counts[term.sid] = counts.get(term.sid, 0) + 1
                if counts:
                    mult[bid] = counts
            self._sid_mult = mult
        return self._sid_mult

    def stats(self) -> dict[str, int]:
        app = sum(
            1 for b in self.blocks.values() if b.placement is Placement.APP
        )
        return {
            "blocks": len(self.blocks),
            "app_blocks": app,
            "db_blocks": len(self.blocks) - app,
            "methods": len(self.entries),
        }
