"""PyxIL -> execution blocks compiler (Section 5).

Walks the (reordered) placed IR and emits straight-line execution
blocks, starting a new block whenever the required placement changes
or control flow joins/branches.  Loops lower to explicit test blocks;
``for x in xs`` lowers to indexed iteration with compiler temporaries,
so the loop's element reads happen on the loop node's placement --
matching the paper's treatment of ``for (itemCost : costs)`` as a
single placed node.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.interproc import CallGraph
from repro.core.partition_graph import Placement
from repro.lang.ir import (
    Assign,
    Atom,
    BinExpr,
    Block,
    Break,
    CallExpr,
    CallKind,
    Const,
    Continue,
    ExprStmt,
    ForEach,
    FunctionIR,
    If,
    IndexGet,
    Return,
    Stmt,
    VarLV,
    VarRef,
    While,
)
from repro.pyxil.blocks import (
    CompiledProgram,
    ExecutionBlock,
    OpAssign,
    TBranch,
    TCall,
    TGoto,
    THalt,
    TReturn,
)
from repro.pyxil.program import PlacedProgram
from repro.pyxil.reorder import reorder_blocks
from repro.pyxil.sync_insertion import SyncPlan


class CompileError(Exception):
    pass


@dataclass
class _LoopTargets:
    test_bid: int
    exit_bid: int


class _FunctionCompiler:
    def __init__(self, parent: "_ProgramCompiler", func: FunctionIR) -> None:
        self.parent = parent
        self.func = func
        self.current: Optional[ExecutionBlock] = None
        self.loop_stack: list[_LoopTargets] = []
        self._aux = 0

    # -- block bookkeeping ---------------------------------------------------

    def _fresh_aux(self, tag: str) -> str:
        self._aux += 1
        return f"${tag}{self._aux}"

    def new_block(self, placement: Placement, label: str = "") -> ExecutionBlock:
        return self.parent.new_block(placement, label)

    def ensure_block(self, placement: Placement, label: str = "") -> ExecutionBlock:
        """Current block if it matches placement; else chain a new one."""
        if self.current is not None and self.current.terminator is None:
            if self.current.placement is placement:
                return self.current
            nxt = self.new_block(placement, label)
            self.current.terminator = TGoto(nxt.bid)
            self.current = nxt
            return nxt
        nxt = self.new_block(placement, label)
        if self.current is not None and self.current.terminator is None:
            self.current.terminator = TGoto(nxt.bid)  # pragma: no cover
        self.current = nxt
        return nxt

    def emit(self, op: OpAssign, placement: Placement) -> None:
        block = self.ensure_block(placement)
        block.ops.append(op)

    def terminate(self, terminator) -> None:
        assert self.current is not None
        if self.current.terminator is not None:  # pragma: no cover
            raise CompileError("block already terminated")
        self.current.terminator = terminator
        self.current = None

    # -- compilation ----------------------------------------------------------

    def compile(self) -> int:
        placed = self.parent.placed
        entry_placement = (
            placed.placement_of(self.func.body.stmts[0].sid)
            if self.func.body.stmts
            else Placement.APP
        )
        entry = self.new_block(
            entry_placement, f"{self.func.qualified_name}:entry"
        )
        self.current = entry
        self.compile_block(self.func.body)
        if self.current is not None and self.current.terminator is None:
            self.current.terminator = TReturn(None)
        return entry.bid

    def compile_block(self, block: Block) -> None:
        for stmt in block.stmts:
            if self.current is None:
                # Unreachable code after return/break: skip.
                return
            self.compile_stmt(stmt)

    def compile_stmt(self, stmt: Stmt) -> None:
        placed = self.parent.placed
        placement = placed.placement_of(stmt.sid)
        if isinstance(stmt, Assign):
            call = stmt.value if isinstance(stmt.value, CallExpr) else None
            if call is not None and call.kind in (
                CallKind.METHOD,
                CallKind.ALLOC_OBJECT,
            ):
                self.compile_call(stmt.sid, call, stmt.target, placement)
                return
            self.emit(OpAssign(stmt.target, stmt.value, stmt.sid), placement)
            return
        if isinstance(stmt, ExprStmt):
            call = stmt.expr
            if call.kind in (CallKind.METHOD, CallKind.ALLOC_OBJECT):
                self.compile_call(stmt.sid, call, None, placement)
                return
            self.emit(OpAssign(None, call, stmt.sid), placement)
            return
        if isinstance(stmt, If):
            self.compile_if(stmt, placement)
            return
        if isinstance(stmt, While):
            self.compile_while(stmt, placement)
            return
        if isinstance(stmt, ForEach):
            self.compile_foreach(stmt, placement)
            return
        if isinstance(stmt, Return):
            self.ensure_block(placement)
            self.terminate(TReturn(stmt.value))
            return
        if isinstance(stmt, Break):
            if not self.loop_stack:  # pragma: no cover - parser rejects
                raise CompileError("break outside loop")
            self.ensure_block(placement)
            self.terminate(TGoto(self.loop_stack[-1].exit_bid))
            return
        if isinstance(stmt, Continue):
            if not self.loop_stack:  # pragma: no cover - parser rejects
                raise CompileError("continue outside loop")
            self.ensure_block(placement)
            self.terminate(TGoto(self.loop_stack[-1].test_bid))
            return
        raise CompileError(f"cannot compile {type(stmt).__name__}")

    def compile_call(
        self,
        sid: int,
        call: CallExpr,
        result,
        placement: Placement,
    ) -> None:
        self.ensure_block(placement)
        ret_block = self.new_block(placement, f"ret@{sid}")
        if call.kind is CallKind.METHOD:
            callees = self.parent.call_graph.callees_of(sid)
            if len(callees) != 1:
                raise CompileError(
                    f"call at sid={sid} resolves to {sorted(callees)}; "
                    "the block compiler needs a unique callee"
                )
            callee = next(iter(callees))
            self.terminate(
                TCall(
                    callee=callee,
                    receiver=call.target,
                    args=call.args,
                    result=result,
                    return_target=ret_block.bid,
                    sid=sid,
                )
            )
        else:  # ALLOC_OBJECT
            init = f"{call.name}.__init__"
            has_init = init in self.parent.functions
            self.terminate(
                TCall(
                    callee=init if has_init else "",
                    receiver=None,
                    args=call.args,
                    result=result,
                    return_target=ret_block.bid,
                    sid=sid,
                    alloc_class=call.name,
                    alloc_sid=sid,
                )
            )
        self.current = ret_block

    def compile_if(self, stmt: If, placement: Placement) -> None:
        self.ensure_block(placement)
        then_entry = self.new_block(
            self._first_placement(stmt.then, placement), f"then@{stmt.sid}"
        )
        else_entry = self.new_block(
            self._first_placement(stmt.orelse, placement), f"else@{stmt.sid}"
        )
        join = self.new_block(placement, f"join@{stmt.sid}")
        self.terminate(
            TBranch(stmt.cond, then_entry.bid, else_entry.bid, stmt.sid)
        )
        self.current = then_entry
        self.compile_block(stmt.then)
        if self.current is not None and self.current.terminator is None:
            self.terminate(TGoto(join.bid))
        self.current = else_entry
        self.compile_block(stmt.orelse)
        if self.current is not None and self.current.terminator is None:
            self.terminate(TGoto(join.bid))
        self.current = join

    def compile_while(self, stmt: While, placement: Placement) -> None:
        placed = self.parent.placed
        header_placement = (
            placed.placement_of(stmt.header.stmts[0].sid)
            if stmt.header.stmts
            else placement
        )
        test_entry = self.new_block(header_placement, f"while@{stmt.sid}")
        exit_block = self.new_block(placement, f"endwhile@{stmt.sid}")
        assert self.current is not None
        self.terminate(TGoto(test_entry.bid))
        self.current = test_entry
        self.compile_block(stmt.header)
        body_entry = self.new_block(
            self._first_placement(stmt.body, placement), f"do@{stmt.sid}"
        )
        self.ensure_block(placement)
        self.terminate(
            TBranch(stmt.cond, body_entry.bid, exit_block.bid, stmt.sid)
        )
        self.loop_stack.append(
            _LoopTargets(test_bid=test_entry.bid, exit_bid=exit_block.bid)
        )
        self.current = body_entry
        self.compile_block(stmt.body)
        if self.current is not None and self.current.terminator is None:
            self.terminate(TGoto(test_entry.bid))
        self.loop_stack.pop()
        self.current = exit_block

    def compile_foreach(self, stmt: ForEach, placement: Placement) -> None:
        """Lower ``for var in xs`` to indexed iteration.

        All loop bookkeeping (index, length, element read) runs at the
        loop node's placement and is charged to the loop's sid.
        """
        it_var = self._fresh_aux("it")
        idx_var = self._fresh_aux("idx")
        len_var = self._fresh_aux("len")
        cond_var = self._fresh_aux("cond")
        sid = stmt.sid
        self.emit(OpAssign(VarLV(it_var), stmt.iterable, sid), placement)
        self.emit(OpAssign(VarLV(idx_var), Const(0), sid), placement)
        test_entry = self.new_block(placement, f"for@{sid}")
        exit_block = self.new_block(placement, f"endfor@{sid}")
        assert self.current is not None
        self.terminate(TGoto(test_entry.bid))
        self.current = test_entry
        self.emit(
            OpAssign(
                VarLV(len_var),
                CallExpr(CallKind.NATIVE, "len", (VarRef(it_var),)),
                sid,
            ),
            placement,
        )
        self.emit(
            OpAssign(
                VarLV(cond_var),
                BinExpr("<", VarRef(idx_var), VarRef(len_var)),
                sid,
            ),
            placement,
        )
        body_entry = self.new_block(placement, f"dofor@{sid}")
        self.terminate(
            TBranch(VarRef(cond_var), body_entry.bid, exit_block.bid, sid)
        )
        self.loop_stack.append(
            _LoopTargets(test_bid=test_entry.bid, exit_bid=exit_block.bid)
        )
        self.current = body_entry
        self.emit(
            OpAssign(
                VarLV(stmt.var),
                IndexGet(VarRef(it_var), VarRef(idx_var)),
                sid,
            ),
            placement,
        )
        self.emit(
            OpAssign(
                VarLV(idx_var),
                BinExpr("+", VarRef(idx_var), Const(1)),
                sid,
            ),
            placement,
        )
        self.compile_block(stmt.body)
        if self.current is not None and self.current.terminator is None:
            self.terminate(TGoto(test_entry.bid))
        self.loop_stack.pop()
        self.current = exit_block

    def _first_placement(self, block: Block, default: Placement) -> Placement:
        if block.stmts:
            return self.parent.placed.placement_of(block.stmts[0].sid)
        return default


class _ProgramCompiler:
    def __init__(
        self,
        placed: PlacedProgram,
        call_graph: CallGraph,
        sync_plan: SyncPlan,
        name: Optional[str] = None,
    ) -> None:
        self.placed = placed
        self.call_graph = call_graph
        self.sync_plan = sync_plan
        self.compiled = CompiledProgram(
            name=name if name is not None else placed.name
        )
        self._next_bid = 0
        self.functions = {
            f.qualified_name: f for f in placed.program.functions()
        }

    def new_block(self, placement: Placement, label: str = "") -> ExecutionBlock:
        block = ExecutionBlock(self._next_bid, placement, label)
        self._next_bid += 1
        self.compiled.blocks[block.bid] = block
        return block

    def compile(self) -> CompiledProgram:
        program = self.placed.program
        for func in program.functions():
            entry_bid = _FunctionCompiler(self, func).compile()
            self.compiled.entries[func.qualified_name] = entry_bid
            self.compiled.params[func.qualified_name] = list(func.params)
        for cls in program.classes.values():
            self.compiled.classes[cls.name] = list(cls.fields)
            for field_name in cls.fields:
                key = (cls.name, field_name)
                self.compiled.field_placements[key] = (
                    self.placed.field_placement(cls.name, field_name)
                )
                self.compiled.field_ships[key] = self.sync_plan.field_ships(
                    cls.name, field_name
                )
        for alloc_sid in self._alloc_sids():
            self.compiled.array_placements[alloc_sid] = (
                self.placed.array_placement(alloc_sid)
            )
            self.compiled.array_ships[alloc_sid] = self.sync_plan.array_ships(
                alloc_sid
            )
        self._check_blocks()
        return self.compiled

    def _alloc_sids(self) -> list[int]:
        out = []
        for node_id in self.placed.result.assignment:
            if node_id.startswith("a") and node_id[1:].isdigit():
                out.append(int(node_id[1:]))
        return sorted(out)

    def _check_blocks(self) -> None:
        for block in self.compiled.blocks.values():
            if block.terminator is None:
                raise CompileError(
                    f"unterminated block {block.describe()}"
                )


def compile_program(
    placed: PlacedProgram,
    call_graph: CallGraph,
    sync_plan: SyncPlan,
    graph=None,
    reorder: bool = True,
    name: Optional[str] = None,
) -> CompiledProgram:
    """Compile a placed program to execution blocks.

    When ``reorder`` is true and the partition graph is supplied, the
    dual-queue reordering pass (Section 4.4) runs first on a private
    copy of the IR so other partitionings of the same program are
    unaffected.  ``name`` labels the compiled program (defaults to the
    placed program's name).
    """
    if reorder and graph is not None:
        placed = PlacedProgram(
            program=copy.deepcopy(placed.program),
            result=placed.result,
            name=placed.name,
        )
        reorder_blocks(placed.program, placed.placement_of, graph)
    return _ProgramCompiler(placed, call_graph, sync_plan, name=name).compile()
