"""Heap-synchronization planning (Sections 4.5 and 3.2).

Each source-level object is represented by two partial objects (APP
part and DB part); arrays and native objects live wholly where their
allocation site is placed.  Writes made on one server must be visible
on the other before any access there.  The paper's code generator
emits explicit ``sendAPP`` / ``sendDB`` / ``sendNative`` operations
after writing statements; updates batch and travel with the next
control transfer.

This module computes the equivalent static plan:

* ``field_sync[(class, field)]`` -- True when some statement on the
  server *opposite* the writer may access the field, i.e. a dirty
  write must ship on the next control transfer.
* ``array_sync[alloc_sid]`` -- same for arrays / native objects.
* ``sync_ops_after[sid]`` -- the explicit operations a PyxIL listing
  shows after statement ``sid`` (for display and tests).

The plan is conservative (may ship updates never read -- the paper's
eager strategy has the same property) but never misses a required
update: if any potentially-remote access exists, the value ships.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.interproc import CallGraph
from repro.analysis.points_to import AllocKind, PointsToResult
from repro.core.partition_graph import Placement
from repro.lang.ir import VarRef
from repro.pyxil.program import PlacedProgram


@dataclass(frozen=True)
class SyncOp:
    """An explicit synchronization operation in a PyxIL listing."""

    kind: str  # "sendAPP" | "sendDB" | "sendNative"
    target: str  # human-readable: "Class.field" or "alloc@sid"


@dataclass
class SyncPlan:
    """Which heap locations must ship with control transfers."""

    field_sync: dict[tuple[str, str], bool] = field(default_factory=dict)
    array_sync: dict[int, bool] = field(default_factory=dict)
    sync_ops_after: dict[int, list[SyncOp]] = field(default_factory=dict)

    def field_ships(self, class_name: str, field_name: str) -> bool:
        return self.field_sync.get((class_name, field_name), True)

    def array_ships(self, alloc_sid: int) -> bool:
        return self.array_sync.get(alloc_sid, True)


def compute_sync_plan(
    placed: PlacedProgram,
    call_graph: CallGraph,
    points_to: PointsToResult,
) -> SyncPlan:
    plan = SyncPlan()
    program = placed.program

    # Gather, per field and per allocation site, the placements of all
    # statements that access it, and the writer statements.
    field_access_placements: dict[tuple[str, str], set[Placement]] = {}
    field_writers: dict[tuple[str, str], list[int]] = {}
    array_access_placements: dict[int, set[Placement]] = {}
    array_writers: dict[int, list[int]] = {}

    for func in program.functions():
        analysis = call_graph.analysis(func.qualified_name)
        for stmt in func.walk():
            placement = placed.placement_of(stmt.sid)
            acc = analysis.defuse.accesses[stmt.sid]

            def classes_for(obj) -> list[str]:
                classes: set[str] = set()
                if isinstance(obj, VarRef):
                    if obj.name == "self":
                        classes.add(func.class_name)
                    classes.update(
                        points_to.classes_of(func.qualified_name, obj.name)
                    )
                return sorted(c for c in classes if c in program.classes)

            for obj, field_name in acc.field_reads:
                for cls in classes_for(obj):
                    if field_name in program.classes[cls].fields:
                        field_access_placements.setdefault(
                            (cls, field_name), set()
                        ).add(placement)
            for obj, field_name in acc.field_writes:
                for cls in classes_for(obj):
                    if field_name in program.classes[cls].fields:
                        key = (cls, field_name)
                        field_access_placements.setdefault(key, set()).add(
                            placement
                        )
                        field_writers.setdefault(key, []).append(stmt.sid)

            def sites_for(atom) -> list[int]:
                out = []
                if isinstance(atom, VarRef):
                    for site in points_to.pts(
                        func.qualified_name, atom.name
                    ):
                        if site.kind is not AllocKind.OBJECT and site.sid > 0:
                            out.append(site.sid)
                return sorted(set(out))

            for atom in acc.index_reads:
                for alloc_sid in sites_for(atom):
                    array_access_placements.setdefault(alloc_sid, set()).add(
                        placement
                    )
            for atom in acc.index_writes:
                for alloc_sid in sites_for(atom):
                    array_access_placements.setdefault(alloc_sid, set()).add(
                        placement
                    )
                    array_writers.setdefault(alloc_sid, []).append(stmt.sid)

    # A location must ship iff it is accessed from both servers.
    for key, placements in field_access_placements.items():
        plan.field_sync[key] = len(placements) > 1
    for alloc_sid, placements in array_access_placements.items():
        plan.array_sync[alloc_sid] = len(placements) > 1

    # Explicit sync ops for listings: after each write whose location
    # is remotely accessed.
    for (cls, field_name), writer_sids in field_writers.items():
        if not plan.field_sync.get((cls, field_name)):
            continue
        part = placed.field_placement(cls, field_name)
        kind = "sendAPP" if part is Placement.APP else "sendDB"
        for sid in writer_sids:
            plan.sync_ops_after.setdefault(sid, []).append(
                SyncOp(kind=kind, target=f"{cls}.{field_name}")
            )
    for alloc_sid, writer_sids in array_writers.items():
        if not plan.array_sync.get(alloc_sid):
            continue
        for sid in writer_sids:
            plan.sync_ops_after.setdefault(sid, []).append(
                SyncOp(kind="sendNative", target=f"alloc@{alloc_sid}")
            )
    return plan
