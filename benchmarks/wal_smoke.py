"""Durability performance smoke: group-commit overhead + recovery rate.

Runs the 32-client adaptive TPC-C serve configuration twice -- once
in-memory, once with per-shard write-ahead logs under group commit
(one fsync per virtual sync interval, not per transaction) -- and
then recovers the logged run from disk.  Writes ``BENCH_wal.json`` at
the repository root with two acceptance numbers:

* **Overhead ceiling** -- logging must cost at most
  ``OVERHEAD_CEILING`` (15%) over the in-memory run.  Wall-clock
  deltas of two multi-second runs are noisy, so two estimators are
  recorded and the ceiling holds if *either* clears it: the
  median-wall delta, and the in-situ attribution (time actually spent
  inside ``commit_ops``/``sync``, captured by wrapping the log's hot
  methods, over the in-memory median).
* **Recovery floor** -- redo replay must process at least
  ``RECOVERY_RATE_FLOOR`` frames per wall second (the measured rate
  is orders of magnitude higher; the floor guards regressions, not
  the margin).

Like the other smokes, it only executes under ``-m perfsmoke``
(``pytest benchmarks/wal_smoke.py -m perfsmoke``); run as a script
for a quick local check: ``PYTHONPATH=src python
benchmarks/wal_smoke.py``.
"""

import json
import shutil
import statistics
import tempfile
import time
from pathlib import Path

import pytest

from repro.db.recovery import recover_sharded
from repro.db.wal import attach_wal
from repro.serve.controller import AdaptiveController
from repro.serve.engine import ServeConfig, ServeEngine
from repro.serve.workload import make_tpcc_workload

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_wal.json"

CLIENTS = 32
SHARDS = 2
DB_CORES = 2
DURATION = 8.0
THINK_TIME = 0.01
SYNC_INTERVAL = 0.25  # virtual seconds between group fsyncs
TRIALS = 3

OVERHEAD_CEILING = 0.15
RECOVERY_RATE_FLOOR = 5000.0  # replayed frames per wall second


def _timed(fn, acc):
    def wrapper(*args, **kwargs):
        start = time.perf_counter()
        try:
            return fn(*args, **kwargs)
        finally:
            acc[0] += time.perf_counter() - start
    return wrapper


def _serve_once(wal_dir=None):
    """One serve run; returns (wall, completed, wal_seconds, stats)."""
    built = make_tpcc_workload(
        db_cores=DB_CORES, seed=17, pool_size=24, shards=SHARDS,
        shard_key="warehouse",
    )
    # Replay alone never touches the database; every 4th draw executes
    # live so committed redo keeps flowing into the logs.
    built.workload.refresh_every = 4
    wal_seconds = [0.0]
    managers = []
    if wal_dir is not None:
        for index, sdb in enumerate(built.databases):
            manager = attach_wal(
                sdb, wal_dir / f"opt{index}", sync_policy="group"
            )
            for shard, wal in enumerate(manager.wals):
                wal.commit_ops = _timed(wal.commit_ops, wal_seconds)
                wal.sync = _timed(wal.sync, wal_seconds)
                # attach_wal captured the unwrapped bound method.
                sdb.shards[shard].redo_collector = wal.commit_ops
            managers.append(manager)
    config = ServeConfig(
        db_shards=SHARDS, db_cores=DB_CORES,
        think_time=THINK_TIME, seed=17,
    )
    engine = ServeEngine(
        built.workload, AdaptiveController(poll_interval=1.0), config
    )
    engine.attach_backends(built.databases, built.clusters)
    if managers:
        engine.attach_wal_managers(managers)
        for manager in managers:
            engine.loop.schedule_periodic(
                SYNC_INTERVAL, manager.sync_all, until=DURATION
            )
    start = time.perf_counter()
    result = engine.run(clients=CLIENTS, duration=DURATION, name="wal")
    wall = time.perf_counter() - start
    stats = {"appends": 0, "syncs": 0, "bytes_written": 0}
    for manager in managers:
        manager.sync_all()
        for wal in manager.wals:
            for key in stats:
                stats[key] += getattr(wal.stats, key)
        manager.close()
    return wall, result.completed, wal_seconds[0], stats


def run_wal_smoke() -> dict:
    base_walls = [_serve_once()[0] for _ in range(TRIALS)]
    wal_root = Path(tempfile.mkdtemp(prefix="wal_smoke_"))
    try:
        wal_walls, wal_in_situ, completed, stats = [], [], 0, {}
        for trial in range(TRIALS):
            wal_dir = wal_root / f"trial{trial}"
            wall, completed, spent, stats = _serve_once(wal_dir)
            wal_walls.append(wall)
            wal_in_situ.append(spent)
        base_median = statistics.median(base_walls)
        wal_median = statistics.median(wal_walls)
        overhead_wall = (wal_median - base_median) / base_median
        overhead_attributed = statistics.median(wal_in_situ) / base_median
        # Recover the last trial's directories (never checkpointed
        # mid-run, so replay walks every logged frame).
        recoveries = []
        for index in range(2):
            target = wal_root / f"trial{TRIALS - 1}" / f"opt{index}"
            start = time.perf_counter()
            _, report = recover_sharded(target)
            elapsed = time.perf_counter() - start
            frames = sum(r.frames_seen for r in report.shard_reports)
            recoveries.append({
                "option": index,
                "frames_replayed": frames,
                "commits_applied": report.commits_applied,
                "wall_ms": elapsed * 1e3,
                "frames_per_second": frames / elapsed if elapsed else 0.0,
            })
    finally:
        shutil.rmtree(wal_root, ignore_errors=True)
    payload = {
        "workload": "tpcc-new-order",
        "clients": CLIENTS,
        "shards": SHARDS,
        "db_cores_per_shard": DB_CORES,
        "virtual_duration_seconds": DURATION,
        "sync_policy": "group",
        "sync_interval_virtual_seconds": SYNC_INTERVAL,
        "completed_txns": completed,
        "frames_appended": stats["appends"],
        "group_fsyncs": stats["syncs"],
        "wal_bytes": stats["bytes_written"],
        "in_memory_wall_seconds": base_walls,
        "wal_wall_seconds": wal_walls,
        "wal_in_situ_seconds": wal_in_situ,
        "overhead_wall_fraction": overhead_wall,
        "overhead_attributed_fraction": overhead_attributed,
        "overhead_ceiling": OVERHEAD_CEILING,
        "recovery": recoveries,
        "recovery_rate_floor": RECOVERY_RATE_FLOOR,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


@pytest.mark.perfsmoke
def test_wal_smoke(request):
    if "perfsmoke" not in (request.config.getoption("-m") or ""):
        pytest.skip("select with -m perfsmoke to record BENCH_wal.json")
    payload = run_wal_smoke()
    print()
    print(
        "wal perf smoke: "
        f"{payload['frames_appended']} frames / "
        f"{payload['group_fsyncs']} group fsyncs; overhead "
        f"{100 * payload['overhead_wall_fraction']:+.1f}% wall / "
        f"{100 * payload['overhead_attributed_fraction']:.1f}% "
        "attributed (ceiling "
        f"{100 * payload['overhead_ceiling']:.0f}%); recovery "
        f"{payload['recovery'][0]['frames_per_second']:,.0f} frames/s "
        f"-> {OUTPUT.name}"
    )
    assert payload["frames_appended"] > 0
    assert payload["group_fsyncs"] > 0
    # Group commit batches fsyncs: far fewer syncs than frames.
    assert payload["group_fsyncs"] < payload["frames_appended"] / 10
    assert (
        min(
            payload["overhead_wall_fraction"],
            payload["overhead_attributed_fraction"],
        )
        <= OVERHEAD_CEILING
    )
    for recovery in payload["recovery"]:
        assert recovery["commits_applied"] > 0
        assert recovery["frames_per_second"] >= RECOVERY_RATE_FLOOR


if __name__ == "__main__":
    print(json.dumps(run_wal_smoke(), indent=2))
