"""Microbenchmark 1 (Section 7.3): runtime overhead versus native.

The paper measures ~6x for Java execution blocks versus native Java.
Our Python block interpreter over native Python lands at a larger
constant (interpreting an interpreter); the claims that carry over are
(a) the overhead is a constant factor and (b) it comes entirely from
the managed stack/heap and block dispatch (no control transfers).
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import micro1
from repro.bench.report import format_micro1


def test_micro1_overhead(benchmark):
    result = run_once(benchmark, lambda: micro1(n=600, repeats=5))
    print()
    print(format_micro1(result))
    assert result.overhead > 1.0

    # Constant-factor check: 3x the input, same order of magnitude
    # (wall-clock timings at sub-millisecond scale are noisy, so the
    # bound is generous; the strict version lives in
    # tests/bench/test_experiments.py with more repeats).
    larger = micro1(n=1800, repeats=5)
    print(f"overhead at n=1800: {larger.overhead:.1f}x")
    ratio = larger.overhead / result.overhead
    assert 0.2 < ratio < 5.0
