"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables or figures and
prints the measured series (the numbers recorded in EXPERIMENTS.md).
``--benchmark-only`` runs them; plain ``pytest`` skips this directory.
"""

import pytest


def run_once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
