"""Figure 10: TPC-C on a 3-core database server.

Paper claims: Manual wins at low throughput but saturates the limited
CPUs; Pyxis (given a small budget) produces a JDBC-like partition that
sustains higher throughput under DB CPU pressure.
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import fig10
from repro.bench.report import format_curves


def test_fig10_tpcc_3core(benchmark):
    result = run_once(benchmark, lambda: fig10(fast=True))
    print()
    print(format_curves(result))

    # Manual is fastest at the lowest offered rate...
    lowest = {
        impl: result.curves[impl][0].latency_ms
        for impl in result.implementations()
    }
    assert lowest["manual"] < lowest["jdbc"]

    # ...but at the highest rate Manual saturates the 3 cores and its
    # latency blows past JDBC and Pyxis.
    highest = {
        impl: result.curves[impl][-1].latency_ms
        for impl in result.implementations()
    }
    assert highest["manual"] > highest["jdbc"]
    assert highest["manual"] > highest["pyxis"]

    # Pyxis's low-budget partition behaves like JDBC (within 20%).
    for p_jdbc, p_pyxis in zip(result.curves["jdbc"], result.curves["pyxis"]):
        assert p_pyxis.latency_ms <= p_jdbc.latency_ms * 1.3 + 2.0

    # Manual's DB utilization reaches saturation first.
    assert result.curves["manual"][-1].db_util > 0.95
