"""Interpreter performance smoke: tree-walker vs compiled blocks.

Times the micro1 linked-list workload under both block-runtime
implementations (``REPRO_INTERP=tree`` and ``compiled``) and writes
``BENCH_interp.json`` at the repository root -- median of five runs
per implementation plus the speedup ratio -- so the interpreter's
performance trajectory is recorded by every CI run from this PR
onward.

Non-failing by design: the only hard assertion is that both
implementations actually ran.  The test only executes when the
``perfsmoke`` marker is selected (``pytest benchmarks/perf_smoke.py
-m perfsmoke``) so plain test runs never rewrite the tracked JSON
with local machine timings; otherwise it reports as skipped.

Run as a script for a quick local check:
``PYTHONPATH=src python benchmarks/perf_smoke.py``.
"""

import json
from pathlib import Path

import pytest

from repro.bench.experiments import interp_comparison

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_interp.json"


def run_perf_smoke(n: int = 600, repeats: int = 5) -> dict:
    result = interp_comparison(n=n, repeats=repeats)
    payload = {
        "workload": "micro1-linked-list",
        "n": result.n,
        "repeats": result.repeats,
        "tree_median_seconds": result.tree_seconds,
        "compiled_median_seconds": result.compiled_seconds,
        "speedup": result.speedup,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


@pytest.mark.perfsmoke
def test_perf_smoke(request):
    if "perfsmoke" not in (request.config.getoption("-m") or ""):
        pytest.skip("select with -m perfsmoke to record BENCH_interp.json")
    payload = run_perf_smoke()
    print()
    print(
        f"interp perf smoke: tree {payload['tree_median_seconds'] * 1e3:.2f} ms, "
        f"compiled {payload['compiled_median_seconds'] * 1e3:.2f} ms, "
        f"speedup {payload['speedup']:.2f}x -> {OUTPUT.name}"
    )
    # Non-failing perf record: assert the measurement happened, not a
    # threshold (wall-clock CI noise would make that flaky).
    assert payload["tree_median_seconds"] > 0
    assert payload["compiled_median_seconds"] > 0


if __name__ == "__main__":
    print(json.dumps(run_perf_smoke(), indent=2))
