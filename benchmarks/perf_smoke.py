"""Interpreter performance smoke: tree walker vs compiled vs source.

Times the micro1 linked-list workload under all three block-runtime
implementations (``REPRO_INTERP=tree``, ``compiled`` and ``source``)
and writes ``BENCH_interp.json`` at the repository root -- per mode,
the median and fastest of the timed runs, plus the speedup ratios --
so the interpreter's performance trajectory is recorded by every CI
run from this PR onward.

The tree/compiled ratio stays a non-failing record (its historical
role).  The source rung carries a hard floor: the generated-source
executors must beat the closure compiler by ``SOURCE_SPEEDUP_FLOOR``
on this mix.  Ratios of back-to-back runs on one machine are stable,
and the floor holds if either the best-of or the median estimator
clears it, so CI noise on a single pass cannot fail the check.

The test only executes when the ``perfsmoke`` marker is selected
(``pytest benchmarks/perf_smoke.py -m perfsmoke``) so plain test runs
never rewrite the tracked JSON with local machine timings; otherwise
it reports as skipped.  Run as a script for a quick local check:
``PYTHONPATH=src python benchmarks/perf_smoke.py``.
"""

import json
from pathlib import Path

import pytest

from repro.bench.experiments import interp_comparison

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_interp.json"

SOURCE_SPEEDUP_FLOOR = 2.0


def run_perf_smoke(n: int = 600, repeats: int = 5) -> dict:
    result = interp_comparison(n=n, repeats=repeats)
    modes = {}
    for mode in ("tree", "compiled", "source"):
        modes[mode] = {
            "median_seconds": getattr(result, f"{mode}_seconds"),
            "best_seconds": getattr(result, f"{mode}_best_seconds"),
        }
    payload = {
        "workload": "micro1-linked-list",
        "n": result.n,
        "repeats": result.repeats,
        # Per-mode fastest and median side by side.
        "modes": modes,
        # Historical flat keys, kept so the BENCH trajectory recorded
        # by earlier PRs stays directly comparable.
        "tree_median_seconds": result.tree_seconds,
        "compiled_median_seconds": result.compiled_seconds,
        "source_median_seconds": result.source_seconds,
        "tree_best_seconds": result.tree_best_seconds,
        "compiled_best_seconds": result.compiled_best_seconds,
        "source_best_seconds": result.source_best_seconds,
        "speedup": result.speedup,
        "source_speedup": result.source_speedup,
        "source_best_speedup": result.source_best_speedup,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


@pytest.mark.perfsmoke
def test_perf_smoke(request):
    if "perfsmoke" not in (request.config.getoption("-m") or ""):
        pytest.skip("select with -m perfsmoke to record BENCH_interp.json")
    payload = run_perf_smoke()
    print()
    for mode, row in payload["modes"].items():
        print(
            f"interp perf smoke [{mode}]: best "
            f"{row['best_seconds'] * 1e3:.2f} ms, median "
            f"{row['median_seconds'] * 1e3:.2f} ms"
        )
    print(
        f"interp perf smoke: compiled/tree {payload['speedup']:.2f}x, "
        f"source/compiled {payload['source_speedup']:.2f}x "
        f"-> {OUTPUT.name}"
    )
    for mode in ("tree", "compiled", "source"):
        assert payload["modes"][mode]["median_seconds"] > 0
        assert payload["modes"][mode]["best_seconds"] > 0
    # The tree/compiled ratio stays a non-failing record.  The source
    # rung's floor holds if either estimator clears it (noise can
    # depress best-of and the median independently).
    assert (
        max(payload["source_speedup"], payload["source_best_speedup"])
        >= SOURCE_SPEEDUP_FLOOR
    )


if __name__ == "__main__":
    print(json.dumps(run_perf_smoke(), indent=2))
