"""Figure 11: dynamic partition switching under a mid-run load spike.

Paper claims: before the load arrives Pyxis tracks Manual; after the
DB is loaded the EWMA-driven switcher moves to the JDBC-like partition
(the reported mix goes 0% -> 100%), and Pyxis's settled latency tracks
the better of the two static implementations.
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import fig11
from repro.bench.report import format_fig11


def test_fig11_dynamic_switching(benchmark):
    result = run_once(benchmark, lambda: fig11(fast=True))
    print()
    print(format_fig11(result))

    def phase_mean(name: str, start: float, end: float) -> float:
        samples = [
            latency for when, latency in result.buckets[name]
            if start <= when < end
        ]
        return sum(samples) / len(samples)

    load_time = result.load_time
    end = max(when for when, _ in result.buckets["pyxis"])

    # Before the load: Pyxis tracks Manual (within 25%), beats JDBC.
    pre_pyxis = phase_mean("pyxis", 0, load_time)
    pre_manual = phase_mean("manual", 0, load_time)
    pre_jdbc = phase_mean("jdbc", 0, load_time)
    assert pre_pyxis < pre_manual * 1.25
    assert pre_pyxis < pre_jdbc * 0.6

    # After settling (skip the adaptation window): Pyxis tracks JDBC
    # while Manual is degraded.
    settle = load_time + (end - load_time) * 0.4
    post_pyxis = phase_mean("pyxis", settle, end)
    post_jdbc = phase_mean("jdbc", settle, end)
    post_manual = phase_mean("manual", settle, end)
    assert post_pyxis < post_manual
    assert post_pyxis < post_jdbc * 1.5

    # The partition mix flips from manual-like to jdbc-like.
    fractions = [frac["jdbc_like"] for _, frac in result.pyxis_mix]
    assert fractions[0] < 0.05
    assert fractions[-1] > 0.95
