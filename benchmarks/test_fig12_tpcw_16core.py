"""Figure 12: TPC-W browsing mix on a 16-core database server.

Paper claims: same ordering as TPC-C with a somewhat larger
Pyxis-versus-Manual gap (more program logic flows through the
runtime), and the Pyxis partition keeps no-database interactions on
the application server.
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import fig12
from repro.bench.report import format_curves


def test_fig12_tpcw_16core(benchmark):
    result = run_once(benchmark, lambda: fig12(fast=True))
    print()
    print(format_curves(result))

    jdbc = result.best_latency("jdbc")
    manual = result.best_latency("manual")
    pyxis = result.best_latency("pyxis")

    # Manual and Pyxis beat JDBC.
    assert manual < jdbc
    assert pyxis < jdbc
    # Pyxis within 30% of Manual ("a bit more overhead", Section 7.2).
    assert pyxis <= manual * 1.3

    # Network: the DB-heavy Pyxis partition ships less than JDBC.
    jdbc_net = max(p.net_kb_per_sec for p in result.curves["jdbc"])
    pyxis_net = max(p.net_kb_per_sec for p in result.curves["pyxis"])
    assert pyxis_net < jdbc_net
