"""Ablation benches for the design choices DESIGN.md calls out.

* Statement reordering (Section 4.4): how many control transfers does
  the dual-queue topological sort save?
* Solver choice: exact (scipy / branch-and-bound) versus the greedy
  heuristic -- objective quality on the real TPC-C partition graph.
* JDBC co-location (Section 4.3): how much objective the constraint
  costs (it buys correctness, not speed).
"""

import time

from benchmarks.conftest import run_once
from repro.core.ilp import build_ilp, solve_partitioning
from repro.core.pipeline import Pyxis, PyxisConfig
from repro.core.solvers import solve_greedy, solve_with_scipy
from repro.runtime.entrypoints import PartitionedApp
from repro.sim.cluster import Cluster
from repro.workloads.tpcc import (
    TPCC_ENTRY_POINTS,
    TPCC_SOURCE,
    TpccInputGenerator,
    TpccScale,
    make_tpcc_database,
)

SCALE = TpccScale()


def _tpcc_profiled(reorder: bool = True):
    pyx = Pyxis.from_source(
        TPCC_SOURCE, TPCC_ENTRY_POINTS, PyxisConfig(reorder=reorder)
    )
    _, conn = make_tpcc_database(SCALE)
    gen = TpccInputGenerator(SCALE, seed=77)

    def workload(p):
        for _ in range(6):
            order = gen.new_order(0)
            p.invoke(
                "TpccTransactions", "new_order",
                order.w_id, order.d_id, order.c_id,
                order.item_ids, order.supply_w_ids, order.quantities,
            )

    profile = pyx.profile_with(conn, workload)
    return pyx, profile


def _transfers(pyx, pset):
    # Prefer a genuinely split partition; otherwise use the most mixed.
    split = [p for p in pset.by_budget() if 0.0 < p.fraction_on_db < 1.0]
    part = (
        split[0]
        if split
        else min(
            pset.by_budget(),
            key=lambda p: abs(p.fraction_on_db - 0.5),
        )
    )
    _, conn = make_tpcc_database(SCALE)
    app = PartitionedApp(part.compiled, Cluster(), conn)
    gen = TpccInputGenerator(SCALE, seed=78)
    order = gen.new_order(0)
    outcome = app.invoke_traced(
        "TpccTransactions", "new_order",
        order.w_id, order.d_id, order.c_id,
        order.item_ids, order.supply_w_ids, order.quantities,
    )
    return outcome.control_transfers + outcome.db_round_trips


def test_ablation_reordering(benchmark):
    """Reordering must never increase communication; report the delta."""

    def experiment():
        pyx_on, profile = _tpcc_profiled(reorder=True)
        total = profile.total_statement_weight()
        budgets = [total * 0.5]
        pset_on = pyx_on.partition(profile, budgets=budgets)
        pyx_off, profile_off = _tpcc_profiled(reorder=False)
        pset_off = pyx_off.partition(profile_off, budgets=budgets)
        return (
            _transfers(pyx_on, pset_on), _transfers(pyx_off, pset_off),
        )

    with_reorder, without_reorder = run_once(benchmark, experiment)
    print(
        f"\ncommunication events per txn: reordered={with_reorder} "
        f"unordered={without_reorder}"
    )
    assert with_reorder <= without_reorder


def test_ablation_solver_quality(benchmark):
    """Greedy versus exact on the real TPC-C partition graph."""

    def experiment():
        pyx, profile = _tpcc_profiled()
        pset = pyx.partition(profile, budgets=[1e9])
        graph = pset.graph
        budget = profile.total_statement_weight() * 0.5
        results = {}
        for name, solver in (
            ("scipy", solve_with_scipy), ("greedy", solve_greedy),
        ):
            start = time.perf_counter()
            outcome = solve_partitioning(graph, budget, solver, name)
            elapsed = time.perf_counter() - start
            results[name] = (outcome.objective, elapsed)
        return results

    results = run_once(benchmark, experiment)
    print()
    for name, (objective, elapsed) in results.items():
        print(f"{name:<8} objective={objective * 1000:.3f}ms  "
              f"solve_time={elapsed * 1000:.1f}ms")
    # Greedy is never better than the exact optimum.
    assert results["greedy"][0] >= results["scipy"][0] - 1e-12
    # And stays within 2x on this graph.
    assert results["greedy"][0] <= max(results["scipy"][0] * 2.0, 1e-9)


def test_ablation_jdbc_colocation(benchmark):
    """Dropping the JDBC co-location constraint can only lower the
    objective (it is a correctness constraint, not an optimization)."""

    def experiment():
        pyx, profile = _tpcc_profiled()
        pset = pyx.partition(profile, budgets=[1e9])
        graph = pset.graph
        budget = profile.total_statement_weight() * 0.5
        constrained = solve_partitioning(
            graph, budget, solve_with_scipy, "scipy"
        ).objective
        saved_groups = graph.colocate_groups
        try:
            graph.colocate_groups = [
                g for g in saved_groups
                if not any(n.startswith("s") for n in g) or len(g) == 2
            ]
            relaxed_problem = build_ilp(graph, budget)
            relaxed_values = solve_with_scipy(relaxed_problem)
            relaxed = relaxed_problem.objective_of(relaxed_values)
        finally:
            graph.colocate_groups = saved_groups
        return constrained, relaxed

    constrained, relaxed = run_once(benchmark, experiment)
    print(
        f"\nobjective with colocation={constrained * 1000:.3f}ms "
        f"without={relaxed * 1000:.3f}ms"
    )
    assert relaxed <= constrained + 1e-12
