"""Sharded-tier performance smoke: TPC-C scaling 1 -> 4 shards.

Runs the adaptive serve configuration against the sharded database
tier at 1, 2 and 4 shards (warehouse-affine routing, identical
four-warehouse workload at every point) and writes
``BENCH_shard.json`` at the repository root.  Throughput is per
*virtual* second -- deterministic across machines -- so the recorded
speedup is a hard acceptance floor, not a flaky perf number: the
differential suites prove the sharded tier returns bit-identical
results, and this smoke proves the distribution actually buys
throughput.

Like the other smokes, it only executes under ``-m perfsmoke``
(``pytest benchmarks/shard_smoke.py -m perfsmoke``); run as a script
for a quick local check: ``PYTHONPATH=src python
benchmarks/shard_smoke.py``.
"""

import json
import time
from pathlib import Path

import pytest

from repro.bench.serve_experiments import serve_shard_sweep

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_shard.json"

SHARD_COUNTS = (1, 2, 4)
CLIENTS = 96
DB_CORES = 2
DURATION = 15.0
SPEEDUP_FLOOR = 2.5


def run_shard_smoke() -> dict:
    start = time.perf_counter()
    sweep = serve_shard_sweep(
        fast=True,
        shard_counts=SHARD_COUNTS,
        clients=CLIENTS,
        db_cores=DB_CORES,
        duration=DURATION,
        shard_key="warehouse",
        seed=17,
    )
    wall = time.perf_counter() - start
    payload = {
        "workload": "tpcc-new-order",
        "shard_key": "warehouse",
        "clients": CLIENTS,
        "db_cores_per_shard": DB_CORES,
        "virtual_duration_seconds": DURATION,
        "warehouses": sweep.notes.get("warehouses"),
        "points": [
            {
                "shards": p.shards,
                "adaptive_txn_per_virtual_second": p.throughput,
                "p95_latency_ms": p.p95_ms,
                "db_shard_utilization": [
                    round(u, 4) for u in p.db_shard_utilization
                ],
                "switches": p.switches,
            }
            for p in sweep.points
        ],
        "speedup_4_shards_vs_1": sweep.speedup,
        "speedup_floor": SPEEDUP_FLOOR,
        "wall_seconds_all_points": wall,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


@pytest.mark.perfsmoke
def test_shard_smoke(request):
    if "perfsmoke" not in (request.config.getoption("-m") or ""):
        pytest.skip("select with -m perfsmoke to record BENCH_shard.json")
    payload = run_shard_smoke()
    print()
    speedup = payload["speedup_4_shards_vs_1"]
    tputs = {
        p["shards"]: p["adaptive_txn_per_virtual_second"]
        for p in payload["points"]
    }
    print(
        "shard perf smoke: adaptive "
        + " / ".join(f"{tputs[s]:.1f}@{s}sh" for s in sorted(tputs))
        + f" txn/vs -> {speedup:.2f}x at 4 shards, "
        f"{payload['wall_seconds_all_points']:.1f}s wall -> {OUTPUT.name}"
    )
    # Virtual-clock deterministic, so a hard floor is safe: the
    # acceptance criterion for the sharded tier.
    assert speedup >= SPEEDUP_FLOOR


if __name__ == "__main__":
    print(json.dumps(run_shard_smoke(), indent=2))
