"""Partitioning-pipeline performance smoke: cold vs incremental.

Times the TPC-C partitioning pipeline twice and writes
``BENCH_pipeline.json`` at the repository root:

* **cold** -- the paper's Figure-1 pipeline from scratch for a new
  batch of observations: the instrumented profiling run, static
  analyses, partition-graph structure build, cold solves for the
  two-budget ladder, PyxIL compilation (database *setup* is excluded
  -- it is environment, not pipeline);
* **incremental** -- the warm session absorbing the same observations:
  no instrumented re-profiling (live statement counts arrive for free
  from the serve layer), cached structure, reweight only, warm-start
  seeds offered to the solver (consumed by greedy/bnb; the exact
  scipy backend ignores them), and PyxIL reuse whenever the
  assignment hash is unchanged.

Like the other smokes it only executes under ``-m perfsmoke``
(``pytest benchmarks/pipeline_smoke.py -m perfsmoke``) so plain test
runs never rewrite the tracked JSON; run as a script for a quick local
check: ``PYTHONPATH=src python benchmarks/pipeline_smoke.py``.
"""

import json
import statistics
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_pipeline.json"

BUDGET_LADDER = [0.0, 1e9]
REPEATS = 3


def _fresh_tpcc_connection():
    from repro.workloads.tpcc import TpccScale, make_tpcc_database

    _, conn = make_tpcc_database(TpccScale())
    return conn


def _profile_tpcc(pyxis, conn, seed: int = 31):
    from repro.workloads.tpcc import TpccInputGenerator, TpccScale

    gen = TpccInputGenerator(TpccScale(), seed=seed)

    def workload(profiler):
        for _ in range(10):
            order = gen.new_order(rollback_fraction=0.0)
            profiler.invoke(
                "TpccTransactions", "new_order",
                order.w_id, order.d_id, order.c_id,
                order.item_ids, order.supply_w_ids, order.quantities,
            )

    return pyxis.profile_with(conn, workload)


def run_pipeline_smoke() -> dict:
    from repro.core.pipeline import Pyxis, PyxisConfig
    from repro.workloads.tpcc import TPCC_ENTRY_POINTS, TPCC_SOURCE

    # Parse once; sids are per-parse, so every profile must be
    # recorded against the same program object the sessions use.
    base = Pyxis.from_source(TPCC_SOURCE, TPCC_ENTRY_POINTS)
    program = base.program

    def cold_once() -> float:
        conn = _fresh_tpcc_connection()  # environment, not timed
        start = time.perf_counter()
        session = Pyxis(program, PyxisConfig())
        profile = _profile_tpcc(session, conn)
        session.partition(profile, budgets=BUDGET_LADDER)
        return time.perf_counter() - start

    cold_samples = [cold_once() for _ in range(REPEATS)]

    # One warm session: the first pass pays the cold cost, then each
    # timed incremental pass absorbs a fresh batch of observations.
    # Those counts are collected *outside* the timed region: in the
    # serving system they arrive for free from the live profiler.
    warm = Pyxis(program, PyxisConfig())
    warm.partition(
        _profile_tpcc(warm, _fresh_tpcc_connection()),
        budgets=BUDGET_LADDER,
    )

    def incremental_once() -> float:
        shifted = _profile_tpcc(base, _fresh_tpcc_connection())
        start = time.perf_counter()
        warm.partition(shifted, budgets=BUDGET_LADDER)
        return time.perf_counter() - start

    incremental_samples = [incremental_once() for _ in range(REPEATS)]

    cold = statistics.median(cold_samples)
    incremental = statistics.median(incremental_samples)
    payload = {
        "workload": "tpcc-new-order",
        "budgets": BUDGET_LADDER,
        "repeats": REPEATS,
        # Cold includes the instrumented profiling run (part of the
        # Figure-1 pipeline); incremental replaces it with counts the
        # serve layer already collected.
        "cold_pipeline_seconds": cold,
        "incremental_resolve_seconds": incremental,
        "speedup": cold / incremental if incremental > 0 else float("inf"),
        "session_stats": warm.stats.snapshot(),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


@pytest.mark.perfsmoke
def test_pipeline_smoke(request):
    if "perfsmoke" not in (request.config.getoption("-m") or ""):
        pytest.skip("select with -m perfsmoke to record BENCH_pipeline.json")
    payload = run_pipeline_smoke()
    print()
    print(
        f"pipeline perf smoke: cold "
        f"{payload['cold_pipeline_seconds'] * 1000:.1f} ms, incremental "
        f"{payload['incremental_resolve_seconds'] * 1000:.1f} ms "
        f"({payload['speedup']:.1f}x) -> {OUTPUT.name}"
    )
    stats = payload["session_stats"]
    assert stats["structure_builds"] == 1
    # Every incremental pass reused the cached PyxIL artifacts.
    assert stats["pyxil_reuses"] >= 2 * REPEATS
    # The incremental path must beat the cold pipeline clearly; the
    # cached-artifact design gives far more than this floor.
    assert payload["speedup"] >= 3.0


if __name__ == "__main__":
    print(json.dumps(run_pipeline_smoke(), indent=2))
