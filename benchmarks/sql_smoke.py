"""SQL executor performance smoke: tree walker vs compiled plans.

Times the TPC-C new-order statement mix under both SQL executors
(``REPRO_SQL_EXEC=tree`` and ``compiled``) and writes ``BENCH_sql.json``
at the repository root -- median of seven timed passes per
implementation, statement throughput for each, plus the speedup ratio
-- so the embedded engine's performance trajectory is recorded by every
CI run from this PR onward.

Like the other smokes it only executes under ``-m perfsmoke``
(``pytest benchmarks/sql_smoke.py -m perfsmoke``) so plain test runs
never rewrite the tracked JSON; run as a script for a quick local
check: ``PYTHONPATH=src python benchmarks/sql_smoke.py``.

The speedup floor asserted here is wall-clock, but the ratio of two
measurements taken back-to-back on the same machine is stable (same
approach as ``pipeline_smoke.py``), and the headline ratio compares
the *fastest* pass per implementation -- external noise only ever
adds time -- so a few clean passes out of seven suffice.  The
compiled executor measures ~3.5-4x on the development machine
against a 3.0x floor.
"""

import json
from pathlib import Path

import pytest

from repro.bench.experiments import sql_exec_comparison

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_sql.json"

SPEEDUP_FLOOR = 3.0


def run_sql_smoke(transactions: int = 50, repeats: int = 7) -> dict:
    result = sql_exec_comparison(transactions=transactions, repeats=repeats)
    payload = {
        "workload": "tpcc-new-order-mix",
        "transactions": result.transactions,
        "statements": result.statements,
        "repeats": result.repeats,
        "tree_median_seconds": result.tree_seconds,
        "compiled_median_seconds": result.compiled_seconds,
        "tree_best_seconds": result.tree_best_seconds,
        "compiled_best_seconds": result.compiled_best_seconds,
        "tree_statements_per_second": result.tree_statements_per_second,
        "compiled_statements_per_second":
            result.compiled_statements_per_second,
        "speedup": result.speedup,
        "median_speedup": result.median_speedup,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


@pytest.mark.perfsmoke
def test_sql_smoke(request):
    if "perfsmoke" not in (request.config.getoption("-m") or ""):
        pytest.skip("select with -m perfsmoke to record BENCH_sql.json")
    payload = run_sql_smoke()
    print()
    print(
        f"sql perf smoke: tree {payload['tree_statements_per_second']:,.0f} "
        f"stmt/s, compiled "
        f"{payload['compiled_statements_per_second']:,.0f} stmt/s, "
        f"speedup {payload['speedup']:.2f}x -> {OUTPUT.name}"
    )
    assert payload["tree_median_seconds"] > 0
    assert payload["compiled_median_seconds"] > 0
    # Ratio of back-to-back runs on one machine, measured ~3.5-4x.
    # Noise can depress either estimator independently (a transiently
    # fast outlier pass skews best-of, a transiently loaded stretch
    # skews the median), so the floor holds if either clears it.
    assert (
        max(payload["speedup"], payload["median_speedup"]) >= SPEEDUP_FLOOR
    )


if __name__ == "__main__":
    print(json.dumps(run_sql_smoke(), indent=2))
