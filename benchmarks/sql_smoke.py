"""SQL executor performance smoke: tree walker vs compiled vs source.

Times the TPC-C new-order statement mix under all three SQL executors
(``REPRO_SQL_EXEC=tree``, ``compiled`` and ``source``) and writes
``BENCH_sql.json`` at the repository root -- per mode, the fastest
pass *and* the median of seven timed passes side by side, statement
throughput, plus the speedup ratios -- so the embedded engine's
performance trajectory stays comparable across PRs.

Like the other smokes it only executes under ``-m perfsmoke``
(``pytest benchmarks/sql_smoke.py -m perfsmoke``) so plain test runs
never rewrite the tracked JSON; run as a script for a quick local
check: ``PYTHONPATH=src python benchmarks/sql_smoke.py``.

The speedup floors asserted here are wall-clock, but the ratio of two
measurements taken back-to-back on the same machine is stable (same
approach as ``pipeline_smoke.py``), and the headline ratios compare
the *fastest* pass per implementation -- external noise only ever
adds time -- so a few clean passes out of seven suffice.  The
closure executor measures ~3.5-4x over tree against a 3.0x floor;
the source rung measures well over its 2.0x floor against the
closure executor on the development machine.
"""

import json
from pathlib import Path

import pytest

from repro.bench.experiments import sql_exec_comparison

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_sql.json"

SPEEDUP_FLOOR = 3.0
SOURCE_SPEEDUP_FLOOR = 2.0


def run_sql_smoke(transactions: int = 50, repeats: int = 7) -> dict:
    result = sql_exec_comparison(transactions=transactions, repeats=repeats)
    modes = {}
    for mode in ("tree", "compiled", "source"):
        median = getattr(result, f"{mode}_seconds")
        modes[mode] = {
            "median_seconds": median,
            "best_seconds": getattr(result, f"{mode}_best_seconds"),
            "statements_per_second": result.statements / median,
        }
    payload = {
        "workload": "tpcc-new-order-mix",
        "transactions": result.transactions,
        "statements": result.statements,
        "repeats": result.repeats,
        # Per-mode fastest and median side by side.
        "modes": modes,
        # Historical flat keys, kept so the BENCH trajectory recorded
        # by earlier PRs stays directly comparable.
        "tree_median_seconds": result.tree_seconds,
        "compiled_median_seconds": result.compiled_seconds,
        "source_median_seconds": result.source_seconds,
        "tree_best_seconds": result.tree_best_seconds,
        "compiled_best_seconds": result.compiled_best_seconds,
        "source_best_seconds": result.source_best_seconds,
        "tree_statements_per_second": result.tree_statements_per_second,
        "compiled_statements_per_second":
            result.compiled_statements_per_second,
        "source_statements_per_second":
            result.source_statements_per_second,
        "speedup": result.speedup,
        "median_speedup": result.median_speedup,
        "source_speedup": result.source_speedup,
        "source_median_speedup": result.source_median_speedup,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


@pytest.mark.perfsmoke
def test_sql_smoke(request):
    if "perfsmoke" not in (request.config.getoption("-m") or ""):
        pytest.skip("select with -m perfsmoke to record BENCH_sql.json")
    payload = run_sql_smoke()
    print()
    for mode, row in payload["modes"].items():
        print(
            f"sql perf smoke [{mode}]: best "
            f"{row['best_seconds'] * 1e3:.2f} ms, median "
            f"{row['median_seconds'] * 1e3:.2f} ms, "
            f"{row['statements_per_second']:,.0f} stmt/s"
        )
    print(
        f"sql perf smoke: compiled/tree {payload['speedup']:.2f}x, "
        f"source/compiled {payload['source_speedup']:.2f}x "
        f"-> {OUTPUT.name}"
    )
    for mode in ("tree", "compiled", "source"):
        assert payload["modes"][mode]["median_seconds"] > 0
        assert payload["modes"][mode]["best_seconds"] > 0
    # Ratios of back-to-back runs on one machine.  Noise can depress
    # either estimator independently (a transiently fast outlier pass
    # skews best-of, a transiently loaded stretch skews the median),
    # so each floor holds if either estimator clears it.
    assert (
        max(payload["speedup"], payload["median_speedup"]) >= SPEEDUP_FLOOR
    )
    assert (
        max(payload["source_speedup"], payload["source_median_speedup"])
        >= SOURCE_SPEEDUP_FLOOR
    )


if __name__ == "__main__":
    print(json.dumps(run_sql_smoke(), indent=2))
