"""Failover performance smoke: kill a primary, measure the recovery.

Runs the 96-client adaptive TPC-C serve configuration against the
replicated shard tier (2 shards x (primary + 2 replicas)), crashes
shard 1's primary mid-run via the fault injector, and writes
``BENCH_replica.json`` at the repository root: the detection +
promotion (recovery) time, throughput on either side of the fault,
and the abort/retry counts.  All times are *virtual* seconds --
deterministic across machines -- so the recorded floors are hard
acceptance criteria, not flaky perf numbers: the differential suites
prove promoted replicas are bit-identical to the single-server
oracle, and this smoke proves the failover is fast enough to keep
serving.

Like the other smokes, it only executes under ``-m perfsmoke``
(``pytest benchmarks/replica_smoke.py -m perfsmoke``); run as a
script for a quick local check: ``PYTHONPATH=src python
benchmarks/replica_smoke.py``.
"""

import json
import time
from pathlib import Path

import pytest

from repro.bench.serve_experiments import serve_failover

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_replica.json"

CLIENTS = 96
SHARDS = 2
REPLICAS = 2
DB_CORES = 2
DURATION = 15.0
CRASH_AT = 6.0

# Acceptance floors (virtual-clock deterministic, so hard asserts):
# the supervisor must promote within a virtual second of the crash,
# and post-failover throughput must recover to at least half the
# pre-fault level.
RECOVERY_TIME_CEILING = 1.0
RECOVERED_FRACTION_FLOOR = 0.5


def run_replica_smoke() -> dict:
    start = time.perf_counter()
    result = serve_failover(
        fast=True,
        clients=CLIENTS,
        shards=SHARDS,
        replicas=REPLICAS,
        db_cores=DB_CORES,
        duration=DURATION,
        fault_specs=(f"crash:db{SHARDS - 1}@{CRASH_AT:g}",),
        seed=17,
    )
    wall = time.perf_counter() - start
    event = result.failovers[0] if result.failovers else None
    payload = {
        "workload": "tpcc-new-order",
        "clients": CLIENTS,
        "shards": SHARDS,
        "replicas_per_shard": REPLICAS,
        "db_cores_per_shard": DB_CORES,
        "virtual_duration_seconds": DURATION,
        "fault_specs": result.fault_specs,
        "failover": {
            "shard": event.shard,
            "crashed_at": event.crashed_at,
            "detected_at": event.detected_at,
            "promoted_at": event.promoted_at,
            "chosen_replica": event.chosen_replica,
            "replayed_entries": event.replayed_entries,
            "generation": event.generation,
            "recovery_virtual_seconds": event.recovery_time,
        } if event is not None else None,
        "throughput_txn_per_virtual_second": result.throughput,
        "pre_fault_throughput": result.pre_fault_throughput,
        "post_failover_throughput": result.post_failover_throughput,
        "recovered_fraction": result.recovered_fraction,
        "txn_aborts": result.aborted,
        "txn_retries": result.txn_retries,
        "two_pc": result.two_pc,
        "replica_groups_bit_identical": result.replicas_consistent,
        "recovery_time_ceiling": RECOVERY_TIME_CEILING,
        "recovered_fraction_floor": RECOVERED_FRACTION_FLOOR,
        "wall_seconds": wall,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


@pytest.mark.perfsmoke
def test_replica_smoke(request):
    if "perfsmoke" not in (request.config.getoption("-m") or ""):
        pytest.skip("select with -m perfsmoke to record BENCH_replica.json")
    payload = run_replica_smoke()
    print()
    failover = payload["failover"]
    print(
        "replica perf smoke: crash db1 @"
        f"{CRASH_AT:g}vs -> promoted in "
        f"{failover['recovery_virtual_seconds']:.2f}vs; "
        f"{payload['pre_fault_throughput']:.1f} -> "
        f"{payload['post_failover_throughput']:.1f} txn/vs "
        f"({100 * payload['recovered_fraction']:.0f}% recovered), "
        f"{payload['txn_aborts']} abort(s)/"
        f"{payload['txn_retries']} retr(ies), "
        f"{payload['wall_seconds']:.1f}s wall -> {OUTPUT.name}"
    )
    assert failover is not None, "no failover happened"
    assert failover["generation"] == 1
    assert failover["recovery_virtual_seconds"] <= RECOVERY_TIME_CEILING
    assert payload["recovered_fraction"] >= RECOVERED_FRACTION_FLOOR
    assert payload["replica_groups_bit_identical"]


if __name__ == "__main__":
    print(json.dumps(run_replica_smoke(), indent=2))
