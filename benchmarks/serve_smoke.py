"""Serving-engine performance smoke: 32-client TPC-C throughput.

Runs the closed-loop serve engine at 32 clients with the adaptive
controller on a 3-core database server and writes ``BENCH_serve.json``
at the repository root -- transactions per *virtual* second (the
modeled system's throughput, deterministic across machines) plus the
wall-clock cost of simulating it (machine-dependent, recorded for the
performance trajectory).

Like the interpreter smoke, it only executes under ``-m perfsmoke``
(``pytest benchmarks/serve_smoke.py -m perfsmoke``) so plain test runs
never rewrite the tracked JSON; run as a script for a quick local
check: ``PYTHONPATH=src python benchmarks/serve_smoke.py``.
"""

import json
import time
from pathlib import Path

import pytest

from repro.bench.serve_experiments import serve_load_sweep

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_serve.json"

CLIENTS = 32
DB_CORES = 3
DURATION = 20.0


def run_serve_smoke() -> dict:
    start = time.perf_counter()
    sweep = serve_load_sweep(
        fast=True,
        client_counts=[CLIENTS],
        db_cores=DB_CORES,
        duration=DURATION,
        seed=17,
    )
    wall = time.perf_counter() - start
    point = sweep.curves["adaptive"][0]
    payload = {
        "workload": "tpcc-new-order",
        "clients": CLIENTS,
        "db_cores": DB_CORES,
        "virtual_duration_seconds": DURATION,
        "adaptive_txn_per_virtual_second": point.throughput,
        "adaptive_p95_latency_ms": point.p95_ms,
        "adaptive_switches": point.switches,
        "static_low_txn_per_virtual_second":
            sweep.curves["static_low"][0].throughput,
        "static_high_txn_per_virtual_second":
            sweep.curves["static_high"][0].throughput,
        "wall_seconds_all_configs": wall,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


@pytest.mark.perfsmoke
def test_serve_smoke(request):
    if "perfsmoke" not in (request.config.getoption("-m") or ""):
        pytest.skip("select with -m perfsmoke to record BENCH_serve.json")
    payload = run_serve_smoke()
    print()
    print(
        f"serve perf smoke: adaptive "
        f"{payload['adaptive_txn_per_virtual_second']:.1f} txn/vs at "
        f"{CLIENTS} clients "
        f"(static {payload['static_low_txn_per_virtual_second']:.1f} / "
        f"{payload['static_high_txn_per_virtual_second']:.1f}), "
        f"{payload['wall_seconds_all_configs']:.1f}s wall -> {OUTPUT.name}"
    )
    # Non-failing perf record, but the modeled throughput is virtual-
    # clock deterministic, so a hard floor is safe: the adaptive config
    # must at least keep up with the weaker static partitioning.
    weakest = min(
        payload["static_low_txn_per_virtual_second"],
        payload["static_high_txn_per_virtual_second"],
    )
    assert payload["adaptive_txn_per_virtual_second"] > 0
    assert payload["adaptive_txn_per_virtual_second"] >= 0.85 * weakest


if __name__ == "__main__":
    print(json.dumps(run_serve_smoke(), indent=2))
