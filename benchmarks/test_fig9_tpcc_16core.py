"""Figure 9: TPC-C on a 16-core database server.

Paper claims reproduced here: Manual and Pyxis(high budget) nearly
coincide; JDBC pays ~3x the latency; JDBC's throughput caps earlier
(lock contention on district rows).
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import fig9
from repro.bench.report import format_curves


def test_fig9_tpcc_16core(benchmark):
    result = run_once(benchmark, lambda: fig9(fast=True))
    print()
    print(format_curves(result))

    jdbc_best = result.best_latency("jdbc")
    manual_best = result.best_latency("manual")
    pyxis_best = result.best_latency("pyxis")

    # Pyxis tracks Manual within 25%.
    assert pyxis_best <= manual_best * 1.25
    # JDBC pays at least 2x the latency of Manual (paper: ~3x).
    assert jdbc_best >= 2.0 * manual_best

    # At a 3x-unloaded-latency cap, Manual/Pyxis sustain more
    # throughput than JDBC (paper: 1.7x).
    cap = 3.0 * manual_best
    assert result.max_throughput("manual", cap) > result.max_throughput(
        "jdbc", cap
    )
    assert result.max_throughput("pyxis", cap) > result.max_throughput(
        "jdbc", cap
    )

    # Figure 9c: JDBC moves the most bytes; Pyxis less than JDBC.
    jdbc_net = max(p.net_kb_per_sec for p in result.curves["jdbc"])
    pyxis_net = max(p.net_kb_per_sec for p in result.curves["pyxis"])
    assert pyxis_net < jdbc_net
