"""Observability overhead smoke: tracing-enabled vs tracing-disabled.

Runs the 32-client TPC-C serve scenario twice per mode (tracing off,
tracing on) with identical seeds and fresh workloads, takes the
best-of-two wall time per mode, and writes ``BENCH_obs.json`` at the
repository root with the relative overhead of span collection.  It
also exports one Chrome ``trace_event`` JSON (``BENCH_obs_trace.json``,
Perfetto-loadable) from a short fault-injected failover run so CI
archives a real trace artifact.

Two invariants are asserted, not just recorded:

* the traced run's *virtual* results (completions, aborts, retries)
  are identical to the untraced run's -- tracing observes, never
  perturbs;
* the enabled-vs-disabled wall overhead stays under 15%.

Only executes under ``-m perfsmoke``; run as a script for a quick
local check: ``PYTHONPATH=src python benchmarks/obs_smoke.py``.
"""

import json
import time
from pathlib import Path

import pytest

from repro.bench.serve_experiments import serve_failover
from repro.serve.controller import AdaptiveController
from repro.serve.engine import ServeConfig, ServeEngine
from repro.serve.workload import make_tpcc_workload

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_obs.json"
TRACE_OUTPUT = REPO_ROOT / "BENCH_obs_trace.json"

CLIENTS = 32
DB_CORES = 3
DURATION = 20.0
SEED = 17
OVERHEAD_CEILING = 0.15
REPEATS = 2


def _run_serve(tracing: bool):
    """One adaptive 32-client TPC-C run on a fresh workload."""
    built = make_tpcc_workload(db_cores=DB_CORES, seed=SEED, pool_size=6)
    engine = ServeEngine(
        built.workload,
        AdaptiveController(n_options=2, poll_interval=DURATION / 10.0),
        ServeConfig(
            app_cores=8, db_cores=DB_CORES, network=built.network,
            think_time=0.01, seed=SEED, warmup=DURATION / 5.0,
            ramp=0.01,
        ),
        tracing=tracing,
    )
    start = time.perf_counter()
    result = engine.run(clients=CLIENTS, duration=DURATION, name="obs")
    wall = time.perf_counter() - start
    return result, wall, engine


def run_obs_smoke() -> dict:
    fingerprints = {}
    walls = {False: [], True: []}
    spans = 0
    for tracing in (False, True, False, True)[: 2 * REPEATS]:
        result, wall, engine = _run_serve(tracing)
        walls[tracing].append(wall)
        fingerprints.setdefault(
            tracing,
            (result.completed, result.aborted, result.txn_retries,
             result.rejected),
        )
        if tracing:
            spans = max(spans, len(engine.tracer.finished()))
    assert fingerprints[True] == fingerprints[False], (
        "tracing perturbed the virtual run: "
        f"{fingerprints[True]} != {fingerprints[False]}"
    )
    disabled = min(walls[False])
    enabled = min(walls[True])
    overhead = enabled / disabled - 1.0

    # Export one real failover trace (short run: the artifact should
    # open instantly in Perfetto, not weigh hundreds of megabytes).
    failover = serve_failover(
        fast=True, clients=16, shards=2, replicas=1, db_cores=2,
        duration=6.0, fault_specs=["crash:db1@2.5"], seed=SEED,
        tracing=True,
    )
    TRACE_OUTPUT.write_text(failover.trace_json)

    payload = {
        "workload": "tpcc-new-order",
        "clients": CLIENTS,
        "db_cores": DB_CORES,
        "virtual_duration_seconds": DURATION,
        "completed_txns": fingerprints[False][0],
        "trace_sample": ServeConfig().trace_sample,
        "spans_recorded": spans,
        "wall_seconds_tracing_disabled": disabled,
        "wall_seconds_tracing_enabled": enabled,
        "tracing_overhead_fraction": overhead,
        "overhead_ceiling": OVERHEAD_CEILING,
        "trace_artifact": TRACE_OUTPUT.name,
        "trace_artifact_bytes": TRACE_OUTPUT.stat().st_size,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


@pytest.mark.perfsmoke
def test_obs_smoke(request):
    if "perfsmoke" not in (request.config.getoption("-m") or ""):
        pytest.skip("select with -m perfsmoke to record BENCH_obs.json")
    payload = run_obs_smoke()
    print()
    print(
        f"obs perf smoke: tracing overhead "
        f"{100 * payload['tracing_overhead_fraction']:.1f}% "
        f"({payload['wall_seconds_tracing_disabled']:.2f}s -> "
        f"{payload['wall_seconds_tracing_enabled']:.2f}s wall, "
        f"{payload['spans_recorded']} spans) -> {OUTPUT.name}"
    )
    assert payload["completed_txns"] > 0
    assert payload["spans_recorded"] > 0
    assert payload["tracing_overhead_fraction"] <= OVERHEAD_CEILING


if __name__ == "__main__":
    print(json.dumps(run_obs_smoke(), indent=2))
