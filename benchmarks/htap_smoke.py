"""HTAP smoke: OLTP throughput with vs without concurrent analytics.

Runs the 32-client TPC-C serve scenario twice with identical seeds --
once OLTP-only, once with recurring analytical sessions (TPC-W-style
best-seller report and full-table district GROUP BY) served by the
redo-maintained columnar mirror -- and writes ``BENCH_htap.json`` at
the repository root.

Two invariants are asserted, not just recorded:

* the analytics mix costs at most 10% OLTP throughput (the mirror
  serves every scan lock-free, so the only interference is the DB CPU
  the reports reserve while running);
* after the run drains, every columnar mirror is bit-identical to its
  row store.

Only executes under ``-m perfsmoke``; run as a script for a quick
local check: ``PYTHONPATH=src python benchmarks/htap_smoke.py``.
"""

import json
from pathlib import Path

import pytest

from repro.bench.serve_experiments import serve_htap

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_htap.json"

CLIENTS = 32
DB_CORES = 4
DURATION = 12.0
SEED = 23
DEGRADATION_CEILING = 0.10


def run_htap_smoke() -> dict:
    result = serve_htap(
        fast=True, clients=CLIENTS, db_cores=DB_CORES,
        duration=DURATION, seed=SEED,
    )
    assert result.mirrors_consistent, (
        "columnar mirror diverged from the row store: "
        f"{result.notes.get('mirror_divergence')}"
    )
    assert result.reports_run > 0
    payload = {
        "workload": "tpcc-new-order + analytics",
        "clients": CLIENTS,
        "db_cores": DB_CORES,
        "virtual_duration_seconds": DURATION,
        "analytics_interval_seconds": result.analytics_interval,
        "report_window_seconds": result.report_window,
        "analytics_load_fraction": result.analytics_load,
        "oltp_only_throughput_txn_s": result.oltp_only_throughput,
        "htap_throughput_txn_s": result.htap_throughput,
        "degradation_fraction": result.degradation,
        "degradation_ceiling": DEGRADATION_CEILING,
        "analytics_reports": result.reports_run,
        "analytics_rows_scanned": result.analytics_rows_scanned,
        "best_sellers_top5": [list(row) for row in result.best_sellers],
        "mirror": result.mirror_counters,
        "mirrors_consistent": result.mirrors_consistent,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


@pytest.mark.perfsmoke
def test_htap_smoke(request):
    if "perfsmoke" not in (request.config.getoption("-m") or ""):
        pytest.skip("select with -m perfsmoke to record BENCH_htap.json")
    payload = run_htap_smoke()
    print()
    print(
        f"htap perf smoke: {payload['oltp_only_throughput_txn_s']:.1f} "
        f"-> {payload['htap_throughput_txn_s']:.1f} txn/s "
        f"({100 * payload['degradation_fraction']:.1f}% degradation, "
        f"{payload['analytics_reports']} reports) -> {OUTPUT.name}"
    )
    assert payload["oltp_only_throughput_txn_s"] > 0
    assert payload["degradation_fraction"] <= DEGRADATION_CEILING


if __name__ == "__main__":
    print(json.dumps(run_htap_smoke(), indent=2))
