"""Figure 14: microbenchmark 2 -- three budgets x three loads.

Paper claims: the generated partitions are APP, APP--DB and DB, and
the fastest partition per load level follows the diagonal (DB when
unloaded, APP--DB under partial load, APP under full load) -- the
middle partition being one a developer writing only the two extremes
by hand would have missed.
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import fig14
from repro.bench.report import format_fig14


def test_fig14_micro2(benchmark):
    result = run_once(benchmark, fig14)
    print()
    print(format_fig14(result))
    print(f"fractions on DB: {result.fractions_on_db}")

    assert result.best_for("no_load") == "DB"
    assert result.best_for("partial_load") == "APP-DB"
    assert result.best_for("full_load") == "APP"

    # The three partitions are genuinely different programs.
    fractions = [result.fractions_on_db[p] for p in result.partitions]
    assert fractions[0] == 0.0 and fractions[0] < fractions[1] < fractions[2]
