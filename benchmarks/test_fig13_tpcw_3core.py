"""Figure 13: TPC-W browsing mix on a 3-core database server.

Paper claims: Manual wins at low WIPS, but its extra DB-side program
logic saturates the 3 cores; JDBC and the Pyxis low-budget partition
sustain higher WIPS.
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import fig13
from repro.bench.report import format_curves


def test_fig13_tpcw_3core(benchmark):
    result = run_once(benchmark, lambda: fig13(fast=True))
    print()
    print(format_curves(result))

    lowest = {
        impl: result.curves[impl][0].latency_ms
        for impl in result.implementations()
    }
    highest = {
        impl: result.curves[impl][-1].latency_ms
        for impl in result.implementations()
    }
    # Crossover: Manual best when idle, worst when saturated.
    assert lowest["manual"] < lowest["jdbc"]
    assert highest["manual"] > highest["jdbc"]
    assert highest["manual"] > highest["pyxis"]

    # The low-budget Pyxis partition tracks JDBC.
    for p_jdbc, p_pyxis in zip(result.curves["jdbc"], result.curves["pyxis"]):
        assert p_pyxis.latency_ms <= p_jdbc.latency_ms * 1.3 + 2.0
