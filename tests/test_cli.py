"""Command-line interface."""

import pytest

from repro.cli import build_parser, main
from tests.conftest import ORDER_SOURCE


@pytest.fixture()
def order_file(tmp_path):
    path = tmp_path / "order_app.py"
    path.write_text(ORDER_SOURCE)
    return str(path)


class TestPartitionCommand:
    def test_partition_prints_summary(self, order_file, capsys):
        code = main([
            "partition", order_file, "--entry", "Order.place_order",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "PartitionGraph" in out
        assert "budget" in out

    def test_partition_with_pyxil_listing(self, order_file, capsys):
        code = main([
            "partition", order_file, "--entry", "Order.place_order",
            "--pyxil",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert ":APP:" in out or ":DB:" in out

    def test_partition_custom_budgets(self, order_file, capsys):
        code = main([
            "partition", order_file, "--entry", "Order.place_order",
            "--budget", "0", "--budget", "100",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "budget 0" in out
        assert "budget 100" in out

    def test_partition_dump_codegen_writes_modules(
        self, order_file, tmp_path, capsys
    ):
        from repro.core import codegen as core_codegen

        out_dir = tmp_path / "codegen"
        try:
            code = main([
                "partition", order_file, "--entry", "Order.place_order",
                "--dump-codegen", str(out_dir),
            ])
        finally:
            core_codegen.set_dump_dir(None)
        assert code == 0
        dumped = list(out_dir.glob("blocks_*.py"))
        assert dumped
        for path in dumped:
            # Stable names, re-compilable text.
            compile(path.read_text(encoding="utf-8"), str(path), "exec")
        assert f"dumped {len(dumped)} generated source module(s)" in (
            capsys.readouterr().out
        )

    def test_bad_entry_format(self, order_file, capsys):
        code = main(["partition", order_file, "--entry", "nodots"])
        assert code == 2
        assert "Class.method" in capsys.readouterr().err

    def test_solver_choices_enforced(self, order_file):
        with pytest.raises(SystemExit):
            main([
                "partition", order_file, "--entry", "Order.place_order",
                "--solver", "cplex",
            ])


class TestExperimentsCommand:
    def test_unknown_experiment_rejected(self, capsys):
        code = main(["experiments", "fig99"])
        assert code == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_fig14_runs(self, capsys):
        code = main(["experiments", "fig14"])
        assert code == 0
        out = capsys.readouterr().out
        assert "microbenchmark 2" in out

    def test_micro1_runs(self, capsys):
        code = main(["experiments", "micro1"])
        assert code == 0
        assert "overhead" in capsys.readouterr().out


class TestServeCommand:
    def test_serve_sweep_prints_table(self, capsys):
        code = main([
            "serve", "--workload", "micro", "--clients", "1,2",
            "--duration", "2", "--think", "0.05",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "serve load sweep: micro" in out
        assert "static_low" in out
        assert "static_high" in out
        assert "adaptive" in out

    def test_serve_accept_limit_flag(self, capsys):
        code = main([
            "serve", "--workload", "micro", "--clients", "4",
            "--duration", "2", "--accept-limit", "0",
        ])
        assert code == 0
        assert "adaptive" in capsys.readouterr().out

    def test_serve_bad_clients_rejected(self, capsys):
        code = main(["serve", "--clients", "nope"])
        assert code == 2
        assert "comma-separated" in capsys.readouterr().err

    def test_serve_zero_clients_rejected(self, capsys):
        code = main(["serve", "--clients", "0"])
        assert code == 2
        assert "positive" in capsys.readouterr().err

    def test_serve_switching_registered(self):
        args = build_parser().parse_args(["serve", "--switching"])
        assert args.switching
        assert args.command == "serve"

    def test_serve_htap_prints_report(self, capsys):
        code = main([
            "serve", "--htap", "--clients", "8", "--duration", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "serve htap: tpcc" in out
        assert "degradation" in out
        assert "bit-identical to the row store" in out

    def test_serve_htap_excludes_other_scenarios(self, capsys):
        code = main(["serve", "--htap", "--switching"])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_serve_htap_needs_single_server(self, capsys):
        code = main(["serve", "--htap", "--shards", "2"])
        assert code == 2
        assert "single-server" in capsys.readouterr().err

    def test_serve_htap_needs_tpcc(self, capsys):
        code = main(["serve", "--htap", "--workload", "micro"])
        assert code == 2
        assert "analytics" in capsys.readouterr().err


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_registered(self):
        args = build_parser().parse_args(["demo"])
        assert args.command == "demo"


class TestServeWalCommand:
    def test_inject_flag_is_repeatable(self):
        args = build_parser().parse_args([
            "serve", "--inject", "crash:db1@5", "--inject", "slow:db0@2x4",
        ])
        assert args.inject == ["crash:db1@5", "slow:db0@2x4"]

    def test_storage_faults_without_wal_rejected(self, capsys):
        # Comma-separated specs are split before validation.
        code = main([
            "serve", "--workload", "tpcc", "--shards", "2",
            "--replicas", "1",
            "--inject", "tornwrite:db0@2,corrupt:db1@3",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "tornwrite:db0@2" in err and "corrupt:db1@3" in err
        assert "add --wal DIR" in err

    def test_inject_needs_replicas_or_wal(self, capsys):
        code = main([
            "serve", "--workload", "tpcc", "--shards", "2",
            "--inject", "crash:db1@5",
        ])
        assert code == 2
        assert "--replicas" in capsys.readouterr().err

    def test_kill_at_needs_wal(self, capsys):
        code = main([
            "serve", "--workload", "tpcc", "--shards", "2",
            "--replicas", "1", "--kill-at", "4",
        ])
        assert code == 2
        assert "--wal" in capsys.readouterr().err

    def test_restart_needs_wal(self, capsys):
        code = main([
            "serve", "--workload", "tpcc", "--shards", "2",
            "--replicas", "1", "--restart",
        ])
        assert code == 2
        assert "--wal" in capsys.readouterr().err

    def test_wal_excludes_replicas(self, tmp_path, capsys):
        code = main([
            "serve", "--workload", "tpcc", "--shards", "2",
            "--replicas", "1", "--wal", str(tmp_path / "wal"),
        ])
        assert code == 2
        assert "pick one" in capsys.readouterr().err

    def test_wal_needs_two_shards(self, tmp_path, capsys):
        code = main([
            "serve", "--workload", "tpcc", "--shards", "1",
            "--wal", str(tmp_path / "wal"),
        ])
        assert code == 2
        assert "--shards >= 2" in capsys.readouterr().err

    def test_wal_needs_tpcc(self, tmp_path, capsys):
        code = main([
            "serve", "--workload", "micro",
            "--wal", str(tmp_path / "wal"),
        ])
        assert code == 2
        assert "TPC-C" in capsys.readouterr().err

    def test_crash_recover_restart_end_to_end(self, tmp_path, capsys):
        wal_dir = str(tmp_path / "wal")
        code = main([
            "serve", "--workload", "tpcc", "--shards", "2",
            "--clients", "8", "--duration", "6", "--wal", wal_dir,
            "--kill-at", "3.5", "--restart",
            "--inject", "tornwrite:db0@2,corrupt:db1@2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "tornwrite db0" in out and "corrupt db1" in out
        assert "bit-identical" in out
        assert "restart" in out
        # The standalone verb recovers the same directory again.
        code = main(["recover", wal_dir])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("recovered in") == 2  # one per serve option
        assert "replayed" in out


class TestRecoverCommand:
    def test_missing_directory_rejected(self, tmp_path, capsys):
        code = main(["recover", str(tmp_path / "nope")])
        assert code == 2
        assert "not a directory" in capsys.readouterr().err

    def test_directory_without_wal_rejected(self, tmp_path, capsys):
        code = main(["recover", str(tmp_path)])
        assert code == 2
        assert "no WAL found" in capsys.readouterr().err

    def test_corrupt_wal_fails_with_lsn(self, tmp_path, capsys):
        from repro.db import Database, attach_wal, connect

        db = Database("d")
        db.create_table(
            "kv", [("k", "int", False), ("v", "int")], primary_key=["k"]
        )
        manager = attach_wal(db, tmp_path)
        conn = connect(db)
        conn.execute("INSERT INTO kv (k, v) VALUES (?, ?)", 1, 1)
        conn.execute("INSERT INTO kv (k, v) VALUES (?, ?)", 2, 2)
        corrupted = manager.wals[0].inject_corruption()
        manager.close()
        code = main(["recover", str(tmp_path)])
        assert code == 1
        err = capsys.readouterr().err
        assert f"LSN {corrupted}" in err
