"""Call graph and interprocedural summaries."""

import pytest

from repro.analysis.interproc import AnalysisError, build_call_graph
from repro.lang import parse_source


def graph_for(source: str):
    program = parse_source(source)
    return program, build_call_graph(program)


class TestCallGraph:
    def test_call_sites_resolved(self):
        source = """
class T:
    def m(self, x):
        a = self.f(x)
        self.g(a)
        return a
    def f(self, v):
        return v + 1
    def g(self, v):
        self.last = v
"""
        program, cg = graph_for(source)
        callees = {c for site in cg.call_sites.values() for c in site.callees}
        assert callees == {"T.f", "T.g"}

    def test_result_var_tracked(self):
        source = """
class T:
    def m(self, x):
        a = self.f(x)
        return a
    def f(self, v):
        return v
"""
        program, cg = graph_for(source)
        site = next(iter(cg.call_sites.values()))
        assert site.result_var == "a"

    def test_callers_of(self):
        source = """
class T:
    def m(self, x):
        self.f(x)
        self.f(x)
        return x
    def f(self, v):
        return v
"""
        program, cg = graph_for(source)
        assert len(cg.callers_of("T.f")) == 2

    def test_reachable_from(self):
        source = """
class T:
    def m(self, x):
        return self.f(x)
    def f(self, v):
        return self.g(v)
    def g(self, v):
        return v
    def island(self, v):
        return v
"""
        program, cg = graph_for(source)
        reachable = cg.reachable_from(["T.m"])
        assert reachable == {"T.m", "T.f", "T.g"}

    def test_function_of(self):
        source = """
class T:
    def m(self, x):
        y = x + 1
        return y
"""
        program, cg = graph_for(source)
        sid = program.function("T", "m").body.stmts[0].sid
        assert cg.function_of(sid) == "T.m"

    def test_constructor_edges(self):
        source = """
class Node:
    def __init__(self):
        self.v = 0

class T:
    def m(self, x):
        n = Node()
        return x
"""
        program, cg = graph_for(source)
        assert any(
            "Node.__init__" in site.callees
            for site in cg.call_sites.values()
        )


class TestRecursionRejection:
    def test_direct_recursion_rejected(self):
        source = """
class T:
    def m(self, x):
        return self.m(x)
"""
        with pytest.raises(AnalysisError, match="recursive"):
            graph_for(source)

    def test_mutual_recursion_rejected(self):
        source = """
class T:
    def a(self, x):
        return self.b(x)
    def b(self, x):
        return self.a(x)
"""
        with pytest.raises(AnalysisError, match="recursive"):
            graph_for(source)

    def test_diamond_is_fine(self):
        source = """
class T:
    def m(self, x):
        a = self.left(x)
        b = self.right(x)
        return a + b
    def left(self, x):
        return self.shared(x)
    def right(self, x):
        return self.shared(x)
    def shared(self, x):
        return x
"""
        graph_for(source)  # should not raise


class TestFunctionAnalysis:
    def test_entry_level_sids(self):
        source = """
class T:
    def m(self, x):
        a = x + 1
        if a > 0:
            b = 1
        return a
"""
        program, cg = graph_for(source)
        analysis = cg.analysis("T.m")
        entry_level = analysis.entry_level_sids()
        func = program.function("T", "m")
        top_sids = {s.sid for s in func.body.stmts}
        assert entry_level == top_sids

    def test_return_stmts(self):
        source = """
class T:
    def m(self, x):
        if x > 0:
            return 1
        return 2
"""
        program, cg = graph_for(source)
        assert len(cg.analysis("T.m").return_stmts()) == 2
