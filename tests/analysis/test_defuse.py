"""Def/use chains and statement access footprints."""

import pytest

from repro.analysis.defuse import accesses_of, def_use_chains
from repro.lang import build_cfg, parse_source
from repro.lang.cfg import ENTRY
from repro.lang.ir import Assign, ForEach, VarLV, While


def analyze(body: str, extra: str = ""):
    source = f"class T:\n    def m(self, x):\n{body}\n{extra}"
    program = parse_source(source, entry_points=[("T", "m")])
    func = program.function("T", "m")
    return func, def_use_chains(func, build_cfg(func))


def sid_of_assign(func, name):
    for stmt in func.walk():
        if isinstance(stmt, Assign) and isinstance(stmt.target, VarLV):
            if stmt.target.name == name:
                return stmt.sid
    raise AssertionError(f"no assignment to {name}")


class TestDefUse:
    def test_straight_line_chain(self):
        func, du = analyze("        a = x\n        b = a\n        return b")
        a_def = sid_of_assign(func, "a")
        b_def = sid_of_assign(func, "b")
        edges = set(du.edges())
        assert (a_def, b_def, "a") in edges

    def test_param_uses(self):
        func, du = analyze("        a = x + 1\n        return a")
        assert du.param_uses("x") == [sid_of_assign(func, "a")]

    def test_both_branch_defs_reach_join(self):
        func, du = analyze(
            "        if x > 0:\n            a = 1\n"
            "        else:\n            a = 2\n"
            "        return a"
        )
        from repro.lang.ir import Return

        ret = next(s for s in func.walk() if isinstance(s, Return))
        defs = du.defs_reaching(ret.sid, "a")
        assert len(defs) == 2

    def test_loop_carried_def(self):
        func, du = analyze(
            "        i = 0\n"
            "        while i < x:\n"
            "            i = i + 1\n"
            "        return i"
        )
        # The increment's read of i must see both the init and itself.
        loop = next(s for s in func.walk() if isinstance(s, While))
        incr = loop.body.stmts[-1]
        init_sid = func.body.stmts[0].sid
        defs = du.defs_reaching(incr.sid, "i")
        assert init_sid in defs
        assert incr.sid in defs

    def test_kill_hides_earlier_def(self):
        func, du = analyze(
            "        a = 1\n        a = 2\n        return a"
        )
        from repro.lang.ir import Return

        ret = next(s for s in func.walk() if isinstance(s, Return))
        second_def = func.body.stmts[1].sid
        assert du.defs_reaching(ret.sid, "a") == {second_def}

    def test_foreach_defines_loop_var(self):
        func, du = analyze(
            "        t = [1, 2]\n"
            "        for v in t:\n            a = v\n"
            "        return x"
        )
        loop = next(s for s in func.walk() if isinstance(s, ForEach))
        body = loop.body.stmts[0]
        assert du.defs_reaching(body.sid, "v") == {loop.sid}


class TestAccesses:
    def test_assign_footprint(self):
        func, _ = analyze("        a = x + 1")
        stmt = func.body.stmts[0]
        acc = accesses_of(stmt)
        assert acc.var_reads == {"x"}
        assert acc.var_writes == {"a"}

    def test_field_footprint(self):
        func, _ = analyze("        self.total = x\n        y = self.total")
        write_acc = accesses_of(func.body.stmts[0])
        assert write_acc.field_writes[0][1] == "total"
        read_acc = accesses_of(func.body.stmts[1])
        assert read_acc.field_reads[0][1] == "total"

    def test_index_footprint(self):
        func, _ = analyze(
            "        t = [0] * x\n        t[0] = 1\n        y = t[0]"
        )
        write_acc = accesses_of(func.body.stmts[1])
        assert write_acc.index_writes
        read_acc = accesses_of(func.body.stmts[2])
        assert read_acc.index_reads

    def test_append_counts_as_container_write(self):
        func, _ = analyze("        t = [1]\n        t.append(x)")
        acc = accesses_of(func.body.stmts[1])
        assert acc.index_writes

    def test_db_call_flag(self):
        func, _ = analyze(
            '        self.db.execute("DELETE FROM t WHERE a = ?", x)'
        )
        acc = accesses_of(func.body.stmts[0])
        assert acc.has_db_call

    def test_print_flag(self):
        func, _ = analyze('        print("hello", x)')
        acc = accesses_of(func.body.stmts[0])
        assert acc.is_print

    def test_foreach_footprint(self):
        func, _ = analyze(
            "        t = [1]\n        for v in t:\n            a = v"
        )
        loop = next(s for s in func.walk() if isinstance(s, ForEach))
        acc = accesses_of(loop)
        assert "t" in acc.var_reads
        assert "v" in acc.var_writes
        assert acc.index_reads
