"""Dominator and post-dominator computation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dominance import dominators, post_dominators
from repro.lang import build_cfg, parse_source
from repro.lang.cfg import CFG, ENTRY, EXIT
from repro.lang.ir import If, Return, While


def cfg_for(body: str):
    source = f"class T:\n    def m(self, x):\n{body}"
    program = parse_source(source, entry_points=[("T", "m")])
    func = program.function("T", "m")
    return func, build_cfg(func)


class TestDominators:
    def test_straight_line_chain(self):
        func, cfg = cfg_for("        a = x\n        b = a\n        return b")
        dom = dominators(cfg)
        sids = [s.sid for s in func.body.stmts]
        assert dom.idom[sids[0]] == ENTRY
        assert dom.idom[sids[1]] == sids[0]
        assert dom.idom[sids[2]] == sids[1]

    def test_branch_join_dominated_by_condition(self):
        func, cfg = cfg_for(
            "        if x > 0:\n            a = 1\n"
            "        else:\n            a = 2\n"
            "        return a"
        )
        dom = dominators(cfg)
        branch = next(s for s in func.walk() if isinstance(s, If))
        ret = next(s for s in func.walk() if isinstance(s, Return))
        # Neither branch arm dominates the join; the condition does.
        assert dom.idom[ret.sid] == branch.sid

    def test_reflexive(self):
        func, cfg = cfg_for("        return x")
        dom = dominators(cfg)
        for sid in cfg.sids():
            assert dom.dominates(sid, sid)

    def test_entry_dominates_everything_reachable(self):
        func, cfg = cfg_for(
            "        while x > 0:\n            x = x - 1\n        return x"
        )
        dom = dominators(cfg)
        for sid in cfg.sids():
            assert dom.dominates(ENTRY, sid)


class TestPostDominators:
    def test_exit_postdominates_everything(self):
        func, cfg = cfg_for(
            "        if x > 0:\n            a = 1\n        return x"
        )
        pdom = post_dominators(cfg)
        for sid in cfg.sids():
            assert pdom.dominates(EXIT, sid)

    def test_join_postdominates_branch(self):
        func, cfg = cfg_for(
            "        if x > 0:\n            a = 1\n"
            "        else:\n            a = 2\n"
            "        return a"
        )
        pdom = post_dominators(cfg)
        branch = next(s for s in func.walk() if isinstance(s, If))
        ret = next(s for s in func.walk() if isinstance(s, Return))
        assert pdom.dominates(ret.sid, branch.sid)

    def test_branch_arm_does_not_postdominate(self):
        func, cfg = cfg_for(
            "        if x > 0:\n            a = 1\n"
            "        else:\n            a = 2\n"
            "        return a"
        )
        pdom = post_dominators(cfg)
        branch = next(s for s in func.walk() if isinstance(s, If))
        then_sid = branch.then.stmts[0].sid
        assert not pdom.dominates(then_sid, branch.sid)

    def test_loop_body_does_not_postdominate_header(self):
        func, cfg = cfg_for(
            "        while x > 0:\n            x = x - 1\n        return x"
        )
        pdom = post_dominators(cfg)
        loop = next(s for s in func.walk() if isinstance(s, While))
        body_sid = loop.body.stmts[-1].sid
        assert not pdom.dominates(body_sid, loop.sid)

    def test_path_to_root(self):
        func, cfg = cfg_for("        a = x\n        return a")
        pdom = post_dominators(cfg)
        first = func.body.stmts[0].sid
        path = pdom.path_to_root(first)
        assert path[0] == first
        assert path[-1] == EXIT


@st.composite
def random_cfgs(draw):
    """Random connected DAG-ish CFGs rooted at ENTRY, sunk at EXIT."""
    n = draw(st.integers(2, 10))
    cfg = CFG("random")
    nodes = list(range(1, n + 1))
    cfg.add_edge(ENTRY, 1)
    for node in nodes:
        # Each node gets 1-2 successors among later nodes or EXIT.
        n_succ = draw(st.integers(1, 2))
        for _ in range(n_succ):
            later = [m for m in nodes if m > node]
            succ = draw(st.sampled_from(later + [EXIT]))
            cfg.add_edge(node, succ)
    return cfg


@settings(max_examples=60, deadline=None)
@given(random_cfgs())
def test_dominance_properties_on_random_graphs(cfg):
    """Properties: idom is a strict dominator; dom sets are consistent
    with idom chains; ENTRY dominates every reachable node."""
    dom = dominators(cfg)
    for node, parents in dom.idom.items():
        assert dom.strictly_dominates(dom.idom[node], node)
    for node in dom.dom:
        if node == ENTRY:
            continue
        assert ENTRY in dom.dom[node]
        # Every strict dominator appears on the idom chain.
        chain = set(dom.path_to_root(node))
        assert dom.dom[node] <= chain


@settings(max_examples=60, deadline=None)
@given(random_cfgs())
def test_postdominance_mirrors_dominance_of_reverse(cfg):
    pdom = post_dominators(cfg)
    for node in pdom.dom:
        if node == EXIT:
            continue
        assert EXIT in pdom.dom[node]
