"""Control dependence (FOW)."""

import pytest

from repro.analysis import control_dependencies
from repro.lang import build_cfg, parse_source
from repro.lang.cfg import ENTRY
from repro.lang.ir import ForEach, If, While


def deps_for(body: str):
    source = f"class T:\n    def m(self, x):\n{body}"
    program = parse_source(source, entry_points=[("T", "m")])
    func = program.function("T", "m")
    return func, control_dependencies(build_cfg(func))


class TestControlDependence:
    def test_top_level_depends_on_entry(self):
        func, deps = deps_for("        a = x\n        b = a\n        return b")
        sids = {s.sid for s in func.body.stmts}
        assert deps[ENTRY] == sids

    def test_branch_controls_its_arms_only(self):
        func, deps = deps_for(
            "        if x > 0:\n            a = 1\n"
            "        else:\n            a = 2\n"
            "        return a"
        )
        branch = next(s for s in func.walk() if isinstance(s, If))
        then_sid = branch.then.stmts[0].sid
        else_sid = branch.orelse.stmts[0].sid
        assert deps[branch.sid] == {then_sid, else_sid}

    def test_join_not_dependent_on_branch(self):
        func, deps = deps_for(
            "        if x > 0:\n            a = 1\n"
            "        else:\n            a = 2\n"
            "        return a"
        )
        branch = next(s for s in func.walk() if isinstance(s, If))
        from repro.lang.ir import Return

        ret = next(s for s in func.walk() if isinstance(s, Return))
        assert ret.sid not in deps.get(branch.sid, set())

    def test_loop_controls_body_and_itself(self):
        func, deps = deps_for(
            "        t = [1, 2]\n        for v in t:\n            a = v\n"
            "        return x"
        )
        loop = next(s for s in func.walk() if isinstance(s, ForEach))
        body_sid = loop.body.stmts[0].sid
        assert body_sid in deps[loop.sid]
        assert loop.sid in deps[loop.sid]  # back edge self-dependence

    def test_while_header_dependent_on_loop(self):
        func, deps = deps_for(
            "        while x > 0:\n            x = x - 1\n        return x"
        )
        loop = next(s for s in func.walk() if isinstance(s, While))
        header_sid = loop.header.stmts[0].sid
        # The header re-executes per iteration: dependent on the loop test.
        assert header_sid in deps[loop.sid]

    def test_nested_branches(self):
        func, deps = deps_for(
            "        if x > 0:\n"
            "            if x > 10:\n"
            "                a = 1\n"
            "        return x"
        )
        outer, inner = [s for s in func.walk() if isinstance(s, If)]
        assert inner.sid in deps[outer.sid]
        inner_body = inner.then.stmts[0].sid
        assert inner_body in deps[inner.sid]
        assert inner_body not in deps[outer.sid]

    def test_if_with_return_makes_following_code_dependent(self):
        func, deps = deps_for(
            "        if x > 0:\n            return 1\n        return 2"
        )
        branch = next(s for s in func.walk() if isinstance(s, If))
        from repro.lang.ir import Return

        second_return = [s for s in func.walk() if isinstance(s, Return)][1]
        # Whether the second return runs is decided by the branch.
        assert second_return.sid in deps[branch.sid]

    def test_values_contain_only_real_statements(self):
        func, deps = deps_for(
            "        while x > 0:\n            x = x - 1\n        return x"
        )
        for dependents in deps.values():
            assert all(sid >= 0 for sid in dependents)
