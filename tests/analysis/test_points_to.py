"""Points-to analysis."""

import pytest

from repro.analysis.interproc import AnalysisError
from repro.analysis.points_to import AllocKind, analyze_points_to
from repro.lang import parse_source


def analyze(source: str):
    program = parse_source(source)
    return program, analyze_points_to(program)


class TestAllocationSites:
    def test_list_literal_site(self):
        program, pts = analyze(
            "class T:\n    def m(self, x):\n        t = [1, 2]\n        return t"
        )
        sites = pts.pts("T.m", "t")
        assert len(sites) == 1
        assert next(iter(sites)).kind is AllocKind.LIST

    def test_repeat_allocation_site(self):
        program, pts = analyze(
            "class T:\n    def m(self, n):\n        t = [0] * n\n        return t"
        )
        assert any(s.kind is AllocKind.LIST for s in pts.pts("T.m", "t"))

    def test_object_allocation_with_class(self):
        source = """
class Node:
    def set(self, v):
        self.v = v

class T:
    def m(self, x):
        n = Node()
        return n
"""
        program, pts = analyze(source)
        sites = pts.pts("T.m", "n")
        assert {s.class_name for s in sites} == {"Node"}

    def test_db_result_is_native(self):
        source = """
class T:
    def m(self, x):
        rs = self.db.query("SELECT 1 FROM t")
        return rs
"""
        program, pts = analyze(source)
        assert any(
            s.kind is AllocKind.NATIVE for s in pts.pts("T.m", "rs")
        )

    def test_self_seeded_with_synthetic_site(self):
        program, pts = analyze(
            "class T:\n    def m(self, x):\n        return x"
        )
        sites = pts.pts("T.m", "self")
        assert any(s.synthetic and s.class_name == "T" for s in sites)


class TestFlow:
    def test_copy_propagates(self):
        program, pts = analyze(
            "class T:\n    def m(self, x):\n"
            "        a = [1]\n        b = a\n        return b"
        )
        assert pts.pts("T.m", "a") == pts.pts("T.m", "b")

    def test_field_round_trip(self):
        source = """
class T:
    def m(self, x):
        self.items = [1, 2]
        t = self.items
        return t
"""
        program, pts = analyze(source)
        assert pts.pts("T.m", "t") == pts.pts("T.m", "self.items".split(".")[0]) or \
            pts.pts("T.m", "t")  # t must alias the list site
        sites = pts.pts("T.m", "t")
        assert any(s.kind is AllocKind.LIST for s in sites)

    def test_element_flow_through_append(self):
        source = """
class Node:
    def set(self, v):
        self.v = v

class T:
    def m(self, x):
        n = Node()
        t = []
        t.append(n)
        got = t[0]
        return got
"""
        program, pts = analyze(source)
        assert pts.classes_of("T.m", "got") == {"Node"}

    def test_foreach_binds_elements(self):
        source = """
class Node:
    def set(self, v):
        self.v = v

class T:
    def m(self, x):
        t = []
        n = Node()
        t.append(n)
        for item in t:
            found = item
        return x
"""
        program, pts = analyze(source)
        assert pts.classes_of("T.m", "item") == {"Node"}

    def test_interprocedural_argument_binding(self):
        source = """
class T:
    def m(self, x):
        t = [1]
        self.use(t)
        return x

    def use(self, container):
        container.append(2)
"""
        program, pts = analyze(source)
        assert pts.pts("T.use", "container") == pts.pts("T.m", "t")

    def test_return_value_flow(self):
        source = """
class T:
    def m(self, x):
        t = self.make()
        return t

    def make(self):
        fresh = [1]
        return fresh
"""
        program, pts = analyze(source)
        assert pts.pts("T.m", "t") == pts.pts("T.make", "fresh")


class TestCallResolution:
    def test_self_calls_resolved(self):
        source = """
class T:
    def m(self, x):
        self.helper(x)
        return x
    def helper(self, a):
        return a
"""
        program, pts = analyze(source)
        assert any(
            callees == frozenset({"T.helper"})
            for callees in pts.call_edges.values()
        )

    def test_receiver_class_from_allocation(self):
        source = """
class Node:
    def get(self):
        return 1

class T:
    def m(self, x):
        n = Node()
        return n.get()
"""
        program, pts = analyze(source)
        assert frozenset({"Node.get"}) in set(pts.call_edges.values())

    def test_unique_method_name_fallback(self):
        source = """
class Node:
    def only_here(self):
        return 1

class T:
    def m(self, n):
        return n.only_here()
"""
        # Receiver n is a parameter with no allocation; resolution falls
        # back to the unique owner of the method name.
        program, pts = analyze(source)
        assert frozenset({"Node.only_here"}) in set(pts.call_edges.values())

    def test_unresolvable_receiver_rejected(self):
        source = """
class A:
    def hit(self):
        return 1

class B:
    def hit(self):
        return 2

class T:
    def m(self, n):
        return n.hit()
"""
        with pytest.raises(AnalysisError):
            analyze(source)
