"""Query execution semantics."""

import pytest

from repro.db import Database, connect


@pytest.fixture()
def conn(people_db):
    return people_db[1]


class TestSelect:
    def test_point_lookup(self, conn):
        row = conn.query_one("SELECT name, age FROM person WHERE id = ?", 3)
        assert row.as_dict() == {"name": "cal", "age": 45}

    def test_index_equality(self, conn):
        names = [
            r["name"]
            for r in conn.query(
                "SELECT name FROM person WHERE city = ? ORDER BY name", "nyc"
            )
        ]
        assert names == ["bob", "eli"]

    def test_range_scan(self, conn):
        ids = [
            r["id"]
            for r in conn.query(
                "SELECT id FROM person WHERE age >= ? AND age < ? ORDER BY id",
                28, 46,
            )
        ]
        assert ids == [1, 2, 3, 4]

    def test_projection_expressions(self, conn):
        row = conn.query_one(
            "SELECT score * 2 AS double_score FROM person WHERE id = 1"
        )
        assert row["double_score"] == pytest.approx(19.0)

    def test_order_by_desc(self, conn):
        ages = [
            r["age"]
            for r in conn.query(
                "SELECT age FROM person WHERE age IS NOT NULL ORDER BY age DESC"
            )
        ]
        assert ages == sorted(ages, reverse=True)

    def test_multi_key_sort_stable(self, conn):
        rows = conn.query(
            "SELECT age, name FROM person WHERE age IS NOT NULL "
            "ORDER BY age, name DESC"
        ).rows
        assert [r["name"] for r in rows if r["age"] == 28] == ["dee", "bob"]

    def test_limit(self, conn):
        rows = conn.query("SELECT id FROM person ORDER BY id LIMIT 2").rows
        assert [r["id"] for r in rows] == [1, 2]

    def test_distinct(self, conn):
        cities = conn.query("SELECT DISTINCT city FROM person").rows
        assert len(cities) == 3

    def test_like(self, conn):
        names = [
            r["name"]
            for r in conn.query("SELECT name FROM person WHERE name LIKE ?", "%a%")
        ]
        assert set(names) == {"ann", "cal", "fay"}

    def test_in_list(self, conn):
        count = conn.query_scalar(
            "SELECT COUNT(*) FROM person WHERE city IN ('sf', 'nyc')"
        )
        assert count == 4

    def test_between(self, conn):
        count = conn.query_scalar(
            "SELECT COUNT(*) FROM person WHERE age BETWEEN 28 AND 45"
        )
        assert count == 4


class TestNullSemantics:
    def test_comparison_with_null_filters_row(self, conn):
        # fay has NULL age; NULL > 30 is unknown, so she never matches.
        ids = [
            r["id"] for r in conn.query("SELECT id FROM person WHERE age > 0")
        ]
        assert 6 not in ids

    def test_is_null(self, conn):
        row = conn.query_one("SELECT name FROM person WHERE age IS NULL")
        assert row["name"] == "fay"

    def test_aggregates_skip_nulls(self, conn):
        total = conn.query_scalar("SELECT SUM(score) FROM person")
        assert total == pytest.approx(9.5 + 7.25 + 5.0 + 8.0 + 6.5)
        count = conn.query_scalar("SELECT COUNT(*) FROM person")
        assert count == 6

    def test_avg_over_nulls(self, conn):
        avg = conn.query_scalar("SELECT AVG(age) FROM person")
        assert avg == pytest.approx((34 + 28 + 45 + 28 + 61) / 5)

    def test_null_sorts_first(self, conn):
        rows = conn.query("SELECT name, age FROM person ORDER BY age").rows
        assert rows[0]["name"] == "fay"


class TestAggregates:
    def test_count_star(self, conn):
        assert conn.query_scalar("SELECT COUNT(*) FROM person") == 6

    def test_group_by_with_multiple_aggregates(self, conn):
        rows = conn.query(
            "SELECT city, COUNT(*) AS n, MAX(age) AS oldest FROM person "
            "GROUP BY city ORDER BY city"
        ).rows
        as_dicts = [r.as_dict() for r in rows]
        assert as_dicts == [
            {"city": "boston", "n": 2, "oldest": 45},
            {"city": "nyc", "n": 2, "oldest": 61},
            {"city": "sf", "n": 2, "oldest": 28},
        ]

    def test_aggregate_over_empty_input_yields_row(self, conn):
        row = conn.query_one(
            "SELECT COUNT(*) AS n, SUM(age) AS total FROM person WHERE id > 100"
        )
        assert row["n"] == 0
        assert row["total"] is None

    def test_min_max(self, conn):
        row = conn.query_one("SELECT MIN(age) AS lo, MAX(age) AS hi FROM person")
        assert (row["lo"], row["hi"]) == (28, 61)

    def test_count_distinct(self, conn):
        n = conn.query_scalar("SELECT COUNT(DISTINCT city) FROM person")
        assert n == 3

    def test_order_by_aggregate_alias(self, conn):
        rows = conn.query(
            "SELECT city, COUNT(*) AS n FROM person GROUP BY city "
            "ORDER BY n DESC, city"
        ).rows
        assert [r["city"] for r in rows] == ["boston", "nyc", "sf"]


class TestJoins:
    @pytest.fixture()
    def pets(self, people_db):
        db, conn = people_db
        db.create_table(
            "pet",
            [("pid", "int", False), ("owner", "int"), ("kind", "text")],
            primary_key=["pid"],
        )
        for pid, owner, kind in [
            (1, 1, "cat"), (2, 1, "dog"), (3, 2, "cat"), (4, 99, "fish"),
        ]:
            conn.execute(
                "INSERT INTO pet (pid, owner, kind) VALUES (?, ?, ?)",
                pid, owner, kind,
            )
        return conn

    def test_inner_join(self, pets):
        rows = pets.query(
            "SELECT p.name, pet.kind FROM pet JOIN person p "
            "ON pet.owner = p.id ORDER BY pet.pid"
        ).rows
        assert [tuple(r) for r in rows] == [
            ("ann", "cat"), ("ann", "dog"), ("bob", "cat"),
        ]

    def test_join_drops_unmatched(self, pets):
        count = pets.query_scalar(
            "SELECT COUNT(*) FROM pet JOIN person p ON pet.owner = p.id"
        )
        assert count == 3  # the fish's owner 99 does not exist

    def test_join_with_filter_on_both_sides(self, pets):
        rows = pets.query(
            "SELECT p.name FROM pet JOIN person p ON pet.owner = p.id "
            "WHERE pet.kind = 'cat' AND p.city = 'boston'"
        ).rows
        assert [r["name"] for r in rows] == ["ann"]

    def test_join_aggregate(self, pets):
        rows = pets.query(
            "SELECT p.name, COUNT(*) AS pets FROM pet JOIN person p "
            "ON pet.owner = p.id GROUP BY p.name ORDER BY pets DESC"
        ).rows
        assert rows[0].as_dict() == {"name": "ann", "pets": 2}


class TestMutations:
    def test_update_with_arithmetic(self, conn):
        conn.execute("UPDATE person SET score = score + 1 WHERE city = 'sf'")
        assert conn.query_scalar(
            "SELECT score FROM person WHERE id = 4"
        ) == pytest.approx(9.0)
        # NULL score stays NULL.
        assert conn.query_scalar(
            "SELECT score FROM person WHERE id = 6"
        ) is None

    def test_update_rowcount(self, conn):
        assert conn.execute("UPDATE person SET age = 30 WHERE city = 'nyc'") == 2

    def test_delete(self, conn):
        assert conn.execute("DELETE FROM person WHERE city = 'boston'") == 2
        assert conn.query_scalar("SELECT COUNT(*) FROM person") == 4

    def test_delete_everything(self, conn):
        assert conn.execute("DELETE FROM person") == 6
        assert conn.query_scalar("SELECT COUNT(*) FROM person") == 0

    def test_insert_partial_columns_defaults_null(self, conn):
        conn.execute("INSERT INTO person (id, name) VALUES (10, 'gus')")
        row = conn.query_one("SELECT age, city FROM person WHERE id = 10")
        assert row["age"] is None
        assert row["city"] is None

    def test_rows_touched_reported(self, conn):
        rs = conn.query("SELECT name FROM person WHERE id = 1")
        assert rs.rows_touched == 1
        rs = conn.query("SELECT name FROM person WHERE score > 0")
        assert rs.rows_touched == 6  # full scan
