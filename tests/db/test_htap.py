"""HTAP columnar mirror: incremental maintenance from the redo
stream, collector chaining, and analytics vs the SQL oracle."""

import pytest

from repro.db import Database, LockManager, ReplicaGroup, connect
from repro.db.errors import TransactionError, UnknownTableError
from repro.db.htap import (
    ColumnTable,
    HtapMirror,
    TpccAnalytics,
    filter_positions,
    gather,
    group_aggregate,
    hash_join_lookup,
    top_k,
)


def make_db():
    db = Database("htap")
    db.create_table(
        "acct",
        [("id", "int", False), ("owner", "text"), ("bal", "float")],
        primary_key=["id"],
    )
    conn = connect(db)
    for i in range(1, 6):
        conn.execute(
            "INSERT INTO acct (id, owner, bal) VALUES (?, ?, ?)",
            i, f"owner{i % 2}", 100.0 * i,
        )
    return db


def mirror_rows(mirror, name):
    """Mirror contents as {rowid: row} for comparison with the store."""
    table = mirror.table(name)
    return {
        rowid: table.row(pos)
        for rowid, pos in zip(table.rowids, range(len(table)))
    }


class TestMirrorMaintenance:
    def test_attach_seeds_existing_rows(self):
        db = make_db()
        mirror = HtapMirror(db, ["acct"]).attach()
        assert mirror_rows(mirror, "acct") == dict(db.table("acct").scan())
        assert mirror.table("acct").ops_applied == 0  # seeding isn't redo

    def test_mirror_tracks_insert_update_delete(self):
        db = make_db()
        mirror = HtapMirror(db, ["acct"]).attach()
        conn = connect(db, LockManager())
        conn.execute("INSERT INTO acct (id, owner, bal) VALUES (9, 'z', 9.0)")
        conn.execute("UPDATE acct SET bal = bal + 1.0 WHERE owner = 'owner1'")
        conn.execute("DELETE FROM acct WHERE id = 2")
        assert mirror_rows(mirror, "acct") == dict(db.table("acct").scan())
        assert mirror.commits_applied == 3
        assert mirror.ops_applied > 0

    def test_rollback_leaves_mirror_untouched(self):
        db = make_db()
        mirror = HtapMirror(db, ["acct"]).attach()
        before = mirror_rows(mirror, "acct")
        conn = connect(db, LockManager())
        conn.begin()
        conn.execute("UPDATE acct SET bal = 0.0 WHERE id = 1")
        conn.execute("DELETE FROM acct WHERE id = 3")
        assert mirror_rows(mirror, "acct") == before  # uncommitted
        conn.rollback()
        assert mirror_rows(mirror, "acct") == before
        assert mirror.commits_applied == 0

    def test_multi_statement_commit_applies_once(self):
        db = make_db()
        mirror = HtapMirror(db, ["acct"]).attach()
        conn = connect(db, LockManager())
        conn.begin()
        conn.execute("UPDATE acct SET bal = 1.5 WHERE id = 1")
        conn.execute("INSERT INTO acct (id, owner, bal) VALUES (8, 'y', 8.0)")
        conn.commit()
        assert mirror.commits_applied == 1
        assert mirror_rows(mirror, "acct") == dict(db.table("acct").scan())

    def test_detach_restores_collector_and_stops_tracking(self):
        db = make_db()
        mirror = HtapMirror(db, ["acct"]).attach()
        mirror.detach()
        assert db.redo_collector is None
        stale = mirror_rows(mirror, "acct")
        connect(db, LockManager()).execute("DELETE FROM acct WHERE id = 1")
        assert mirror_rows(mirror, "acct") == stale

    def test_unknown_table_rejected(self):
        db = make_db()
        with pytest.raises(UnknownTableError):
            HtapMirror(db, ["nope"])
        with pytest.raises(UnknownTableError):
            HtapMirror(db, ["acct"]).attach().table("nope")

    def test_mirror_chains_to_replica_group(self):
        """HTAP interposes without disturbing log shipping: the replica
        group still sees every op batch and replicas converge."""
        db = Database("htap")
        group = ReplicaGroup(db, 1)
        columns = [("id", "int", False), ("owner", "text"),
                   ("bal", "float")]
        db.create_table("acct", columns, primary_key=["id"])
        group.mirror_create_table("acct", columns, ["id"])
        seed = connect(db)
        for i in range(1, 6):
            seed.execute(
                "INSERT INTO acct (id, owner, bal) VALUES (?, ?, ?)",
                i, f"owner{i % 2}", 100.0 * i,
            )
        group.catch_up(0)
        base_tip = group.log.tip
        mirror = HtapMirror(db, ["acct"]).attach()
        conn = connect(db, LockManager())
        conn.execute("UPDATE acct SET bal = 0.0 WHERE id = 5")
        conn.execute("INSERT INTO acct (id, owner, bal) VALUES (6, 'n', 6.0)")
        group.catch_up(0)
        live = dict(db.table("acct").scan())
        assert mirror_rows(mirror, "acct") == live
        assert dict(
            group.replicas[0].database.table("acct").scan()
        ) == live
        assert group.log.tip == base_tip + 2

    def test_snapshot_counters(self):
        db = make_db()
        mirror = HtapMirror(db).attach()
        counters = mirror.snapshot_counters()
        assert counters["mirrored_tables"] == 1
        assert counters["mirrored_rows"] == 5
        assert counters["commits_applied"] == 0


class TestBatchOperators:
    def make_column_table(self):
        t = ColumnTable("t", ["k", "g", "v"])
        from repro.db.replica import RedoOp
        for i, (k, g, v) in enumerate(
            [(1, "a", 10.0), (2, "b", 20.0), (3, "a", 30.0),
             (4, "b", 40.0), (5, "a", 50.0)]
        ):
            t.apply(RedoOp("t", "insert", i + 1, (k, g, v)))
        return t

    def test_filter_and_gather(self):
        t = self.make_column_table()
        pos = filter_positions(t, "v", lambda v: v > 25.0)
        assert gather(t, "k", pos) == [3, 4, 5]
        assert gather(t, "v") == [10.0, 20.0, 30.0, 40.0, 50.0]

    def test_group_aggregate_all_ops(self):
        t = self.make_column_table()
        out = group_aggregate(
            t, ("g",),
            (("count", None), ("sum", "v"), ("min", "v"),
             ("max", "v"), ("avg", "v")),
        )
        assert out == [
            ("a", 3, 90.0, 10.0, 50.0, 30.0),
            ("b", 2, 60.0, 20.0, 40.0, 30.0),
        ]

    def test_group_aggregate_with_positions(self):
        t = self.make_column_table()
        pos = filter_positions(t, "g", lambda g: g == "a")
        assert group_aggregate(t, ("g",), (("sum", "v"),), pos) == [
            ("a", 90.0)
        ]

    def test_hash_join_lookup_and_top_k(self):
        t = self.make_column_table()
        lookup = hash_join_lookup(t, "k", ("g", "v"))
        assert lookup[3] == ("a", 30.0)
        ranked = top_k(
            [(1, 5.0), (2, 9.0), (3, 9.0), (4, 1.0)], 1, 2
        )
        assert ranked == [(2, 9.0), (3, 9.0)]  # ties broken by full row


class TestTpccAnalytics:
    def make_tpcc_like(self):
        db = Database("mini-tpcc")
        db.create_table(
            "item",
            [("i_id", "int", False), ("i_name", "text"),
             ("i_price", "float")],
            primary_key=["i_id"],
        )
        db.create_table(
            "order_line",
            [("ol_w_id", "int", False), ("ol_d_id", "int", False),
             ("ol_o_id", "int", False), ("ol_number", "int", False),
             ("ol_i_id", "int"), ("ol_quantity", "int"),
             ("ol_amount", "float")],
            primary_key=["ol_w_id", "ol_d_id", "ol_o_id", "ol_number"],
        )
        conn = connect(db, LockManager())
        for i in range(1, 6):
            conn.execute(
                "INSERT INTO item (i_id, i_name, i_price) VALUES (?, ?, ?)",
                i, f"item{i}", float(i),
            )
        n = 0
        for (w, d, o, i_id, qty) in [
            (1, 1, 1, 3, 5), (1, 1, 1, 1, 2), (1, 2, 1, 3, 7),
            (2, 1, 1, 2, 4), (2, 1, 2, 3, 1), (2, 1, 2, 5, 9),
        ]:
            n += 1
            conn.execute(
                "INSERT INTO order_line (ol_w_id, ol_d_id, ol_o_id, "
                "ol_number, ol_i_id, ol_quantity, ol_amount) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                w, d, o, n, i_id, qty, qty * float(i_id),
            )
        return db, conn

    def test_best_sellers_matches_sql_oracle(self):
        db, conn = self.make_tpcc_like()
        analytics = TpccAnalytics(
            HtapMirror(db, ["item", "order_line"]).attach()
        )
        got = analytics.best_sellers(k=3)
        oracle = [
            r.as_tuple() for r in conn.query(
                "SELECT ol.ol_i_id, i.i_name, SUM(ol.ol_quantity) AS sold "
                "FROM order_line ol JOIN item i ON ol.ol_i_id = i.i_id "
                "GROUP BY ol.ol_i_id, i.i_name "
                "ORDER BY sold DESC, ol_i_id LIMIT 3"
            )
        ]
        assert got == oracle
        assert analytics.reports_run == 1
        assert analytics.rows_scanned > 0

    def test_district_volume_matches_sql_oracle(self):
        db, conn = self.make_tpcc_like()
        analytics = TpccAnalytics(
            HtapMirror(db, ["item", "order_line"]).attach()
        )
        got = analytics.district_volume()
        oracle = [
            r.as_tuple() for r in conn.query(
                "SELECT ol_w_id, ol_d_id, COUNT(*), SUM(ol_amount) "
                "FROM order_line GROUP BY ol_w_id, ol_d_id "
                "ORDER BY ol_w_id, ol_d_id"
            )
        ]
        assert got == oracle

    def test_reports_track_concurrent_writes(self):
        db, conn = self.make_tpcc_like()
        analytics = TpccAnalytics(
            HtapMirror(db, ["item", "order_line"]).attach()
        )
        first = analytics.best_sellers(k=1)
        conn.execute(
            "INSERT INTO order_line (ol_w_id, ol_d_id, ol_o_id, ol_number, "
            "ol_i_id, ol_quantity, ol_amount) VALUES (3, 1, 1, 7, 1, 99, 99.0)"
        )
        assert analytics.best_sellers(k=1) != first
        assert analytics.best_sellers(k=1)[0][0] == 1
