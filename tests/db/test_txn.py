"""Transactions and the lock manager."""

import pytest

from repro.db import Database, connect
from repro.db.errors import DeadlockError, LockTimeoutError, TransactionError
from repro.db.txn import LockManager, LockMode, Transaction


@pytest.fixture()
def db():
    database = Database()
    database.create_table(
        "acct", [("id", "int", False), ("bal", "float")], primary_key=["id"]
    )
    conn = connect(database)
    conn.execute("INSERT INTO acct (id, bal) VALUES (1, 100.0)")
    conn.execute("INSERT INTO acct (id, bal) VALUES (2, 50.0)")
    return database


class TestLockModes:
    def test_shared_compatible_with_shared(self):
        assert LockMode.SHARED.compatible(LockMode.SHARED)

    def test_exclusive_incompatible(self):
        assert not LockMode.EXCLUSIVE.compatible(LockMode.SHARED)
        assert not LockMode.SHARED.compatible(LockMode.EXCLUSIVE)


class TestLockManager:
    def test_grant_and_introspect(self):
        lm = LockManager()
        assert lm.acquire(1, "r", LockMode.EXCLUSIVE)
        assert lm.holders("r") == {1: LockMode.EXCLUSIVE}
        assert "r" in lm.held_by(1)

    def test_shared_locks_coexist(self):
        lm = LockManager()
        assert lm.acquire(1, "r", LockMode.SHARED)
        assert lm.acquire(2, "r", LockMode.SHARED)
        assert set(lm.holders("r")) == {1, 2}

    def test_exclusive_conflicts_queue(self):
        lm = LockManager()
        lm.acquire(1, "r", LockMode.EXCLUSIVE)
        assert lm.acquire(2, "r", LockMode.EXCLUSIVE) is False
        assert lm.waiting("r") == [(2, LockMode.EXCLUSIVE)]

    def test_reentrant(self):
        lm = LockManager()
        lm.acquire(1, "r", LockMode.EXCLUSIVE)
        assert lm.acquire(1, "r", LockMode.EXCLUSIVE)
        assert lm.acquire(1, "r", LockMode.SHARED)  # X covers S

    def test_upgrade_when_sole_holder(self):
        lm = LockManager()
        lm.acquire(1, "r", LockMode.SHARED)
        assert lm.acquire(1, "r", LockMode.EXCLUSIVE)
        assert lm.holders("r") == {1: LockMode.EXCLUSIVE}

    def test_upgrade_blocked_by_other_shared_holder(self):
        lm = LockManager()
        lm.acquire(1, "r", LockMode.SHARED)
        lm.acquire(2, "r", LockMode.SHARED)
        assert lm.acquire(1, "r", LockMode.EXCLUSIVE) is False

    def test_nowait_raises(self):
        lm = LockManager()
        lm.acquire(1, "r", LockMode.EXCLUSIVE)
        with pytest.raises(LockTimeoutError):
            lm.acquire(2, "r", LockMode.EXCLUSIVE, wait=False)

    def test_release_grants_fifo_waiter(self):
        lm = LockManager()
        lm.acquire(1, "r", LockMode.EXCLUSIVE)
        lm.acquire(2, "r", LockMode.EXCLUSIVE)
        lm.acquire(3, "r", LockMode.EXCLUSIVE)
        grants = lm.release_all(1)
        assert grants == [(2, "r")]
        assert lm.holders("r") == {2: LockMode.EXCLUSIVE}
        assert lm.waiting("r") == [(3, LockMode.EXCLUSIVE)]

    def test_release_grants_shared_batch(self):
        lm = LockManager()
        lm.acquire(1, "r", LockMode.EXCLUSIVE)
        lm.acquire(2, "r", LockMode.SHARED)
        lm.acquire(3, "r", LockMode.SHARED)
        grants = lm.release_all(1)
        assert {g[0] for g in grants} == {2, 3}

    def test_deadlock_detected(self):
        lm = LockManager()
        lm.acquire(1, "a", LockMode.EXCLUSIVE)
        lm.acquire(2, "b", LockMode.EXCLUSIVE)
        assert lm.acquire(1, "b", LockMode.EXCLUSIVE) is False  # 1 waits on 2
        with pytest.raises(DeadlockError) as excinfo:
            lm.acquire(2, "a", LockMode.EXCLUSIVE)  # 2 waits on 1: cycle
        assert set(excinfo.value.cycle) >= {1, 2}

    def test_three_way_deadlock(self):
        lm = LockManager()
        for txn, resource in [(1, "a"), (2, "b"), (3, "c")]:
            lm.acquire(txn, resource, LockMode.EXCLUSIVE)
        assert lm.acquire(1, "b", LockMode.EXCLUSIVE) is False
        assert lm.acquire(2, "c", LockMode.EXCLUSIVE) is False
        with pytest.raises(DeadlockError):
            lm.acquire(3, "a", LockMode.EXCLUSIVE)

    def test_victim_can_retry_after_release(self):
        lm = LockManager()
        lm.acquire(1, "a", LockMode.EXCLUSIVE)
        lm.acquire(2, "b", LockMode.EXCLUSIVE)
        lm.acquire(1, "b")
        with pytest.raises(DeadlockError):
            lm.acquire(2, "a")
        # Victim 2 releases; 1 gets b and can finish.
        grants = lm.release_all(2)
        assert (1, "b") in grants

    def test_wait_for_edges_cleaned_on_release(self):
        lm = LockManager()
        lm.acquire(1, "r", LockMode.EXCLUSIVE)
        lm.acquire(2, "r", LockMode.EXCLUSIVE)
        lm.release_all(2)  # waiter gives up
        assert lm.wait_for_edges() == {}
        lm.release_all(1)
        assert lm.holders("r") == {}


class TestLockManagerRegressions:
    """Pin the two lock-manager bugs found during the MVCC audit."""

    def test_release_never_grants_back_to_released_txn(self):
        """release_all must purge the departing txn's queued requests
        *before* granting: 1 holds S with its own queued S->X upgrade;
        once the queue drains down to that upgrade, releasing 1 used to
        grant the lock back to the finished txn (leaked forever)."""
        lm = LockManager()
        callbacks = []
        lm.grant_callback = lambda t, r: callbacks.append((t, r))
        lm.acquire(1, "r", LockMode.SHARED)
        lm.acquire(2, "r", LockMode.SHARED)
        assert lm.acquire(3, "r", LockMode.EXCLUSIVE) is False
        assert lm.acquire(1, "r", LockMode.EXCLUSIVE) is False  # upgrade
        lm.release_all(2)
        lm.release_all(3)  # waiter gives up
        seen_before_finish = len(callbacks)
        grants = lm.release_all(1)
        assert all(txn != 1 for txn, _ in grants)
        assert all(txn != 1 for txn, _ in callbacks[seen_before_finish:])
        assert 1 not in lm.holders("r")
        assert not lm.held_by(1)
        assert lm.waiting("r") == []

    def test_upgrade_waiter_has_priority_over_queued_exclusive(self):
        """An S->X upgrader queued behind another txn's X request used
        to stall forever: the head X can't be granted while the
        upgrader holds S, and the head blocked the scan."""
        lm = LockManager()
        lm.acquire(1, "r", LockMode.SHARED)
        lm.acquire(2, "r", LockMode.SHARED)
        assert lm.acquire(3, "r", LockMode.EXCLUSIVE) is False
        assert lm.acquire(1, "r", LockMode.EXCLUSIVE) is False  # upgrade
        grants = lm.release_all(2)
        assert grants == [(1, "r")]
        assert lm.holders("r") == {1: LockMode.EXCLUSIVE}
        assert lm.waiting("r") == [(3, LockMode.EXCLUSIVE)]
        # The stalled chain drains cleanly once the upgrader finishes.
        assert lm.release_all(1) == [(3, "r")]
        assert lm.holders("r") == {3: LockMode.EXCLUSIVE}

    def test_symmetric_upgraders_still_deadlock(self):
        """Two S holders both requesting X wait on each other; the
        second request must raise rather than queue."""
        lm = LockManager()
        lm.acquire(1, "r", LockMode.SHARED)
        lm.acquire(2, "r", LockMode.SHARED)
        assert lm.acquire(1, "r", LockMode.EXCLUSIVE) is False
        with pytest.raises(DeadlockError) as excinfo:
            lm.acquire(2, "r", LockMode.EXCLUSIVE)
        assert set(excinfo.value.cycle) >= {1, 2}
        # Victim aborts; the surviving upgrader gets its X.
        grants = lm.release_all(2)
        assert grants == [(1, "r")]
        assert lm.holders("r") == {1: LockMode.EXCLUSIVE}


class TestTransaction:
    def test_commit_clears_undo(self, db):
        txn = Transaction(db)
        _, undo = db.table("acct").insert((3, 1.0))
        txn.record_undo(undo)
        txn.commit()
        assert db.table("acct").lookup_pk((3,)) is not None

    def test_rollback_reverses_mutations(self, db):
        txn = Transaction(db)
        table = db.table("acct")
        _, undo = table.insert((3, 1.0))
        txn.record_undo(undo)
        rowid = table.lookup_pk((1,))
        txn.record_undo(table.update(rowid, {"bal": 0.0}))
        txn.rollback()
        assert table.lookup_pk((3,)) is None
        assert table.get(rowid) == (1, 100.0)

    def test_operations_after_commit_rejected(self, db):
        txn = Transaction(db)
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()
        with pytest.raises(TransactionError):
            txn.rollback()

    def test_context_manager_commits(self, db):
        with Transaction(db) as txn:
            _, undo = db.table("acct").insert((3, 1.0))
            txn.record_undo(undo)
        assert db.table("acct").lookup_pk((3,)) is not None

    def test_context_manager_rolls_back_on_error(self, db):
        with pytest.raises(RuntimeError):
            with Transaction(db) as txn:
                _, undo = db.table("acct").insert((3, 1.0))
                txn.record_undo(undo)
                raise RuntimeError("boom")
        assert db.table("acct").lookup_pk((3,)) is None

    def test_locks_released_on_commit(self, db):
        lm = LockManager()
        txn = Transaction(db, lm)
        txn.lock_row("acct", 1)
        assert lm.held_by(txn.id)
        txn.commit()
        assert not lm.held_by(txn.id)

    def test_lock_conflict_without_wait_raises(self, db):
        lm = LockManager()
        txn1 = Transaction(db, lm)
        txn2 = Transaction(db, lm)
        txn1.lock_row("acct", 1)
        with pytest.raises(LockTimeoutError):
            txn2.lock_row("acct", 1)

    def test_shared_table_locks_coexist(self, db):
        lm = LockManager()
        txn1 = Transaction(db, lm)
        txn2 = Transaction(db, lm)
        txn1.lock_table("acct", exclusive=False)
        txn2.lock_table("acct", exclusive=False)
        txn1.commit()
        txn2.commit()


# ---------------------------------------------------------------------------
# Two-phase commit over shards
# ---------------------------------------------------------------------------


def _sharded_fixture(shards=2):
    from repro.db import ShardedDatabase, ShardingScheme, TableSharding

    scheme = ShardingScheme({"acct": TableSharding(("id",), "mod")})
    sdb = ShardedDatabase("bank", shards=shards, scheme=scheme)
    sdb.create_table(
        "acct", [("id", "int", False), ("bal", "float")], primary_key=["id"]
    )
    for i in range(6):
        sdb.insert("acct", (i, 100.0))
    managers = [LockManager() for _ in range(shards)]
    return sdb, managers


class TestTransactionPrepare:
    def test_prepare_freezes_new_work_but_allows_resolution(self, db):
        txn = Transaction(db)
        _, undo = db.table("acct").insert((3, 1.0))
        txn.record_undo(undo)
        txn.prepare()
        with pytest.raises(TransactionError):
            txn.record_undo(undo)
        txn.prepare()  # idempotent
        txn.rollback()
        assert db.table("acct").lookup_pk((3,)) is None

    def test_prepared_transaction_can_commit(self, db):
        txn = Transaction(db)
        txn.prepare()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.prepare()


class TestShardedTransaction:
    def test_cross_shard_abort_releases_all_shard_locks(self):
        from repro.db import ShardedTransaction

        sdb, managers = _sharded_fixture()
        txn = ShardedTransaction(sdb.shards, managers)
        txn.branch(0).lock_row("acct", 1)
        txn.branch(1).lock_row("acct", 2)
        assert managers[0].held_by(txn.branch(0).id)
        assert managers[1].held_by(txn.branch(1).id)
        branch_ids = [txn.branch(0).id, txn.branch(1).id]
        txn.rollback()
        for manager, branch_id in zip(managers, branch_ids):
            assert not manager.held_by(branch_id)
            assert not manager.wait_for_edges()

    def test_prepared_shard_blocks_conflicting_writers_only_there(self):
        from repro.db import ShardedTransaction

        sdb, managers = _sharded_fixture()
        txn = ShardedTransaction(sdb.shards, managers)
        txn.branch(0).lock_row("acct", 1)
        txn.prepare()
        # Conflicting writer on the prepared shard stays blocked.
        rival_same = Transaction(sdb.shards[0], managers[0],
                                 wait_for_locks=True)
        granted = managers[0].acquire(
            rival_same.id, ("row", "acct", 1), LockMode.EXCLUSIVE
        )
        assert not granted  # queued behind the prepared branch
        # A writer on the untouched shard proceeds immediately.
        rival_other = Transaction(sdb.shards[1], managers[1])
        rival_other.lock_row("acct", 2)
        rival_other.commit()
        # Resolution unblocks the queued rival.
        txn.commit()
        holders = managers[0].holders(("row", "acct", 1))
        assert holders == {rival_same.id: LockMode.EXCLUSIVE}

    def test_single_shard_commit_is_one_phase(self):
        from repro.db import ShardedTransaction
        from repro.sim.clock import VirtualClock

        sdb, managers = _sharded_fixture()
        clock = VirtualClock()
        txn = ShardedTransaction(
            sdb.shards, managers, clock=clock, one_way_latency=0.001
        )
        branch = txn.branch(0)
        _, undo = sdb.shards[0].table("acct").insert((10, 5.0))
        branch.record_undo(undo)
        txn.commit()
        assert clock.now == 0.0  # no prepare round for one participant
        assert any("1pc" in event for _, _, event in txn.timeline)
        assert all(
            phase in ("begin", "prepare", "commit", "rollback", "recovery")
            for _, phase, _ in txn.timeline
        )

    def test_cross_shard_commit_costs_two_round_trips(self):
        from repro.db import ShardedTransaction
        from repro.sim.clock import VirtualClock

        sdb, managers = _sharded_fixture()
        clock = VirtualClock()
        txn = ShardedTransaction(
            sdb.shards, managers, clock=clock, one_way_latency=0.001
        )
        txn.branch(0).lock_row("acct", 0)
        txn.branch(1).lock_row("acct", 1)
        txn.commit()
        assert abs(clock.now - 0.004) < 1e-12  # prepare + commit rounds
        events = [event for _, _, event in txn.timeline]
        assert "prepare sent" in events and "commit sent" in events
        prepared = [e for e in events if e.startswith("prepared shard")]
        committed = [e for e in events if e.startswith("committed shard")]
        assert len(prepared) == len(committed) == 2
        # Phase 1 strictly precedes phase 2.
        assert events.index("commit sent") > max(
            events.index(e) for e in prepared
        )
        # Every event carries its protocol phase label.
        phases = [phase for _, phase, _ in txn.timeline]
        assert phases.count("prepare") == 3  # sent + 2 votes
        assert phases.count("commit") == 3  # sent + 2 acks

    def test_cross_shard_rollback_undoes_every_branch(self):
        from repro.db import ShardedTransaction, connect_sharded

        sdb, managers = _sharded_fixture()
        conn = connect_sharded(sdb, sql_exec="compiled")
        before = sdb.logical_rows("acct")
        txn = conn.begin()
        conn.execute("UPDATE acct SET bal = bal + ? WHERE id = ?", 1.0, 0)
        conn.execute("UPDATE acct SET bal = bal + ? WHERE id = ?", 1.0, 1)
        conn.execute("INSERT INTO acct (id, bal) VALUES (?, ?)", 11, 1.0)
        assert len(txn.touched_shards()) == 2
        assert txn.undo_depth == 3
        conn.rollback()
        assert sdb.logical_rows("acct") == before

    def test_resolved_transaction_rejects_new_branches(self):
        from repro.db import ShardedTransaction

        sdb, managers = _sharded_fixture()
        txn = ShardedTransaction(sdb.shards, managers)
        txn.branch(0)
        txn.commit()
        with pytest.raises(TransactionError):
            txn.branch(1)
        with pytest.raises(TransactionError):
            txn.commit()


class TestShardConfigurationFailFast:
    def test_zero_shards_rejected(self):
        from repro.db import ShardedDatabase, ShardError

        with pytest.raises(ShardError):
            ShardedDatabase("bad", shards=0)

    def test_unknown_shard_key_column_rejected(self):
        from repro.db import ShardedDatabase, ShardError, ShardingScheme

        sdb = ShardedDatabase(
            "bad", shards=2,
            scheme=ShardingScheme({"acct": ("missing",)}),
        )
        with pytest.raises(ShardError, match="missing"):
            sdb.create_table(
                "acct", [("id", "int", False)], primary_key=["id"]
            )

    def test_shard_key_outside_primary_key_rejected(self):
        from repro.db import ShardedDatabase, ShardError, ShardingScheme

        sdb = ShardedDatabase(
            "bad", shards=2,
            scheme=ShardingScheme({"acct": ("bal",)}),
        )
        with pytest.raises(ShardError, match="primary key"):
            sdb.create_table(
                "acct", [("id", "int", False), ("bal", "float")],
                primary_key=["id"],
            )

    def test_updating_shard_key_rejected_at_prepare(self):
        from repro.db import ShardRoutingError, connect_sharded

        sdb, _ = _sharded_fixture()
        conn = connect_sharded(sdb)
        with pytest.raises(ShardRoutingError, match="shard key"):
            conn.prepare("UPDATE acct SET id = id + 1 WHERE bal > 0")

    def test_unroutable_cross_shard_join_rejected(self):
        from repro.db import (
            ShardRoutingError,
            ShardedDatabase,
            ShardingScheme,
            connect_sharded,
        )

        scheme = ShardingScheme({"a": ("id",), "b": ("id",)})
        sdb = ShardedDatabase("bad", shards=2, scheme=scheme)
        sdb.create_table("a", [("id", "int", False)], primary_key=["id"])
        sdb.create_table("b", [("id", "int", False)], primary_key=["id"])
        conn = connect_sharded(sdb)
        with pytest.raises(ShardRoutingError):
            conn.prepare(
                "SELECT a.id FROM a a JOIN b b ON a.id < b.id"
            )

    def test_unknown_strategy_rejected(self):
        from repro.db import ShardError, TableSharding

        with pytest.raises(ShardError, match="strategy"):
            TableSharding(("id",), "roundrobin")


class TestShardRoutingRegressions:
    def test_numerically_equal_keys_route_to_one_shard(self):
        """1, 1.0 and True are the same key to the engine, so the
        router must send them to the same shard (repr-hash would not)."""
        from repro.db import (
            ShardedDatabase,
            ShardingScheme,
            TableSharding,
            connect_sharded,
        )

        for strategy in ("hash", "mod"):
            scheme = ShardingScheme(
                {"kv": TableSharding(("k",), strategy)}
            )
            sdb = ShardedDatabase("t", shards=3, scheme=scheme)
            sdb.create_table(
                "kv", [("k", "int", False), ("v", "int")],
                primary_key=["k"],
            )
            conn = connect_sharded(sdb)
            conn.execute("INSERT INTO kv (k, v) VALUES (?, ?)", 1, 10)
            assert conn.query_scalar(
                "SELECT v FROM kv WHERE k = ?", 1.0
            ) == 10, strategy
            assert conn.query_scalar(
                "SELECT v FROM kv WHERE k = ?", True
            ) == 10, strategy

    def test_failed_autocommit_statement_releases_locks(self):
        """A failed autocommit statement rolls its implicit transaction
        back on both deployments -- no stranded locks, no abandoned
        cross-shard undo."""
        from repro.db import (
            Database,
            ShardedDatabase,
            ShardingScheme,
            connect,
            connect_sharded,
        )
        from repro.db.errors import IntegrityError

        scheme = ShardingScheme({"kv": ("k",)})
        sdb = ShardedDatabase("t", shards=2, scheme=scheme)
        sdb.create_table(
            "kv", [("k", "int", False), ("v", "int")], primary_key=["k"]
        )
        sharded_conn = connect_sharded(sdb, use_locks=True)
        single_db = Database("s")
        single_db.create_table(
            "kv", [("k", "int", False), ("v", "int")], primary_key=["k"]
        )
        single_conn = connect(single_db, use_locks=True)
        for conn in (sharded_conn, single_conn):
            conn.execute("INSERT INTO kv (k, v) VALUES (?, ?)", 1, 1)
            with pytest.raises(IntegrityError):
                conn.execute("INSERT INTO kv (k, v) VALUES (?, ?)", 1, 2)
            # The table lock of the failed statement must be gone.
            assert conn.execute(
                "INSERT INTO kv (k, v) VALUES (?, ?)", 2, 2
            ) == 1
