"""Transactions and the lock manager."""

import pytest

from repro.db import Database, connect
from repro.db.errors import DeadlockError, LockTimeoutError, TransactionError
from repro.db.txn import LockManager, LockMode, Transaction


@pytest.fixture()
def db():
    database = Database()
    database.create_table(
        "acct", [("id", "int", False), ("bal", "float")], primary_key=["id"]
    )
    conn = connect(database)
    conn.execute("INSERT INTO acct (id, bal) VALUES (1, 100.0)")
    conn.execute("INSERT INTO acct (id, bal) VALUES (2, 50.0)")
    return database


class TestLockModes:
    def test_shared_compatible_with_shared(self):
        assert LockMode.SHARED.compatible(LockMode.SHARED)

    def test_exclusive_incompatible(self):
        assert not LockMode.EXCLUSIVE.compatible(LockMode.SHARED)
        assert not LockMode.SHARED.compatible(LockMode.EXCLUSIVE)


class TestLockManager:
    def test_grant_and_introspect(self):
        lm = LockManager()
        assert lm.acquire(1, "r", LockMode.EXCLUSIVE)
        assert lm.holders("r") == {1: LockMode.EXCLUSIVE}
        assert "r" in lm.held_by(1)

    def test_shared_locks_coexist(self):
        lm = LockManager()
        assert lm.acquire(1, "r", LockMode.SHARED)
        assert lm.acquire(2, "r", LockMode.SHARED)
        assert set(lm.holders("r")) == {1, 2}

    def test_exclusive_conflicts_queue(self):
        lm = LockManager()
        lm.acquire(1, "r", LockMode.EXCLUSIVE)
        assert lm.acquire(2, "r", LockMode.EXCLUSIVE) is False
        assert lm.waiting("r") == [(2, LockMode.EXCLUSIVE)]

    def test_reentrant(self):
        lm = LockManager()
        lm.acquire(1, "r", LockMode.EXCLUSIVE)
        assert lm.acquire(1, "r", LockMode.EXCLUSIVE)
        assert lm.acquire(1, "r", LockMode.SHARED)  # X covers S

    def test_upgrade_when_sole_holder(self):
        lm = LockManager()
        lm.acquire(1, "r", LockMode.SHARED)
        assert lm.acquire(1, "r", LockMode.EXCLUSIVE)
        assert lm.holders("r") == {1: LockMode.EXCLUSIVE}

    def test_upgrade_blocked_by_other_shared_holder(self):
        lm = LockManager()
        lm.acquire(1, "r", LockMode.SHARED)
        lm.acquire(2, "r", LockMode.SHARED)
        assert lm.acquire(1, "r", LockMode.EXCLUSIVE) is False

    def test_nowait_raises(self):
        lm = LockManager()
        lm.acquire(1, "r", LockMode.EXCLUSIVE)
        with pytest.raises(LockTimeoutError):
            lm.acquire(2, "r", LockMode.EXCLUSIVE, wait=False)

    def test_release_grants_fifo_waiter(self):
        lm = LockManager()
        lm.acquire(1, "r", LockMode.EXCLUSIVE)
        lm.acquire(2, "r", LockMode.EXCLUSIVE)
        lm.acquire(3, "r", LockMode.EXCLUSIVE)
        grants = lm.release_all(1)
        assert grants == [(2, "r")]
        assert lm.holders("r") == {2: LockMode.EXCLUSIVE}
        assert lm.waiting("r") == [(3, LockMode.EXCLUSIVE)]

    def test_release_grants_shared_batch(self):
        lm = LockManager()
        lm.acquire(1, "r", LockMode.EXCLUSIVE)
        lm.acquire(2, "r", LockMode.SHARED)
        lm.acquire(3, "r", LockMode.SHARED)
        grants = lm.release_all(1)
        assert {g[0] for g in grants} == {2, 3}

    def test_deadlock_detected(self):
        lm = LockManager()
        lm.acquire(1, "a", LockMode.EXCLUSIVE)
        lm.acquire(2, "b", LockMode.EXCLUSIVE)
        assert lm.acquire(1, "b", LockMode.EXCLUSIVE) is False  # 1 waits on 2
        with pytest.raises(DeadlockError) as excinfo:
            lm.acquire(2, "a", LockMode.EXCLUSIVE)  # 2 waits on 1: cycle
        assert set(excinfo.value.cycle) >= {1, 2}

    def test_three_way_deadlock(self):
        lm = LockManager()
        for txn, resource in [(1, "a"), (2, "b"), (3, "c")]:
            lm.acquire(txn, resource, LockMode.EXCLUSIVE)
        assert lm.acquire(1, "b", LockMode.EXCLUSIVE) is False
        assert lm.acquire(2, "c", LockMode.EXCLUSIVE) is False
        with pytest.raises(DeadlockError):
            lm.acquire(3, "a", LockMode.EXCLUSIVE)

    def test_victim_can_retry_after_release(self):
        lm = LockManager()
        lm.acquire(1, "a", LockMode.EXCLUSIVE)
        lm.acquire(2, "b", LockMode.EXCLUSIVE)
        lm.acquire(1, "b")
        with pytest.raises(DeadlockError):
            lm.acquire(2, "a")
        # Victim 2 releases; 1 gets b and can finish.
        grants = lm.release_all(2)
        assert (1, "b") in grants

    def test_wait_for_edges_cleaned_on_release(self):
        lm = LockManager()
        lm.acquire(1, "r", LockMode.EXCLUSIVE)
        lm.acquire(2, "r", LockMode.EXCLUSIVE)
        lm.release_all(2)  # waiter gives up
        assert lm.wait_for_edges() == {}
        lm.release_all(1)
        assert lm.holders("r") == {}


class TestTransaction:
    def test_commit_clears_undo(self, db):
        txn = Transaction(db)
        _, undo = db.table("acct").insert((3, 1.0))
        txn.record_undo(undo)
        txn.commit()
        assert db.table("acct").lookup_pk((3,)) is not None

    def test_rollback_reverses_mutations(self, db):
        txn = Transaction(db)
        table = db.table("acct")
        _, undo = table.insert((3, 1.0))
        txn.record_undo(undo)
        rowid = table.lookup_pk((1,))
        txn.record_undo(table.update(rowid, {"bal": 0.0}))
        txn.rollback()
        assert table.lookup_pk((3,)) is None
        assert table.get(rowid) == (1, 100.0)

    def test_operations_after_commit_rejected(self, db):
        txn = Transaction(db)
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()
        with pytest.raises(TransactionError):
            txn.rollback()

    def test_context_manager_commits(self, db):
        with Transaction(db) as txn:
            _, undo = db.table("acct").insert((3, 1.0))
            txn.record_undo(undo)
        assert db.table("acct").lookup_pk((3,)) is not None

    def test_context_manager_rolls_back_on_error(self, db):
        with pytest.raises(RuntimeError):
            with Transaction(db) as txn:
                _, undo = db.table("acct").insert((3, 1.0))
                txn.record_undo(undo)
                raise RuntimeError("boom")
        assert db.table("acct").lookup_pk((3,)) is None

    def test_locks_released_on_commit(self, db):
        lm = LockManager()
        txn = Transaction(db, lm)
        txn.lock_row("acct", 1)
        assert lm.held_by(txn.id)
        txn.commit()
        assert not lm.held_by(txn.id)

    def test_lock_conflict_without_wait_raises(self, db):
        lm = LockManager()
        txn1 = Transaction(db, lm)
        txn2 = Transaction(db, lm)
        txn1.lock_row("acct", 1)
        with pytest.raises(LockTimeoutError):
            txn2.lock_row("acct", 1)

    def test_shared_table_locks_coexist(self, db):
        lm = LockManager()
        txn1 = Transaction(db, lm)
        txn2 = Transaction(db, lm)
        txn1.lock_table("acct", exclusive=False)
        txn2.lock_table("acct", exclusive=False)
        txn1.commit()
        txn2.commit()
