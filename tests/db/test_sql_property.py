"""Property-based tests: the SQL engine versus a plain-Python model."""

from dataclasses import dataclass, field

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, rule, invariant

from repro.db import Database, connect
from repro.db.errors import IntegrityError


def fresh_conn():
    db = Database()
    db.create_table(
        "kv",
        [("k", "int", False), ("v", "int"), ("tag", "text")],
        primary_key=["k"],
    )
    return connect(db)


keys = st.integers(0, 30)
values = st.integers(-100, 100)
tags = st.sampled_from(["a", "b", "c"])


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.tuples(keys, values, tags), max_size=40),
    st.integers(-100, 100),
)
def test_inserts_then_filtered_sum_matches_model(rows, threshold):
    """SUM with a WHERE filter agrees with a dict-based model."""
    conn = fresh_conn()
    model: dict[int, tuple[int, str]] = {}
    for k, v, tag in rows:
        if k in model:
            continue
        model[k] = (v, tag)
        conn.execute("INSERT INTO kv (k, v, tag) VALUES (?, ?, ?)", k, v, tag)
    matching = [v for v, _ in model.values() if v > threshold]
    expected = sum(matching) if matching else None
    got = conn.query_scalar("SELECT SUM(v) FROM kv WHERE v > ?", threshold)
    assert got == expected


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(keys, values, tags), max_size=40))
def test_group_by_counts_match_model(rows):
    conn = fresh_conn()
    model: dict[str, int] = {}
    seen: set[int] = set()
    for k, v, tag in rows:
        if k in seen:
            continue
        seen.add(k)
        model[tag] = model.get(tag, 0) + 1
        conn.execute("INSERT INTO kv (k, v, tag) VALUES (?, ?, ?)", k, v, tag)
    got = {
        r["tag"]: r["n"]
        for r in conn.query("SELECT tag, COUNT(*) AS n FROM kv GROUP BY tag")
    }
    assert got == model


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.tuples(keys, values), max_size=30),
    st.lists(st.tuples(keys, values), max_size=15),
    st.lists(keys, max_size=15),
)
def test_insert_update_delete_matches_model(inserts, updates, deletes):
    """Interleaved mutations agree with a dict model."""
    conn = fresh_conn()
    model: dict[int, int] = {}
    for k, v in inserts:
        if k in model:
            with pytest.raises(IntegrityError):
                conn.execute(
                    "INSERT INTO kv (k, v, tag) VALUES (?, ?, 'x')", k, v
                )
        else:
            model[k] = v
            conn.execute("INSERT INTO kv (k, v, tag) VALUES (?, ?, 'x')", k, v)
    for k, v in updates:
        changed = conn.execute("UPDATE kv SET v = ? WHERE k = ?", v, k)
        if k in model:
            assert changed == 1
            model[k] = v
        else:
            assert changed == 0
    for k in deletes:
        removed = conn.execute("DELETE FROM kv WHERE k = ?", k)
        assert removed == (1 if k in model else 0)
        model.pop(k, None)
    rows = conn.query("SELECT k, v FROM kv ORDER BY k").rows
    assert [(r["k"], r["v"]) for r in rows] == sorted(model.items())


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.tuples(keys, values), max_size=25, unique_by=lambda t: t[0]),
)
def test_transaction_rollback_is_identity(rows):
    """Property: any transaction that rolls back leaves no trace."""
    conn = fresh_conn()
    for k, v in rows[: len(rows) // 2]:
        conn.execute("INSERT INTO kv (k, v, tag) VALUES (?, ?, 'x')", k, v)
    before = [tuple(r) for r in conn.query("SELECT k, v FROM kv ORDER BY k")]
    txn = conn.begin()
    for k, v in rows[len(rows) // 2:]:
        conn.execute("INSERT INTO kv (k, v, tag) VALUES (?, ?, 'y')", k, v)
    conn.execute("UPDATE kv SET v = v + 1")
    conn.execute("DELETE FROM kv WHERE v > 0")
    conn.rollback()
    after = [tuple(r) for r in conn.query("SELECT k, v FROM kv ORDER BY k")]
    assert before == after


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(keys, values), max_size=30, unique_by=lambda t: t[0]))
def test_order_by_matches_sorted_model(rows):
    conn = fresh_conn()
    for k, v in rows:
        conn.execute("INSERT INTO kv (k, v, tag) VALUES (?, ?, 'x')", k, v)
    got = [(r["v"], r["k"]) for r in conn.query(
        "SELECT v, k FROM kv ORDER BY v DESC, k"
    )]
    expected = sorted(
        [(v, k) for k, v in rows], key=lambda t: (-t[0], t[1])
    )
    assert got == expected
