"""Property-based tests: the SQL engine versus a plain-Python model,
plus a seeded random-statement generator run through every executor.

The generator (:class:`StatementScriptGenerator`) produces reproducible
scripts covering NOT BETWEEN, DISTINCT aggregates, multi-key ORDER BY,
NULL-heavy rows and join-shaped statements; each script runs through
the tree executor, the closure-compiled executor, the source-codegen
executor, and the sharded router (all three executor modes), and all
six must agree bit-identically -- results, errors, observer streams
and final table state.
"""

import random
from dataclasses import dataclass, field

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, rule, invariant

from repro.db import Database, connect
from repro.db.errors import IntegrityError


def fresh_conn():
    db = Database()
    db.create_table(
        "kv",
        [("k", "int", False), ("v", "int"), ("tag", "text")],
        primary_key=["k"],
    )
    return connect(db)


keys = st.integers(0, 30)
values = st.integers(-100, 100)
tags = st.sampled_from(["a", "b", "c"])


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.tuples(keys, values, tags), max_size=40),
    st.integers(-100, 100),
)
def test_inserts_then_filtered_sum_matches_model(rows, threshold):
    """SUM with a WHERE filter agrees with a dict-based model."""
    conn = fresh_conn()
    model: dict[int, tuple[int, str]] = {}
    for k, v, tag in rows:
        if k in model:
            continue
        model[k] = (v, tag)
        conn.execute("INSERT INTO kv (k, v, tag) VALUES (?, ?, ?)", k, v, tag)
    matching = [v for v, _ in model.values() if v > threshold]
    expected = sum(matching) if matching else None
    got = conn.query_scalar("SELECT SUM(v) FROM kv WHERE v > ?", threshold)
    assert got == expected


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(keys, values, tags), max_size=40))
def test_group_by_counts_match_model(rows):
    conn = fresh_conn()
    model: dict[str, int] = {}
    seen: set[int] = set()
    for k, v, tag in rows:
        if k in seen:
            continue
        seen.add(k)
        model[tag] = model.get(tag, 0) + 1
        conn.execute("INSERT INTO kv (k, v, tag) VALUES (?, ?, ?)", k, v, tag)
    got = {
        r["tag"]: r["n"]
        for r in conn.query("SELECT tag, COUNT(*) AS n FROM kv GROUP BY tag")
    }
    assert got == model


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.tuples(keys, values), max_size=30),
    st.lists(st.tuples(keys, values), max_size=15),
    st.lists(keys, max_size=15),
)
def test_insert_update_delete_matches_model(inserts, updates, deletes):
    """Interleaved mutations agree with a dict model."""
    conn = fresh_conn()
    model: dict[int, int] = {}
    for k, v in inserts:
        if k in model:
            with pytest.raises(IntegrityError):
                conn.execute(
                    "INSERT INTO kv (k, v, tag) VALUES (?, ?, 'x')", k, v
                )
        else:
            model[k] = v
            conn.execute("INSERT INTO kv (k, v, tag) VALUES (?, ?, 'x')", k, v)
    for k, v in updates:
        changed = conn.execute("UPDATE kv SET v = ? WHERE k = ?", v, k)
        if k in model:
            assert changed == 1
            model[k] = v
        else:
            assert changed == 0
    for k in deletes:
        removed = conn.execute("DELETE FROM kv WHERE k = ?", k)
        assert removed == (1 if k in model else 0)
        model.pop(k, None)
    rows = conn.query("SELECT k, v FROM kv ORDER BY k").rows
    assert [(r["k"], r["v"]) for r in rows] == sorted(model.items())


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.tuples(keys, values), max_size=25, unique_by=lambda t: t[0]),
)
def test_transaction_rollback_is_identity(rows):
    """Property: any transaction that rolls back leaves no trace."""
    conn = fresh_conn()
    for k, v in rows[: len(rows) // 2]:
        conn.execute("INSERT INTO kv (k, v, tag) VALUES (?, ?, 'x')", k, v)
    before = [tuple(r) for r in conn.query("SELECT k, v FROM kv ORDER BY k")]
    txn = conn.begin()
    for k, v in rows[len(rows) // 2:]:
        conn.execute("INSERT INTO kv (k, v, tag) VALUES (?, ?, 'y')", k, v)
    conn.execute("UPDATE kv SET v = v + 1")
    conn.execute("DELETE FROM kv WHERE v > 0")
    conn.rollback()
    after = [tuple(r) for r in conn.query("SELECT k, v FROM kv ORDER BY k")]
    assert before == after


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(keys, values), max_size=30, unique_by=lambda t: t[0]))
def test_order_by_matches_sorted_model(rows):
    conn = fresh_conn()
    for k, v in rows:
        conn.execute("INSERT INTO kv (k, v, tag) VALUES (?, ?, 'x')", k, v)
    got = [(r["v"], r["k"]) for r in conn.query(
        "SELECT v, k FROM kv ORDER BY v DESC, k"
    )]
    expected = sorted(
        [(v, k) for k, v in rows], key=lambda t: (-t[0], t[1])
    )
    assert got == expected


# ---------------------------------------------------------------------------
# Random-statement generator: tree vs compiled vs sharded differential
# ---------------------------------------------------------------------------


class StatementScriptGenerator:
    """Seeded random SQL scripts over one fixed two-table schema.

    Reproducible (plain ``random.Random``); covers INSERT (NULL-heavy
    rows, occasional duplicate primary keys), UPDATE/DELETE with
    BETWEEN / NOT BETWEEN / IN predicates, SELECTs with multi-key
    ORDER BY, DISTINCT projections, DISTINCT aggregates, GROUP BY,
    LIMIT and raw scans (which pin down scan order), plus join-shaped
    statements over ``p JOIN q`` (``q`` is replicated in the sharded
    deployments so the sharded table always drives the join, and small
    enough that the source rung exercises both the nested and
    hash-join strategies as it grows across the script).
    """

    GROUPS = ("a", "b", "c", None)

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)

    def _value(self, lo=-50, hi=50, null_p=0.3):
        if self.rng.random() < null_p:
            return None
        return self.rng.randint(lo, hi)

    def _insert(self):
        return (
            "INSERT INTO p (id, grp, a, b) VALUES (?, ?, ?, ?)",
            (
                self.rng.randint(0, 45),
                self.rng.choice(self.GROUPS),
                self._value(),
                self._value(),
            ),
        )

    def _insert_q(self):
        return (
            "INSERT INTO q (qid, grp, v) VALUES (?, ?, ?)",
            (
                self.rng.randint(0, 25),
                self.rng.choice(self.GROUPS),
                self._value(),
            ),
        )

    def _join_select(self):
        choices = [
            # Equi join on a text column in either ON-operand order.
            ("SELECT p.id, q.qid, q.v FROM p JOIN q ON p.grp = q.grp "
             "ORDER BY p.id, q.qid", ()),
            ("SELECT p.id, q.qid FROM p JOIN q ON q.grp = p.grp "
             "WHERE q.v > ? ORDER BY p.id, q.qid",
             (self._value(null_p=0),)),
            # Equi join on nullable ints (SQL = never matches NULL).
            ("SELECT p.id, q.qid FROM p JOIN q ON p.a = q.v "
             "ORDER BY p.id, q.qid", ()),
            # Join + grouped aggregate.
            ("SELECT q.grp AS g, COUNT(*) AS n, SUM(p.a) AS s FROM p "
             "JOIN q ON p.grp = q.grp GROUP BY q.grp "
             "ORDER BY n DESC, g", ()),
            # Join + whole-input aggregates.
            ("SELECT COUNT(*), MIN(q.v), MAX(p.b) FROM p "
             "JOIN q ON p.grp = q.grp", ()),
            # Residual conjuncts beyond the peeled equi key.
            ("SELECT p.id, q.qid FROM p JOIN q ON p.grp = q.grp "
             "AND p.a < q.v ORDER BY p.id, q.qid", ()),
        ]
        return choices[self.rng.randrange(len(choices))]

    def _mutation(self):
        roll = self.rng.random()
        if roll < 0.1:
            # Broadcast mutations: q is replicated in the sharded
            # deployments, so these touch every shard's copy.
            return (
                "UPDATE q SET v = v + ? WHERE grp = ?",
                (self.rng.randint(-3, 3),
                 self.rng.choice(("a", "b", "c"))),
            )
        if roll < 0.15:
            return ("DELETE FROM q WHERE qid = ?",
                    (self.rng.randint(0, 25),))
        if roll < 0.35:
            return (
                "UPDATE p SET a = a + ? WHERE b NOT BETWEEN ? AND ?",
                (self.rng.randint(-3, 3), self._value(null_p=0),
                 self._value(null_p=0)),
            )
        if roll < 0.6:
            return (
                "UPDATE p SET grp = ?, b = ? WHERE a BETWEEN ? AND ?",
                (self.rng.choice(self.GROUPS), self._value(),
                 self.rng.randint(-50, 0), self.rng.randint(0, 50)),
            )
        if roll < 0.8:
            return ("DELETE FROM p WHERE id = ?",
                    (self.rng.randint(0, 45),))
        return (
            "DELETE FROM p WHERE a NOT BETWEEN ? AND ?",
            (self.rng.randint(-60, -20), self.rng.randint(20, 60)),
        )

    def _select(self):
        choices = [
            ("SELECT id, grp, a, b FROM p", ()),
            ("SELECT id, grp, a FROM p ORDER BY grp, a DESC, id", ()),
            ("SELECT id FROM p ORDER BY a, b DESC, id", ()),
            ("SELECT DISTINCT grp FROM p", ()),
            ("SELECT DISTINCT a, grp FROM p ORDER BY a, grp", ()),
            ("SELECT grp, COUNT(DISTINCT a) AS da, SUM(DISTINCT b) AS sb, "
             "COUNT(*) AS n FROM p GROUP BY grp ORDER BY n DESC, da", ()),
            ("SELECT COUNT(DISTINCT a), SUM(DISTINCT a), AVG(a), "
             "MIN(b), MAX(b) FROM p", ()),
            ("SELECT COUNT(*) FROM p WHERE a NOT BETWEEN ? AND ?",
             (self.rng.randint(-30, 0), self.rng.randint(0, 30))),
            ("SELECT id FROM p WHERE a IN (?, ?, ?) OR grp IS NULL "
             "ORDER BY id", (self._value(null_p=0), self._value(null_p=0),
                             self._value(null_p=0))),
            ("SELECT a, b FROM p WHERE id = ?", (self.rng.randint(0, 45),)),
            ("SELECT id, a FROM p WHERE grp = ? ORDER BY a DESC, id "
             "LIMIT ?", (self.rng.choice(("a", "b", "c")),
                         self.rng.randint(1, 8))),
            ("SELECT grp, b, COUNT(*) AS n FROM p "
             "GROUP BY grp, b ORDER BY n DESC, grp, b", ()),
        ]
        return choices[self.rng.randrange(len(choices))]

    def script(self, statements: int = 60):
        out = []
        for step in range(statements):
            roll = self.rng.random()
            if step < 12 or roll < 0.3:
                out.append(self._insert())
            elif step < 16 or roll < 0.42:
                out.append(self._insert_q())
            elif roll < 0.62:
                out.append(self._mutation())
            elif roll < 0.82:
                out.append(self._select())
            else:
                out.append(self._join_select())
        out.append(("SELECT id, grp, a, b FROM p", ()))
        out.append(("SELECT qid, grp, v FROM q ORDER BY qid", ()))
        out.append(("SELECT p.id, q.qid FROM p JOIN q ON p.grp = q.grp "
                    "ORDER BY p.id, q.qid", ()))
        return out


def _property_schema(db):
    db.create_table(
        "p",
        [("id", "int", False), ("grp", "text"), ("a", "int"),
         ("b", "int")],
        primary_key=["id"],
    )
    # The join inner; replicated in the sharded deployments (not in the
    # sharding scheme), so the sharded table always drives the join.
    db.create_table(
        "q",
        [("qid", "int", False), ("grp", "text"), ("v", "int")],
        primary_key=["qid"],
    )


def _property_executors():
    """{tree, compiled, source} x {single, sharded-3} over 'p'/'q'."""
    from repro.db import (
        ShardedDatabase,
        ShardingScheme,
        TableSharding,
        connect_sharded,
    )

    scheme = ShardingScheme({"p": TableSharding(("id",), "hash")})
    executors = []
    for mode in ("tree", "compiled", "source"):
        db = Database(f"prop-{mode}")
        _property_schema(db)
        executors.append((f"single-{mode}", db, connect(db, sql_exec=mode)))
        sdb = ShardedDatabase(f"prop-shard-{mode}", shards=3, scheme=scheme)
        _property_schema(sdb)
        executors.append(
            (f"sharded-{mode}", sdb, connect_sharded(sdb, sql_exec=mode))
        )
    return executors


def _state_of(db):
    from repro.db import ShardedDatabase

    if isinstance(db, ShardedDatabase):
        return {
            name: list(db.logical_rows(name).items())
            for name in ("p", "q")
        }
    return {
        name: list(db.table(name).scan()) for name in ("p", "q")
    }


@pytest.mark.parametrize("seed", [1, 7, 23, 57, 101, 443])
def test_generated_scripts_three_way_differential(seed):
    script = StatementScriptGenerator(seed).script()
    executors = _property_executors()
    logs = []
    for _, _, conn in executors:
        log = []
        conn.observer = (
            lambda kind, sql, touched, rows, log=log:
            log.append((kind, sql, touched, rows))
        )
        logs.append(log)
    for sql, params in script:
        outcomes = []
        for name, _, conn in executors:
            prepared = conn.prepare(sql)
            try:
                if prepared.is_query:
                    rs = prepared.query(*params)
                    outcomes.append((
                        name,
                        "ok",
                        (list(rs.columns),
                         [row.as_tuple() for row in rs.rows],
                         rs.rows_touched),
                    ))
                else:
                    outcomes.append(
                        (name, "ok", prepared.update(*params))
                    )
            except IntegrityError as err:
                outcomes.append((name, "error", str(err)))
        reference = outcomes[0]
        for other in outcomes[1:]:
            assert other[1:] == reference[1:], (sql, params, other[0])
    # Observer streams (rows_touched per mutation) and final states.
    assert all(log == logs[0] for log in logs[1:])
    states = [_state_of(db) for _, db, _ in executors]
    assert all(state == states[0] for state in states[1:])
    # The generator actually built both tables (join coverage is real).
    assert all(len(states[0][t]) > 0 for t in ("p", "q"))


def test_generated_scripts_are_reproducible():
    first = StatementScriptGenerator(99).script()
    second = StatementScriptGenerator(99).script()
    assert first == second
