"""Index structures, including property-based checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.errors import IntegrityError
from repro.db.index import HashIndex, OrderedIndex


class TestHashIndex:
    def test_insert_lookup(self):
        index = HashIndex("i")
        index.insert(("a",), 1)
        index.insert(("a",), 2)
        assert index.lookup(("a",)) == {1, 2}
        assert len(index) == 2

    def test_lookup_missing_empty(self):
        assert HashIndex("i").lookup(("x",)) == frozenset()

    def test_unique_enforced(self):
        index = HashIndex("i", unique=True)
        index.insert(("a",), 1)
        with pytest.raises(IntegrityError):
            index.insert(("a",), 2)

    def test_duplicate_rowid_idempotent(self):
        index = HashIndex("i")
        index.insert(("a",), 1)
        index.insert(("a",), 1)
        assert len(index) == 1

    def test_delete(self):
        index = HashIndex("i")
        index.insert(("a",), 1)
        index.delete(("a",), 1)
        assert not index.contains(("a",))
        assert len(index) == 0

    def test_delete_missing_raises(self):
        with pytest.raises(KeyError):
            HashIndex("i").delete(("a",), 1)

    def test_clear(self):
        index = HashIndex("i")
        index.insert(("a",), 1)
        index.clear()
        assert len(index) == 0


class TestOrderedIndex:
    def test_range_scan_inclusive(self):
        index = OrderedIndex("i")
        for key in [5, 1, 3, 9, 7]:
            index.insert((key,), key * 10)
        assert list(index.range_scan((3,), (7,))) == [30, 50, 70]

    def test_range_scan_exclusive_bounds(self):
        index = OrderedIndex("i")
        for key in range(1, 6):
            index.insert((key,), key)
        result = list(
            index.range_scan(
                (1,), (5,), low_inclusive=False, high_inclusive=False
            )
        )
        assert result == [2, 3, 4]

    def test_open_bounds(self):
        index = OrderedIndex("i")
        for key in [2, 4, 6]:
            index.insert((key,), key)
        assert list(index.range_scan(None, (4,))) == [2, 4]
        assert list(index.range_scan((4,), None)) == [4, 6]
        assert list(index.range_scan()) == [2, 4, 6]

    def test_reverse_scan(self):
        index = OrderedIndex("i")
        for key in [1, 2, 3]:
            index.insert((key,), key)
        assert list(index.range_scan(reverse=True)) == [3, 2, 1]

    def test_duplicate_keys_yield_sorted_rowids(self):
        index = OrderedIndex("i")
        index.insert(("x",), 9)
        index.insert(("x",), 3)
        assert list(index.range_scan()) == [3, 9]

    def test_prefix_bounds_on_composite_keys(self):
        index = OrderedIndex("i")
        index.insert((1, "a"), 10)
        index.insert((1, "b"), 11)
        index.insert((2, "a"), 20)
        # Prefix low bound (1,) selects all keys starting at (1, ...).
        assert list(index.range_scan(low=(1,), high=(1, "zzz"))) == [10, 11]

    def test_min_max_keys(self):
        index = OrderedIndex("i")
        assert index.min_key() is None
        index.insert((5,), 1)
        index.insert((2,), 2)
        assert index.min_key() == (2,)
        assert index.max_key() == (5,)

    def test_delete_removes_key_when_empty(self):
        index = OrderedIndex("i")
        index.insert((1,), 1)
        index.insert((1,), 2)
        index.delete((1,), 1)
        assert index.contains((1,))
        index.delete((1,), 2)
        assert not index.contains((1,))
        assert list(index.keys()) == []

    def test_unique_enforced(self):
        index = OrderedIndex("i", unique=True)
        index.insert((1,), 1)
        with pytest.raises(IntegrityError):
            index.insert((1,), 2)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(-50, 50), st.integers(0, 10_000))))
def test_ordered_index_matches_sorted_model(entries):
    """Property: range_scan over the full range yields row ids sorted by
    (key, rowid), matching a plain sorted list model."""
    index = OrderedIndex("prop")
    model = []
    seen = set()
    for key, rowid in entries:
        if (key, rowid) in seen:
            continue
        seen.add((key, rowid))
        index.insert((key,), rowid)
        model.append((key, rowid))
    model.sort()
    assert list(index.range_scan()) == [rowid for _, rowid in model]
    assert len(index) == len(model)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(-30, 30), unique=True),
    st.integers(-35, 35),
    st.integers(-35, 35),
)
def test_ordered_index_range_matches_filter(keys, low, high):
    """Property: a bounded range scan equals filtering the key list."""
    index = OrderedIndex("prop")
    for key in keys:
        index.insert((key,), key)
    lo, hi = min(low, high), max(low, high)
    expected = sorted(k for k in keys if lo <= k <= hi)
    assert list(index.range_scan((lo,), (hi,))) == expected


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 20), min_size=1))
def test_hash_index_delete_inverse_of_insert(keys):
    """Property: inserting then deleting all entries empties the index."""
    index = HashIndex("prop")
    inserted = []
    for i, key in enumerate(keys):
        index.insert((key,), i)
        inserted.append((key, i))
    for key, rowid in inserted:
        index.delete((key,), rowid)
    assert len(index) == 0
    for key, _ in inserted:
        assert not index.contains((key,))
