"""Catalog: column types, schemas, validation."""

import pytest

from repro.db.catalog import Catalog, Column, ColumnType, IndexSpec, TableSchema
from repro.db.errors import (
    IntegrityError,
    PlanError,
    UnknownColumnError,
    UnknownTableError,
)


class TestColumnType:
    def test_integer_accepts_int(self):
        assert ColumnType.INTEGER.validate(42) == 42

    def test_integer_accepts_integral_float(self):
        assert ColumnType.INTEGER.validate(3.0) == 3

    def test_integer_rejects_fractional_float(self):
        with pytest.raises(IntegrityError):
            ColumnType.INTEGER.validate(3.5)

    def test_integer_rejects_bool(self):
        with pytest.raises(IntegrityError):
            ColumnType.INTEGER.validate(True)

    def test_float_coerces_int(self):
        value = ColumnType.FLOAT.validate(2)
        assert value == 2.0
        assert isinstance(value, float)

    def test_text_rejects_numbers(self):
        with pytest.raises(IntegrityError):
            ColumnType.TEXT.validate(5)

    def test_boolean_strict(self):
        assert ColumnType.BOOLEAN.validate(True) is True
        with pytest.raises(IntegrityError):
            ColumnType.BOOLEAN.validate(1)

    def test_none_passes_all_types(self):
        for column_type in ColumnType:
            assert column_type.validate(None) is None

    @pytest.mark.parametrize(
        "alias,expected",
        [
            ("int", ColumnType.INTEGER),
            ("BIGINT", ColumnType.INTEGER),
            ("varchar", ColumnType.TEXT),
            ("double", ColumnType.FLOAT),
            ("decimal", ColumnType.FLOAT),
            ("bool", ColumnType.BOOLEAN),
        ],
    )
    def test_from_name_aliases(self, alias, expected):
        assert ColumnType.from_name(alias) is expected

    def test_from_name_unknown(self):
        with pytest.raises(PlanError):
            ColumnType.from_name("blob")


class TestColumn:
    def test_not_null_enforced(self):
        column = Column("id", ColumnType.INTEGER, nullable=False)
        with pytest.raises(IntegrityError):
            column.validate(None)

    def test_nullable_allows_none(self):
        column = Column("age", ColumnType.INTEGER)
        assert column.validate(None) is None


def make_schema() -> TableSchema:
    return TableSchema(
        "t",
        [
            Column("id", ColumnType.INTEGER, nullable=False),
            Column("name", ColumnType.TEXT),
            Column("score", ColumnType.FLOAT),
        ],
        primary_key=["id"],
        indexes=[IndexSpec("t_by_name", ("name",))],
    )


class TestTableSchema:
    def test_offsets(self):
        schema = make_schema()
        assert schema.offset("id") == 0
        assert schema.offset("score") == 2

    def test_unknown_column(self):
        with pytest.raises(UnknownColumnError):
            make_schema().offset("missing")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(PlanError):
            TableSchema(
                "t",
                [Column("a", ColumnType.INTEGER), Column("a", ColumnType.TEXT)],
                primary_key=["a"],
            )

    def test_primary_key_must_exist(self):
        with pytest.raises(UnknownColumnError):
            TableSchema(
                "t", [Column("a", ColumnType.INTEGER)], primary_key=["b"]
            )

    def test_primary_key_required(self):
        with pytest.raises(PlanError):
            TableSchema("t", [Column("a", ColumnType.INTEGER)], primary_key=[])

    def test_validate_row_coerces(self):
        schema = make_schema()
        row = schema.validate_row((1, "x", 2))
        assert row == (1, "x", 2.0)
        assert isinstance(row[2], float)

    def test_validate_row_wrong_arity(self):
        with pytest.raises(IntegrityError):
            make_schema().validate_row((1, "x"))

    def test_key_of(self):
        schema = make_schema()
        assert schema.key_of((5, "a", 1.0)) == (5,)

    def test_index_columns_validated(self):
        with pytest.raises(UnknownColumnError):
            TableSchema(
                "t",
                [Column("a", ColumnType.INTEGER)],
                primary_key=["a"],
                indexes=[IndexSpec("bad", ("zzz",))],
            )

    def test_empty_index_rejected(self):
        with pytest.raises(PlanError):
            IndexSpec("bad", ())


class TestCatalog:
    def test_add_and_get_case_insensitive(self):
        catalog = Catalog()
        catalog.add(make_schema())
        assert catalog.get("T").name == "t"
        assert catalog.has("t")

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.add(make_schema())
        with pytest.raises(PlanError):
            catalog.add(make_schema())

    def test_unknown_table(self):
        with pytest.raises(UnknownTableError):
            Catalog().get("nope")

    def test_drop(self):
        catalog = Catalog()
        catalog.add(make_schema())
        catalog.drop("t")
        assert not catalog.has("t")
        with pytest.raises(UnknownTableError):
            catalog.drop("t")

    def test_names_sorted(self):
        catalog = Catalog()
        for name in ("zeta", "alpha"):
            catalog.add(
                TableSchema(
                    name, [Column("id", ColumnType.INTEGER)], primary_key=["id"]
                )
            )
        assert catalog.names() == ["alpha", "zeta"]
