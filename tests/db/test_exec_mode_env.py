"""Fail-fast resolution of the executor-selection environment variables.

``REPRO_INTERP`` (block runtime) and ``REPRO_SQL_EXEC`` (SQL executor)
must reject unknown values with the allowed choices in the error --
never silently fall back to a default.
"""

import pytest

from repro.db import Database, connect
from repro.db.errors import ExecutionError
from repro.db.sql.compile_plan import (
    DEFAULT_SQL_EXEC,
    SQL_EXEC_ENV_VAR,
    SQL_EXEC_MODES,
    resolve_sql_exec_mode,
)
from repro.runtime.interpreter import (
    DEFAULT_INTERP,
    INTERP_ENV_VAR,
    INTERP_MODES,
    RuntimeError_,
    resolve_interp_mode,
)


class TestSqlExecMode:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(SQL_EXEC_ENV_VAR, raising=False)
        assert resolve_sql_exec_mode() == DEFAULT_SQL_EXEC == "compiled"

    def test_empty_env_means_default(self, monkeypatch):
        monkeypatch.setenv(SQL_EXEC_ENV_VAR, "")
        assert resolve_sql_exec_mode() == DEFAULT_SQL_EXEC

    @pytest.mark.parametrize("mode", SQL_EXEC_MODES)
    def test_valid_env_values(self, monkeypatch, mode):
        monkeypatch.setenv(SQL_EXEC_ENV_VAR, mode)
        assert resolve_sql_exec_mode() == mode

    def test_env_value_normalized(self, monkeypatch):
        monkeypatch.setenv(SQL_EXEC_ENV_VAR, "  Tree \n")
        assert resolve_sql_exec_mode() == "tree"

    @pytest.mark.parametrize("bad", ["fast", "interp", "COMPILED2", "no"])
    def test_unknown_env_value_fails_fast(self, monkeypatch, bad):
        monkeypatch.setenv(SQL_EXEC_ENV_VAR, bad)
        with pytest.raises(ExecutionError) as err:
            resolve_sql_exec_mode()
        # The error names every allowed choice.
        for mode in SQL_EXEC_MODES:
            assert mode in str(err.value)

    def test_unknown_argument_fails_fast(self):
        with pytest.raises(ExecutionError):
            resolve_sql_exec_mode("turbo")

    def test_connection_rejects_unknown_mode(self):
        db = Database("t")
        db.create_table("x", [("id", "int", False)], primary_key=["id"])
        with pytest.raises(ExecutionError):
            connect(db, sql_exec="turbo")

    def test_connection_reads_env_at_construction(self, monkeypatch):
        db = Database("t")
        db.create_table("x", [("id", "int", False)], primary_key=["id"])
        monkeypatch.setenv(SQL_EXEC_ENV_VAR, "tree")
        assert connect(db).sql_exec == "tree"
        monkeypatch.setenv(SQL_EXEC_ENV_VAR, "definitely-not-a-mode")
        with pytest.raises(ExecutionError):
            connect(db)


class TestInterpMode:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(INTERP_ENV_VAR, raising=False)
        assert resolve_interp_mode() == DEFAULT_INTERP == "compiled"

    @pytest.mark.parametrize("mode", INTERP_MODES)
    def test_valid_env_values(self, monkeypatch, mode):
        monkeypatch.setenv(INTERP_ENV_VAR, mode)
        assert resolve_interp_mode() == mode

    @pytest.mark.parametrize("bad", ["fast", "treeee", "closure"])
    def test_unknown_env_value_fails_fast(self, monkeypatch, bad):
        monkeypatch.setenv(INTERP_ENV_VAR, bad)
        with pytest.raises(RuntimeError_) as err:
            resolve_interp_mode()
        for mode in INTERP_MODES:
            assert mode in str(err.value)

    def test_unknown_argument_fails_fast(self):
        with pytest.raises(RuntimeError_):
            resolve_interp_mode("turbo")
