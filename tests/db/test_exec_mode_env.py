"""Fail-fast resolution of the executor-selection environment variables.

``REPRO_INTERP`` (block runtime) and ``REPRO_SQL_EXEC`` (SQL executor)
must reject unknown values with the allowed choices in the error --
never silently fall back to a default.
"""

import pytest

from repro.db import Database, connect
from repro.db.errors import ExecutionError
from repro.db.sql.compile_plan import (
    DEFAULT_SQL_EXEC,
    SQL_EXEC_ENV_VAR,
    SQL_EXEC_MODES,
    resolve_sql_exec_mode,
)
from repro.runtime.interpreter import (
    DEFAULT_INTERP,
    INTERP_ENV_VAR,
    INTERP_MODES,
    RuntimeError_,
    resolve_interp_mode,
)


class TestSqlExecMode:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(SQL_EXEC_ENV_VAR, raising=False)
        assert resolve_sql_exec_mode() == DEFAULT_SQL_EXEC == "compiled"

    def test_empty_env_means_default(self, monkeypatch):
        monkeypatch.setenv(SQL_EXEC_ENV_VAR, "")
        assert resolve_sql_exec_mode() == DEFAULT_SQL_EXEC

    @pytest.mark.parametrize("mode", SQL_EXEC_MODES)
    def test_valid_env_values(self, monkeypatch, mode):
        monkeypatch.setenv(SQL_EXEC_ENV_VAR, mode)
        assert resolve_sql_exec_mode() == mode

    def test_env_value_normalized(self, monkeypatch):
        monkeypatch.setenv(SQL_EXEC_ENV_VAR, "  Tree \n")
        assert resolve_sql_exec_mode() == "tree"

    @pytest.mark.parametrize("bad", ["fast", "interp", "COMPILED2", "no"])
    def test_unknown_env_value_fails_fast(self, monkeypatch, bad):
        monkeypatch.setenv(SQL_EXEC_ENV_VAR, bad)
        with pytest.raises(ExecutionError) as err:
            resolve_sql_exec_mode()
        # The error names every allowed choice.
        for mode in SQL_EXEC_MODES:
            assert mode in str(err.value)

    def test_unknown_argument_fails_fast(self):
        with pytest.raises(ExecutionError):
            resolve_sql_exec_mode("turbo")

    def test_connection_rejects_unknown_mode(self):
        db = Database("t")
        db.create_table("x", [("id", "int", False)], primary_key=["id"])
        with pytest.raises(ExecutionError):
            connect(db, sql_exec="turbo")

    def test_connection_reads_env_at_construction(self, monkeypatch):
        db = Database("t")
        db.create_table("x", [("id", "int", False)], primary_key=["id"])
        monkeypatch.setenv(SQL_EXEC_ENV_VAR, "tree")
        assert connect(db).sql_exec == "tree"
        monkeypatch.setenv(SQL_EXEC_ENV_VAR, "definitely-not-a-mode")
        with pytest.raises(ExecutionError):
            connect(db)


class TestModeKeyedPlanCache:
    """The LRU plan cache is keyed on (executor mode, sql): flipping
    ``REPRO_SQL_EXEC`` between connections (or on a live connection)
    must never serve an executor minted for a different rung."""

    def _db(self):
        db = Database("t")
        db.create_table("x", [("id", "int", False), ("v", "int")],
                        primary_key=["id"])
        conn = connect(db)
        conn.execute("INSERT INTO x (id, v) VALUES (?, ?)", 1, 10)
        return db

    def test_mode_flip_does_not_reuse_other_rungs_plan(self):
        from repro.db.sql.codegen_plan import SourcePlan
        from repro.db.sql.compile_plan import CompiledPlan

        db = self._db()
        sql = "SELECT v FROM x WHERE id = ?"
        conn = connect(db, sql_exec="compiled")
        compiled_stmt = conn.prepare(sql)
        assert isinstance(compiled_stmt.compiled, CompiledPlan)
        # Same connection object, different rung: the cached entry for
        # the compiled rung must not be served.
        conn.sql_exec = "source"
        source_stmt = conn.prepare(sql)
        assert source_stmt is not compiled_stmt
        assert isinstance(source_stmt.compiled, SourcePlan)
        conn.sql_exec = "tree"
        tree_stmt = conn.prepare(sql)
        assert tree_stmt is not compiled_stmt
        assert tree_stmt is not source_stmt
        assert tree_stmt.compiled is None
        # Flipping back serves the original cached entries.
        conn.sql_exec = "compiled"
        assert conn.prepare(sql) is compiled_stmt
        conn.sql_exec = "source"
        assert conn.prepare(sql) is source_stmt

    def test_env_flip_between_connections(self, monkeypatch):
        from repro.db.sql.codegen_plan import SourcePlan

        db = self._db()
        sql = "SELECT v FROM x WHERE id = ?"
        for mode, expect in (
            ("compiled", lambda c: c is not None
             and not isinstance(c, SourcePlan)),
            ("source", lambda c: isinstance(c, SourcePlan)),
            ("tree", lambda c: c is None),
        ):
            monkeypatch.setenv(SQL_EXEC_ENV_VAR, mode)
            conn = connect(db)
            assert conn.sql_exec == mode
            assert expect(conn.prepare(sql).compiled), mode
            assert conn.query_scalar(sql.replace("?", "1")) == 10

    def test_source_plans_counter(self):
        db = self._db()
        conn = connect(db, sql_exec="source")
        stats = conn.plan_cache_stats
        stats.reset()
        conn.prepare("SELECT v FROM x WHERE id = ?")
        assert stats.source_plans == 1
        # Source plans count toward compiled_plans too (both are
        # non-tree rungs; serve-layer reports fold them together).
        assert stats.compiled_plans == 1


class TestInterpMode:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(INTERP_ENV_VAR, raising=False)
        assert resolve_interp_mode() == DEFAULT_INTERP == "compiled"

    @pytest.mark.parametrize("mode", INTERP_MODES)
    def test_valid_env_values(self, monkeypatch, mode):
        monkeypatch.setenv(INTERP_ENV_VAR, mode)
        assert resolve_interp_mode() == mode

    @pytest.mark.parametrize("bad", ["fast", "treeee", "closure"])
    def test_unknown_env_value_fails_fast(self, monkeypatch, bad):
        monkeypatch.setenv(INTERP_ENV_VAR, bad)
        with pytest.raises(RuntimeError_) as err:
            resolve_interp_mode()
        for mode in INTERP_MODES:
            assert mode in str(err.value)

    def test_unknown_argument_fails_fast(self):
        with pytest.raises(RuntimeError_):
            resolve_interp_mode("turbo")
