"""Access-path selection."""

import pytest

from repro.db.errors import PlanError, UnknownColumnError, UnknownTableError
from repro.db.sql.parser import parse
from repro.db.sql.planner import Planner, SelectPlan


@pytest.fixture()
def planner(people_db):
    db, _ = people_db
    return Planner(db)


def plan_select(planner, sql) -> SelectPlan:
    return planner.plan(parse(sql))


class TestAccessPaths:
    def test_pk_equality_uses_point_lookup(self, planner):
        plan = plan_select(planner, "SELECT name FROM person WHERE id = ?")
        assert plan.tables[0].access.kind == "pk"
        assert plan.tables[0].residual is None

    def test_hash_index_equality(self, planner):
        plan = plan_select(
            planner, "SELECT name FROM person WHERE city = 'boston'"
        )
        access = plan.tables[0].access
        assert access.kind == "index_eq"
        assert access.index_name == "person_by_city"

    def test_ordered_index_range(self, planner):
        plan = plan_select(
            planner, "SELECT name FROM person WHERE age > 30"
        )
        access = plan.tables[0].access
        assert access.kind == "index_range"
        assert access.index_name == "person_by_age"
        assert not access.low_inclusive

    def test_range_with_both_bounds(self, planner):
        plan = plan_select(
            planner,
            "SELECT name FROM person WHERE age >= 20 AND age <= 40",
        )
        access = plan.tables[0].access
        assert access.kind == "index_range"
        assert access.low_exprs and access.high_exprs

    def test_unindexed_predicate_scans(self, planner):
        plan = plan_select(planner, "SELECT id FROM person WHERE score > 5.0")
        assert plan.tables[0].access.kind == "scan"
        assert plan.tables[0].residual is not None

    def test_residual_kept_for_extra_predicates(self, planner):
        plan = plan_select(
            planner,
            "SELECT id FROM person WHERE city = 'sf' AND score > 5.0",
        )
        access = plan.tables[0].access
        assert access.kind == "index_eq"
        assert plan.tables[0].residual is not None

    def test_flipped_operands_still_sargable(self, planner):
        plan = plan_select(planner, "SELECT name FROM person WHERE ? = id")
        assert plan.tables[0].access.kind == "pk"

    def test_no_predicates_scans(self, planner):
        plan = plan_select(planner, "SELECT id FROM person")
        assert plan.tables[0].access.kind == "scan"


class TestJoinPlanning:
    def test_inner_table_probed_by_pk(self, people_db):
        db, conn = people_db
        db.create_table(
            "pet",
            [("pid", "int", False), ("owner", "int"), ("kind", "text")],
            primary_key=["pid"],
        )
        planner = Planner(db)
        plan = plan_select(
            planner,
            "SELECT p.name FROM pet JOIN person p ON pet.owner = p.id",
        )
        # The join key probes person's primary key.
        assert plan.tables[1].access.kind == "pk"

    def test_join_order_follows_from_clause(self, people_db):
        db, _ = people_db
        db.create_table(
            "pet",
            [("pid", "int", False), ("owner", "int")],
            primary_key=["pid"],
        )
        planner = Planner(db)
        plan = plan_select(
            planner,
            "SELECT person.name FROM person JOIN pet ON pet.owner = person.id",
        )
        assert [t.table_name for t in plan.tables] == ["person", "pet"]


class TestProjection:
    def test_star_expands_columns(self, planner):
        plan = plan_select(planner, "SELECT * FROM person")
        assert plan.column_names == ["id", "name", "age", "city", "score"]

    def test_aliases_in_output(self, planner):
        plan = plan_select(planner, "SELECT name AS who FROM person")
        assert plan.column_names == ["who"]

    def test_aggregate_columns(self, planner):
        plan = plan_select(
            planner, "SELECT city, COUNT(*) AS n FROM person GROUP BY city"
        )
        assert plan.column_names == ["city", "n"]
        assert len(plan.aggregates) == 1

    def test_order_by_output_alias(self, planner):
        plan = plan_select(
            planner,
            "SELECT city, COUNT(*) AS n FROM person GROUP BY city ORDER BY n DESC",
        )
        assert plan.sort_keys[0].output_index == 1


class TestPlanErrors:
    def test_unknown_table(self, planner):
        with pytest.raises(UnknownTableError):
            planner.plan(parse("SELECT a FROM missing"))

    def test_unknown_column(self, planner):
        with pytest.raises(UnknownColumnError):
            planner.plan(parse("SELECT nope FROM person"))

    def test_insert_arity_mismatch(self, planner):
        with pytest.raises(PlanError):
            planner.plan(parse("INSERT INTO person (id, name) VALUES (1)"))

    def test_update_unknown_column(self, planner):
        with pytest.raises(UnknownColumnError):
            planner.plan(parse("UPDATE person SET nope = 1"))

    def test_duplicate_binding(self, people_db):
        db, _ = people_db
        planner = Planner(db)
        with pytest.raises(PlanError):
            planner.plan(
                parse("SELECT a.id FROM person a JOIN person a ON a.id = a.id")
            )
