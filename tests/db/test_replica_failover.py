"""Failover correctness: promoted replicas vs the single-server oracle.

The tentpole's acceptance bar: crash a shard's primary *mid-script*,
promote a replica, keep going -- and the final state must still be
bit-identical to a single server that ran the same statements with no
failure at all.  Plus the 2PC failure edges: a primary lost between
``prepare()`` and ``commit()`` aborts every branch cleanly, and a
crash hit by a broadcast replicated-table write never leaves the
surviving copies diverged.
"""

import pytest

from repro.db import (
    Database,
    ShardDownError,
    ShardedDatabase,
    ShardingScheme,
    TableSharding,
    TwoPhaseAbortError,
    connect,
    connect_sharded,
)
from repro.db.txn import TxnState

from test_shard_equivalence import (
    MODES,
    _assert_replicas_consistent,
    _run_statement,
    _sharded_state,
    _single_state,
)


# ---------------------------------------------------------------------------
# Differential: mid-script crash + promotion vs the unfailed oracle
# ---------------------------------------------------------------------------


def _tpcc_pair(sql_exec, shards=2, replicas=2):
    from repro.workloads.tpcc import (
        TpccScale,
        make_tpcc_database,
        tpcc_sharding_scheme,
    )

    scale = TpccScale(warehouses=3, customers_per_district=20, items=120)
    single_db, _ = make_tpcc_database(scale)
    source_db, _ = make_tpcc_database(scale)
    sharded_db = ShardedDatabase.from_database(
        source_db, shards, tpcc_sharding_scheme("warehouse"),
        replicas=replicas,
    )
    return (
        scale,
        (single_db, connect(single_db, sql_exec=sql_exec)),
        (sharded_db, connect_sharded(sharded_db, sql_exec=sql_exec)),
    )


def _run_script_identically(single_conn, sharded_conn, script):
    for sql, params in script:
        got_single = _run_statement(single_conn, sql, params)
        got_sharded = _run_statement(sharded_conn, sql, params)
        assert got_single == got_sharded, sql


@pytest.mark.parametrize("sql_exec", MODES)
@pytest.mark.parametrize("crash_shard", [0, 1])
class TestMidScriptFailover:
    def test_new_order_script_survives_promotion(
        self, crash_shard, sql_exec
    ):
        from repro.workloads.tpcc import new_order_statement_script

        scale, single, sharded = _tpcc_pair(sql_exec)
        single_db, single_conn = single
        sharded_db, sharded_conn = sharded
        script = new_order_statement_script(
            scale, transactions=10, seed=3
        )
        half = len(script) // 2
        _run_script_identically(single_conn, sharded_conn, script[:half])

        # Kill the primary between statements; the failure detector's
        # job is played by hand here (the serve tier automates it).
        sharded_db.crash_primary(crash_shard)
        assert sharded_db.is_down(crash_shard)
        report = sharded_db.promote(crash_shard)
        assert report.generation == 1

        _run_script_identically(single_conn, sharded_conn, script[half:])
        assert _single_state(single_db) == _sharded_state(sharded_db)
        _assert_replicas_consistent(sharded_db)
        sharded_db.assert_replica_groups_consistent()

    def test_promotion_replays_partitioned_tail(
        self, crash_shard, sql_exec
    ):
        """A straggler replica wins promotion only after the log tail
        it missed is replayed into it -- the promoted state must still
        match the oracle bit-for-bit."""
        from repro.workloads.tpcc import new_order_statement_script

        scale, single, sharded = _tpcc_pair(sql_exec, replicas=1)
        single_db, single_conn = single
        sharded_db, sharded_conn = sharded
        script = new_order_statement_script(
            scale, transactions=6, seed=11
        )
        half = len(script) // 2
        # Partition the sole replica: commits after this point pile up
        # in the shard's log without being applied.
        group = sharded_db.groups[crash_shard]
        group.set_replica_connected(0, False)
        _run_script_identically(single_conn, sharded_conn, script[:half])

        sharded_db.crash_primary(crash_shard)
        report = sharded_db.promote(crash_shard)
        # The tail the replica missed was replayed during promotion
        # (how much lands on this shard depends on routing; the global
        # log tip bounds it).
        assert report.replayed == report.applied_lsn
        assert report.applied_lsn == group.log.tip

        _run_script_identically(single_conn, sharded_conn, script[half:])
        assert _single_state(single_db) == _sharded_state(sharded_db)
        _assert_replicas_consistent(sharded_db)
        sharded_db.assert_replica_groups_consistent()


# ---------------------------------------------------------------------------
# 2PC failure edges
# ---------------------------------------------------------------------------


def make_replicated_sdb(replicas: int = 1) -> ShardedDatabase:
    """2-shard tier: kv mod-sharded on k, dim replicated everywhere."""
    sdb = ShardedDatabase(
        "f",
        shards=2,
        scheme=ShardingScheme(
            {"kv": TableSharding(columns=("k",), strategy="mod")}
        ),
        replicas=replicas,
    )
    sdb.create_table(
        "kv", [("k", "int", False), ("v", "int")], primary_key=["k"]
    )
    sdb.create_table(
        "dim", [("id", "int", False), ("label", "text")],
        primary_key=["id"],
    )
    for k in range(8):
        sdb.insert("kv", (k, 10 * k))
    for i in range(3):
        sdb.insert("dim", (i, f"label-{i}"))
    return sdb


def kv_values(sdb: ShardedDatabase) -> dict:
    return {k: v for k, v in sdb.logical_rows("kv").values()}


class TestTwoPhaseFailureEdges:
    def test_crash_between_prepare_and_commit_aborts_cleanly(self):
        sdb = make_replicated_sdb()
        conn = connect_sharded(sdb)
        before = kv_values(sdb)
        txn = conn.begin()
        # Touch both shards (k=0 -> shard 0, k=1 -> shard 1).
        conn.execute("UPDATE kv SET v = ? WHERE k = ?", 111, 0)
        conn.execute("UPDATE kv SET v = ? WHERE k = ?", 222, 1)
        txn.prepare()
        assert txn.state is TxnState.PREPARED

        # The primary dies in the prepared-but-unresolved window.
        sdb.crash_primary(1)
        with pytest.raises(TwoPhaseAbortError) as excinfo:
            conn.commit()
        assert excinfo.value.shard == 1
        assert excinfo.value.phase == "commit"
        assert txn.state is TxnState.ABORTED
        assert conn.two_pc_aborts == 1

        # Every branch rolled back: the surviving shard's write is
        # gone, and the timeline shows the recovery protocol ran.
        phases = [phase for _, phase, _ in txn.timeline]
        assert "recovery" in phases
        assert phases.count("rollback") == 2

        report = sdb.promote(1)
        assert report.generation == 1
        assert kv_values(sdb) == before
        # The retry lands cleanly on the promoted primary.
        retry = conn.begin()
        conn.execute("UPDATE kv SET v = ? WHERE k = ?", 111, 0)
        conn.execute("UPDATE kv SET v = ? WHERE k = ?", 222, 1)
        conn.commit()
        assert retry.state is TxnState.COMMITTED
        assert kv_values(sdb)[0] == 111
        assert kv_values(sdb)[1] == 222
        sdb.assert_replica_groups_consistent()

    def test_promotion_during_prepared_window_also_aborts(self):
        """Presumed abort keys off the generation snapshot, not just
        the crash flag: a promotion that already replaced the primary
        still dooms the in-flight transaction."""
        sdb = make_replicated_sdb()
        conn = connect_sharded(sdb)
        txn = conn.begin()
        conn.execute("UPDATE kv SET v = ? WHERE k = ?", 111, 0)
        conn.execute("UPDATE kv SET v = ? WHERE k = ?", 222, 1)
        txn.prepare()
        sdb.crash_primary(1)
        sdb.promote(1)  # supervisor beat the coordinator to it
        with pytest.raises(TwoPhaseAbortError):
            conn.commit()
        assert txn.state is TxnState.ABORTED
        assert kv_values(sdb)[1] == 10
        sdb.assert_replica_groups_consistent()

    def test_statement_on_crashed_shard_fails_without_wedging(self):
        sdb = make_replicated_sdb()
        conn = connect_sharded(sdb)
        txn = conn.begin()
        conn.execute("UPDATE kv SET v = ? WHERE k = ?", 111, 0)
        sdb.crash_primary(1)
        with pytest.raises(ShardDownError):
            conn.execute("UPDATE kv SET v = ? WHERE k = ?", 222, 1)
        # The survivor branch still rolls back cleanly.
        conn.rollback()
        assert txn.state is TxnState.ABORTED
        sdb.promote(1)
        assert kv_values(sdb)[0] == 0
        sdb.assert_replica_groups_consistent()

    def test_broadcast_write_refuses_down_shard_upfront(self):
        """Autocommit broadcast against a tier with a dead shard must
        not mutate *any* copy: a partial broadcast would be committed
        by the no-locks autocommit path and the replicated table's
        copies would diverge forever."""
        sdb = make_replicated_sdb()
        conn = connect_sharded(sdb)
        sdb.crash_primary(1)
        with pytest.raises(ShardDownError):
            conn.execute(
                "UPDATE dim SET label = ? WHERE id = ?", "changed", 0
            )
        # Shard 0's copy is untouched.
        rows = {
            row[0]: row[1]
            for _, row in sdb.shards[0].table("dim").scan()
        }
        assert rows[0] == "label-0"
        sdb.promote(1)
        assert conn.execute(
            "UPDATE dim SET label = ? WHERE id = ?", "changed", 0
        ) == 1
        _assert_replicas_consistent(sdb)
        sdb.assert_replica_groups_consistent()

    def test_crash_during_transactional_broadcast_write(self):
        """Crash after a broadcast write branched on every shard but
        before commit: the abort reverts the surviving copies so the
        replicated table stays identical everywhere."""
        sdb = make_replicated_sdb()
        conn = connect_sharded(sdb)
        txn = conn.begin()
        conn.execute(
            "UPDATE dim SET label = ? WHERE id = ?", "changed", 1
        )
        assert txn.touched_shards() == [0, 1]
        sdb.crash_primary(1)
        with pytest.raises(TwoPhaseAbortError):
            conn.commit()
        assert txn.state is TxnState.ABORTED
        sdb.promote(1)
        # Both surviving copies carry the pre-crash value.
        copies = [
            [row for _, row in shard.table("dim").scan()]
            for shard in sdb.shards
        ]
        assert copies[0] == copies[1]
        assert dict(copies[0])[1] == "label-1"
        _assert_replicas_consistent(sdb)
        sdb.assert_replica_groups_consistent()
