"""The SQL source-codegen rung: generation, dumping, determinism.

Bit-identical *behavior* is covered by the differential suites
(test_sql_exec_equivalence, test_shard_equivalence, test_sql_property);
this file covers the generator itself -- deterministic text, the
planner's join-strategy / batch metadata, the hybrid hash join's
size-dependent strategy resolution, and the ``REPRO_DUMP_CODEGEN`` /
``--dump-codegen`` debugging dumps round-tripping through ``compile``.
"""

import os

import pytest

from repro.core import codegen as core_codegen
from repro.db import Database, connect
from repro.db.sql.codegen_plan import (
    HASH_JOIN_MIN_ROWS,
    HASH_JOIN_SPILL_ROWS,
    compile_plan_source,
    generate_plan_source,
    maybe_compile_plan_source,
)
from repro.db.sql.parser import parse
from repro.db.sql.planner import Planner


def _join_db(inner_rows):
    db = Database("j")
    db.create_table("o", [("oid", "int"), ("k", "int")],
                    primary_key=("oid",))
    db.create_table("l", [("lid", "int"), ("ok", "int"), ("v", "int")],
                    primary_key=("lid",))
    conn = connect(db, sql_exec="tree")
    for i in range(30):
        conn.execute("INSERT INTO o (oid, k) VALUES (?, ?)", i, i % 10)
    for i in range(inner_rows):
        conn.execute("INSERT INTO l (lid, ok, v) VALUES (?, ?, ?)",
                     i, i % 10, i)
    return db


JOIN_SQL = ("SELECT o.oid, l.v FROM o JOIN l ON o.k = l.ok "
            "WHERE l.v < 50 ORDER BY o.oid, l.v")


def _plan(db, sql):
    return Planner(db).plan(parse(sql))


class TestPlannerMetadata:
    def test_join_strategy_recorded_statically(self):
        db = _join_db(8)
        plan = _plan(db, JOIN_SQL)
        assert [(t.binding, t.join_strategy) for t in plan.tables] == [
            ("o", "driver"), ("l", "hash_scan"),
        ]

    def test_single_table_batch_eligible(self):
        db = _join_db(8)
        assert _plan(db, "SELECT v FROM l WHERE v > 2").batch_eligible
        # Point lookups and aggregates are not batch shapes.
        assert not _plan(db, "SELECT v FROM l WHERE lid = 1").batch_eligible
        assert not _plan(db, "SELECT COUNT(*) FROM l").batch_eligible
        assert not _plan(db, JOIN_SQL).batch_eligible


class TestHybridHashJoin:
    @pytest.mark.parametrize("inner_rows,expected", [
        (HASH_JOIN_MIN_ROWS - 8, "scan"),          # tiny: nested scan
        (200, "hash_scan"),                        # in-memory hash build
        (HASH_JOIN_SPILL_ROWS + 904, "hash_scan_spill"),  # partitioned
    ])
    def test_strategy_resolves_on_inner_size(self, inner_rows, expected):
        db = _join_db(inner_rows)
        source = compile_plan_source(_plan(db, JOIN_SQL), db)
        assert dict(source.join_meta)["l"] == expected
        assert dict(source.join_meta)["o"] == "driver"

    @pytest.mark.parametrize("inner_rows", [8, 200, 5000])
    def test_all_strategies_match_tree(self, inner_rows):
        from repro.db.sql.executor import Executor

        db = _join_db(inner_rows)
        plan = _plan(db, JOIN_SQL)
        tree = Executor(db).execute(plan, (), None)
        src = compile_plan_source(plan, db).run((), None)
        assert src.rows == tree.rows
        assert src.rows_touched == tree.rows_touched
        assert src.columns == tree.columns


class TestDeterminism:
    def test_regenerating_a_plan_is_byte_identical(self):
        db = _join_db(200)
        for sql in (
            JOIN_SQL,
            "SELECT v FROM l WHERE v > ? ORDER BY v",
            "SELECT COUNT(*), SUM(v) FROM l",
            "INSERT INTO l (lid, ok, v) VALUES (?, ?, ?)",
            "UPDATE l SET v = v + 1 WHERE lid = ?",
            "DELETE FROM l WHERE lid = ?",
        ):
            first = generate_plan_source(_plan(db, sql), db)[0]
            second = generate_plan_source(_plan(db, sql), db)[0]
            assert first == second, sql

    def test_identically_built_databases_generate_identical_source(self):
        # Two separately-seeded but identical databases must produce the
        # same module text (the CI determinism check relies on this).
        a, b = _join_db(200), _join_db(200)
        text_a = generate_plan_source(_plan(a, JOIN_SQL), a)[0]
        text_b = generate_plan_source(_plan(b, JOIN_SQL), b)[0]
        assert text_a == text_b


class TestDumping:
    @pytest.fixture(autouse=True)
    def _clear_dump_override(self):
        yield
        core_codegen.set_dump_dir(None)

    def test_env_var_dump_round_trips_through_compile(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(core_codegen.DUMP_ENV_VAR, str(tmp_path))
        db = _join_db(200)
        source = maybe_compile_plan_source(_plan(db, JOIN_SQL), db)
        assert source is not None
        dumped = list(tmp_path.iterdir())
        assert len(dumped) == 1
        path = dumped[0]
        # Stable name: <kind>_<slug>_<sha12>.py from the full text.
        assert path.name == core_codegen.dump_filename(
            "plan", f"{source.kind}_{source.table_names[0]}", source.source
        )
        text = path.read_text(encoding="utf-8")
        assert text == source.source
        compile(text, str(path), "exec")  # round-trips: valid Python

    def test_set_dump_dir_overrides_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(core_codegen.DUMP_ENV_VAR,
                           str(tmp_path / "ignored"))
        override = tmp_path / "override"
        core_codegen.set_dump_dir(str(override))
        db = _join_db(8)
        assert maybe_compile_plan_source(
            _plan(db, "SELECT v FROM l WHERE v > ?"), db
        ) is not None
        assert override.is_dir() and len(list(override.iterdir())) == 1
        assert not (tmp_path / "ignored").exists()

    def test_block_codegen_dumps_too(self, tmp_path, monkeypatch):
        """The runtime rung shares the dump knob: generated superblock
        modules land in the same directory and re-compile cleanly."""
        from repro.core.pipeline import Pyxis
        from repro.profiler.profile_data import ProfileData
        from repro.runtime.codegen_blocks import ensure_program_source
        from repro.sim.cluster import Cluster
        from repro.workloads.micro import (
            LINKED_LIST_ENTRY_POINTS,
            LINKED_LIST_SOURCE,
        )

        monkeypatch.setenv(core_codegen.DUMP_ENV_VAR, str(tmp_path))
        pyx = Pyxis.from_source(LINKED_LIST_SOURCE, LINKED_LIST_ENTRY_POINTS)
        part = pyx.partition(ProfileData(), budgets=[1e9]).by_budget()[0]
        program = ensure_program_source(
            part.compiled, Cluster().app.cost_model
        )
        dumped = [p for p in tmp_path.iterdir()
                  if p.name.startswith("blocks_")]
        assert len(dumped) == 1
        text = dumped[0].read_text(encoding="utf-8")
        assert text == program.text
        compile(text, str(dumped[0]), "exec")
