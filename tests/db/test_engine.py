"""Storage engine: tables, index maintenance, undo."""

import pytest

from repro.db.catalog import IndexSpec
from repro.db.engine import Database
from repro.db.errors import ExecutionError, IntegrityError, UnknownTableError


@pytest.fixture()
def db():
    database = Database()
    database.create_table(
        "emp",
        [("id", "int", False), ("dept", "text"), ("salary", "float")],
        primary_key=["id"],
        indexes=[
            IndexSpec("emp_by_dept", ("dept",)),
            IndexSpec("emp_by_salary", ("salary",), ordered=True),
        ],
    )
    return database


class TestTableBasics:
    def test_insert_and_get(self, db):
        table = db.table("emp")
        rowid, _ = table.insert((1, "eng", 100.0))
        assert table.get(rowid) == (1, "eng", 100.0)
        assert len(table) == 1

    def test_duplicate_pk_rejected(self, db):
        table = db.table("emp")
        table.insert((1, "eng", 100.0))
        with pytest.raises(IntegrityError):
            table.insert((1, "sales", 90.0))

    def test_null_pk_rejected(self, db):
        table = db.table("emp")
        with pytest.raises(IntegrityError):
            table.insert((None, "eng", 1.0))

    def test_pk_lookup(self, db):
        table = db.table("emp")
        rowid, _ = table.insert((7, "eng", 100.0))
        assert table.lookup_pk((7,)) == rowid
        assert table.lookup_pk((8,)) is None

    def test_get_missing_row(self, db):
        with pytest.raises(ExecutionError):
            db.table("emp").get(999)

    def test_scan_in_insertion_order(self, db):
        table = db.table("emp")
        for i in (3, 1, 2):
            table.insert((i, "x", float(i)))
        assert [row[0] for _, row in table.scan()] == [3, 1, 2]


class TestIndexMaintenance:
    def test_secondary_index_updated_on_insert(self, db):
        table = db.table("emp")
        rowid, _ = table.insert((1, "eng", 100.0))
        assert table.secondary["emp_by_dept"].lookup(("eng",)) == {rowid}

    def test_secondary_index_updated_on_update(self, db):
        table = db.table("emp")
        rowid, _ = table.insert((1, "eng", 100.0))
        table.update(rowid, {"dept": "sales"})
        assert table.secondary["emp_by_dept"].lookup(("eng",)) == frozenset()
        assert table.secondary["emp_by_dept"].lookup(("sales",)) == {rowid}

    def test_secondary_index_updated_on_delete(self, db):
        table = db.table("emp")
        rowid, _ = table.insert((1, "eng", 100.0))
        table.delete(rowid)
        assert table.secondary["emp_by_dept"].lookup(("eng",)) == frozenset()

    def test_pk_change_via_update(self, db):
        table = db.table("emp")
        rowid, _ = table.insert((1, "eng", 100.0))
        table.update(rowid, {"id": 2})
        assert table.lookup_pk((1,)) is None
        assert table.lookup_pk((2,)) == rowid

    def test_pk_update_conflict_rejected(self, db):
        table = db.table("emp")
        table.insert((1, "eng", 100.0))
        rowid, _ = table.insert((2, "eng", 100.0))
        with pytest.raises(IntegrityError):
            table.update(rowid, {"id": 1})

    def test_create_index_backfills(self, db):
        table = db.table("emp")
        rowid, _ = table.insert((1, "eng", 100.0))
        table.create_index(IndexSpec("emp_by_id2", ("id",)))
        assert table.secondary["emp_by_id2"].lookup((1,)) == {rowid}

    def test_duplicate_index_name_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.table("emp").create_index(IndexSpec("emp_by_dept", ("dept",)))

    def test_failed_insert_leaves_indexes_clean(self, db):
        # Unique secondary index: second insert with same dept must fail
        # atomically, leaving no trace of the attempted row.
        database = Database()
        database.create_table(
            "u",
            [("id", "int", False), ("email", "text")],
            primary_key=["id"],
            indexes=[IndexSpec("u_email", ("email",), unique=True)],
        )
        table = database.table("u")
        table.insert((1, "a@x"))
        with pytest.raises(IntegrityError):
            table.insert((2, "a@x"))
        assert len(table) == 1
        assert table.lookup_pk((2,)) is None


class TestUndo:
    def test_undo_insert(self, db):
        table = db.table("emp")
        rowid, undo = table.insert((1, "eng", 100.0))
        table.undo(undo)
        assert len(table) == 0
        assert table.lookup_pk((1,)) is None

    def test_undo_delete(self, db):
        table = db.table("emp")
        rowid, _ = table.insert((1, "eng", 100.0))
        undo = table.delete(rowid)
        table.undo(undo)
        assert table.get(rowid) == (1, "eng", 100.0)
        assert table.secondary["emp_by_dept"].lookup(("eng",)) == {rowid}

    def test_undo_update(self, db):
        table = db.table("emp")
        rowid, _ = table.insert((1, "eng", 100.0))
        undo = table.update(rowid, {"salary": 200.0, "dept": "sales"})
        table.undo(undo)
        assert table.get(rowid) == (1, "eng", 100.0)
        assert table.secondary["emp_by_dept"].lookup(("eng",)) == {rowid}

    def test_undo_sequence_restores_original(self, db):
        table = db.table("emp")
        undos = []
        rowid, undo = table.insert((1, "eng", 100.0))
        undos.append(undo)
        undos.append(table.update(rowid, {"salary": 150.0}))
        rowid2, undo2 = table.insert((2, "sales", 90.0))
        undos.append(undo2)
        undos.append(table.delete(rowid))
        for undo in reversed(undos):
            table.undo(undo)
        assert len(table) == 0


class TestDatabase:
    def test_unknown_table(self, db):
        with pytest.raises(UnknownTableError):
            db.table("nope")

    def test_drop_table(self, db):
        db.drop_table("emp")
        assert not db.has_table("emp")

    def test_total_rows(self, db):
        db.table("emp").insert((1, "a", 1.0))
        db.table("emp").insert((2, "b", 2.0))
        assert db.total_rows() == 2

    def test_observer_notified(self, db):
        events = []
        db.observer = lambda op, table, rows: events.append((op, table, rows))
        db.notify("select", "emp", 3)
        assert events == [("select", "emp", 3)]

    def test_truncate(self, db):
        table = db.table("emp")
        table.insert((1, "a", 1.0))
        table.truncate()
        assert len(table) == 0
        assert table.lookup_pk((1,)) is None
