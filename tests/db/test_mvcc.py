"""MVCC snapshot isolation: visibility, read-only rules, GC, and the
serial-schedule differential oracle across all three execution rungs."""

import pytest

from repro.db import Database, LockManager, connect
from repro.db.errors import TransactionError
from repro.db.sql.compile_plan import SQL_EXEC_MODES


def make_db():
    db = Database()
    db.create_table(
        "acct",
        [("id", "int", False), ("owner", "text"), ("bal", "float")],
        primary_key=["id"],
    )
    conn = connect(db, sql_exec="tree")
    for i in range(1, 6):
        conn.execute(
            "INSERT INTO acct (id, owner, bal) VALUES (?, ?, ?)",
            i, f"owner{i % 2}", 100.0 * i,
        )
    return db


class TestSnapshotVisibility:
    @pytest.mark.parametrize("mode", SQL_EXEC_MODES)
    def test_reader_pins_pre_update_state(self, mode):
        db = make_db()
        lm = LockManager()
        writer = connect(db, lm, sql_exec=mode)
        reader = connect(db, lm, sql_exec=mode)
        reader.begin(snapshot=True)
        before = [r.as_tuple() for r in reader.query(
            "SELECT id, bal FROM acct ORDER BY id")]
        writer.execute("UPDATE acct SET bal = 0.0 WHERE id = 2")
        # Committed after the pin: still invisible to the snapshot.
        assert [r.as_tuple() for r in reader.query(
            "SELECT id, bal FROM acct ORDER BY id")] == before
        reader.commit()
        fresh = connect(db, lm, sql_exec=mode)
        fresh.begin(snapshot=True)
        assert fresh.query_scalar(
            "SELECT bal FROM acct WHERE id = 2") == 0.0
        fresh.commit()

    @pytest.mark.parametrize("mode", SQL_EXEC_MODES)
    def test_reader_never_sees_uncommitted_writes(self, mode):
        db = make_db()
        lm = LockManager()
        writer = connect(db, lm, sql_exec=mode)
        reader = connect(db, lm, sql_exec=mode)
        reader.begin(snapshot=True)
        writer.begin()
        writer.execute("UPDATE acct SET bal = -1.0 WHERE id = 1")
        writer.execute("INSERT INTO acct (id, owner, bal) "
                       "VALUES (9, 'x', 9.0)")
        writer.execute("DELETE FROM acct WHERE id = 5")
        rows = [r.as_tuple() for r in reader.query(
            "SELECT id, bal FROM acct ORDER BY id")]
        assert rows == [(1, 100.0), (2, 200.0), (3, 300.0),
                        (4, 400.0), (5, 500.0)]
        writer.commit()
        # Still the pinned snapshot after the writer commits.
        assert [r.as_tuple() for r in reader.query(
            "SELECT id, bal FROM acct ORDER BY id")] == rows
        reader.commit()

    @pytest.mark.parametrize("mode", SQL_EXEC_MODES)
    def test_snapshot_sees_deletes_and_inserts_consistently(self, mode):
        db = make_db()
        lm = LockManager()
        writer = connect(db, lm, sql_exec=mode)
        reader = connect(db, lm, sql_exec=mode)
        writer.execute("DELETE FROM acct WHERE id = 3")
        reader.begin(snapshot=True)
        writer.execute("INSERT INTO acct (id, owner, bal) "
                       "VALUES (3, 'back', 3.0)")
        ids = [r[0] for r in reader.query("SELECT id FROM acct ORDER BY id")]
        assert ids == [1, 2, 4, 5]
        reader.commit()

    def test_two_snapshots_see_their_own_epochs(self):
        db = make_db()
        lm = LockManager()
        writer = connect(db, lm)
        r1 = connect(db, lm)
        r1.begin(snapshot=True)
        writer.execute("UPDATE acct SET bal = 1.0 WHERE id = 1")
        r2 = connect(db, lm)
        r2.begin(snapshot=True)
        writer.execute("UPDATE acct SET bal = 2.0 WHERE id = 1")
        assert r1.query_scalar("SELECT bal FROM acct WHERE id = 1") == 100.0
        assert r2.query_scalar("SELECT bal FROM acct WHERE id = 1") == 1.0
        assert writer.query_scalar(
            "SELECT bal FROM acct WHERE id = 1") == 2.0
        r1.commit()
        r2.commit()

    def test_snapshot_aggregates_over_old_epoch(self):
        db = make_db()
        lm = LockManager()
        writer = connect(db, lm)
        reader = connect(db, lm)
        reader.begin(snapshot=True)
        total = reader.query_scalar("SELECT SUM(bal) FROM acct")
        writer.execute("UPDATE acct SET bal = bal + 1000.0 WHERE id > 0")
        assert reader.query_scalar("SELECT SUM(bal) FROM acct") == total
        reader.commit()


class TestSnapshotRules:
    def test_snapshot_txn_rejects_mutations(self):
        db = make_db()
        conn = connect(db, LockManager())
        conn.begin(snapshot=True)
        with pytest.raises(TransactionError):
            conn.execute("UPDATE acct SET bal = 0.0 WHERE id = 1")
        conn.rollback()

    def test_snapshot_reader_takes_no_locks_and_never_blocks(self):
        db = make_db()
        lm = LockManager()
        reader = connect(db, lm)
        writer = connect(db, lm)
        txn = reader.begin(snapshot=True)
        reader.query("SELECT id FROM acct ORDER BY id")
        assert not lm.held_by(txn.id)
        # A writer is free to take X locks the reader would conflict
        # with under 2PL.
        writer.begin()
        writer.execute("UPDATE acct SET bal = 0.0 WHERE id = 1")
        reader.query("SELECT id FROM acct ORDER BY id")
        assert not lm.held_by(txn.id)
        writer.commit()
        reader.commit()

    def test_writer_rollback_restores_snapshot_fast_path(self):
        db = make_db()
        lm = LockManager()
        reader = connect(db, lm)
        writer = connect(db, lm)
        reader.begin(snapshot=True)
        writer.begin()
        writer.execute("UPDATE acct SET bal = -5.0 WHERE id = 4")
        assert reader.query_scalar(
            "SELECT bal FROM acct WHERE id = 4") == 400.0
        writer.rollback()
        assert reader.query_scalar(
            "SELECT bal FROM acct WHERE id = 4") == 400.0
        reader.commit()


class TestVersionGc:
    def test_history_only_retained_while_pinned(self):
        db = make_db()
        lm = LockManager()
        writer = connect(db, lm)
        mvcc = db.enable_mvcc()
        writer.execute("UPDATE acct SET bal = 1.0 WHERE id = 1")
        assert mvcc.version_entries() == 0  # no pins: nothing retained
        reader = connect(db, lm)
        reader.begin(snapshot=True)
        writer.execute("UPDATE acct SET bal = 2.0 WHERE id = 1")
        assert mvcc.version_entries() > 0
        reader.commit()
        assert mvcc.version_entries() == 0  # unpin is the GC watermark

    def test_gc_watermark_is_oldest_pin(self):
        db = make_db()
        lm = LockManager()
        writer = connect(db, lm)
        mvcc = db.enable_mvcc()
        r1 = connect(db, lm)
        r1.begin(snapshot=True)
        writer.execute("UPDATE acct SET bal = 1.0 WHERE id = 1")
        r2 = connect(db, lm)
        r2.begin(snapshot=True)
        writer.execute("UPDATE acct SET bal = 2.0 WHERE id = 1")
        assert mvcc.version_entries() == 2
        r1.commit()  # r2 still pins the newer snapshot
        assert mvcc.version_entries() == 1
        assert r2.query_scalar("SELECT bal FROM acct WHERE id = 1") == 1.0
        r2.commit()
        assert mvcc.version_entries() == 0


class TestSerialDifferential:
    """Under a serial schedule the MVCC engine must be bit-identical
    to the lock-based engine, in every execution rung."""

    QUERIES = [
        ("SELECT id, owner, bal FROM acct ORDER BY id", ()),
        ("SELECT owner, COUNT(*), SUM(bal) FROM acct GROUP BY owner "
         "ORDER BY owner", ()),
        ("SELECT bal FROM acct WHERE id = ?", (3,)),
        ("SELECT id FROM acct WHERE bal > ? ORDER BY bal DESC", (150.0,)),
    ]

    @pytest.mark.parametrize("mode", SQL_EXEC_MODES)
    def test_serial_schedule_bit_identical(self, mode):
        results = {}
        for variant in ("locked", "snapshot"):
            db = make_db()
            lm = LockManager()
            conn = connect(db, lm, sql_exec=mode)
            conn.execute("UPDATE acct SET bal = bal * 2 WHERE owner = ?",
                         "owner1")
            conn.execute("INSERT INTO acct (id, owner, bal) "
                         "VALUES (7, 'owner0', 70.0)")
            if variant == "snapshot":
                conn.begin(snapshot=True)
            else:
                conn.begin()
            collected = []
            for sql, params in self.QUERIES:
                rs = conn.query(sql, *params)
                collected.append(
                    (list(rs.columns), [r.as_tuple() for r in rs])
                )
            conn.commit()
            results[variant] = collected
        assert results["locked"] == results["snapshot"]

    @pytest.mark.parametrize("mode", SQL_EXEC_MODES)
    def test_divergent_snapshot_matches_tree_oracle(self, mode):
        """Once the snapshot diverges from the live state, every rung
        must reconstruct the same rows as the tree rung."""
        per_mode = {}
        for run_mode in ("tree", mode):
            db = make_db()
            lm = LockManager()
            writer = connect(db, lm, sql_exec=run_mode)
            reader = connect(db, lm, sql_exec=run_mode)
            reader.begin(snapshot=True)
            writer.execute("UPDATE acct SET bal = 0.0 WHERE id <= 2")
            writer.execute("DELETE FROM acct WHERE id = 4")
            collected = []
            for sql, params in TestSerialDifferential.QUERIES:
                rs = reader.query(sql, *params)
                collected.append(
                    (list(rs.columns), [r.as_tuple() for r in rs])
                )
            reader.commit()
            per_mode[run_mode] = collected
        assert per_mode["tree"] == per_mode[mode]
