"""Crash-restart recovery: checkpoint + redo replay vs live state.

The contract under test: kill a WAL-attached deployment at any
statement boundary (including between 2PC prepare and commit) and
:func:`repro.db.recovery.recover` rebuilds state bit-identical to an
uninjected oracle -- same rows in the same scan order, same rowid
allocator positions, same in-doubt resolution.  Damage below the
checkpoint low-water mark must not block recovery; damage above it
must fail fast with the offending LSN quoted.
"""

import random

import pytest

from repro.db import (
    Database,
    ShardedDatabase,
    ShardingScheme,
    TableSharding,
    TwoPhaseAbortError,
    attach_wal,
    connect,
    connect_sharded,
    recover,
    recover_database,
    recover_sharded,
)
from repro.db.errors import WalCorruptionError
from repro.db.wal import scan_wal

MODES = ("tree", "compiled", "source")


# ---------------------------------------------------------------------------
# State fingerprints
# ---------------------------------------------------------------------------


def _db_state(db: Database) -> dict:
    """Rows in scan order + rowid allocator position, per table."""
    state = {}
    for table in db.tables():
        table.ensure_scan_order()
        state[table.schema.name] = (
            list(table.scan()), table._next_rowid.peek()  # noqa: SLF001
        )
    return state


def _sdb_state(sdb: ShardedDatabase) -> list:
    return [_db_state(shard) for shard in sdb.shards]


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------


def make_kv_db(rows=((1, 10), (2, 20))) -> Database:
    db = Database("single")
    db.create_table(
        "kv", [("k", "int", False), ("v", "int")], primary_key=["k"]
    )
    for row in rows:
        db.table("kv").insert(row)
    return db


def make_kv_sdb(shards: int = 2, replicas: int = 0) -> ShardedDatabase:
    sdb = ShardedDatabase(
        "r",
        shards=shards,
        scheme=ShardingScheme(
            {"kv": TableSharding(columns=("k",), strategy="mod")}
        ),
        replicas=replicas,
    )
    sdb.create_table(
        "kv", [("k", "int", False), ("v", "int")], primary_key=["k"]
    )
    for k in range(8):
        sdb.insert("kv", (k, 10 * k))
    return sdb


# ---------------------------------------------------------------------------
# Single database
# ---------------------------------------------------------------------------


class TestSingleDatabase:
    def test_round_trip_bit_identical(self, tmp_path):
        db = make_kv_db()
        manager = attach_wal(db, tmp_path)
        conn = connect(db)
        conn.execute("INSERT INTO kv (k, v) VALUES (?, ?)", 3, 30)
        conn.execute("UPDATE kv SET v = ? WHERE k = ?", 99, 1)
        conn.execute("DELETE FROM kv WHERE k = ?", 2)
        manager.close()
        recovered, report = recover_database(tmp_path)
        assert _db_state(recovered) == _db_state(db)
        assert report.commits_applied == 3
        assert report.shard_reports[0].checkpoint_rows == 2
        assert report.epoch == 1 and report.shards == 1

    def test_empty_wal_restart(self, tmp_path):
        db = make_kv_db(rows=())
        manager = attach_wal(db, tmp_path)
        manager.close()
        recovered, report = recover_database(tmp_path)
        assert _db_state(recovered) == _db_state(db)
        assert report.commits_applied == 0
        # The recovered database restarts cleanly: re-attach + write.
        again = attach_wal(recovered, tmp_path)
        connect(recovered).execute(
            "INSERT INTO kv (k, v) VALUES (?, ?)", 1, 10
        )
        again.close()
        final, _ = recover_database(tmp_path)
        assert _db_state(final) == _db_state(recovered)

    def test_crash_during_checkpoint_leaves_stale_tmp(self, tmp_path):
        db = make_kv_db()
        manager = attach_wal(db, tmp_path)
        connect(db).execute("INSERT INTO kv (k, v) VALUES (?, ?)", 3, 30)
        # Crash mid-checkpoint: half-written temp, old checkpoint intact.
        (tmp_path / "shard0.ckpt.tmp").write_text('{"lsn": 999, "tab')
        manager.close()
        recovered, report = recover_database(tmp_path)
        assert _db_state(recovered) == _db_state(db)
        assert report.commits_applied == 1

    def test_torn_final_frame_recovers_durable_prefix(self, tmp_path):
        db = make_kv_db()
        manager = attach_wal(db, tmp_path)
        connect(db).execute("INSERT INTO kv (k, v) VALUES (?, ?)", 3, 30)
        manager.wals[0].inject_torn_write()
        manager.close()
        recovered, report = recover_database(tmp_path)
        assert _db_state(recovered) == _db_state(db)
        assert report.shard_reports[0].torn_tail

    def test_corrupt_frame_past_checkpoint_fails_fast(self, tmp_path):
        db = make_kv_db()
        manager = attach_wal(db, tmp_path)
        conn = connect(db)
        conn.execute("INSERT INTO kv (k, v) VALUES (?, ?)", 3, 30)
        conn.execute("INSERT INTO kv (k, v) VALUES (?, ?)", 4, 40)
        corrupted = manager.wals[0].inject_corruption()
        manager.close()
        with pytest.raises(WalCorruptionError) as err:
            recover_database(tmp_path)
        assert f"LSN {corrupted}" in str(err.value)

    def test_corrupt_frame_covered_by_checkpoint_is_skipped(self, tmp_path):
        db = make_kv_db()
        manager = attach_wal(db, tmp_path)
        conn = connect(db)
        conn.execute("INSERT INTO kv (k, v) VALUES (?, ?)", 3, 30)
        # Checkpoint covers the insert; keep its frame for the fault.
        manager.checkpoint([db], truncate=False)
        conn.execute("INSERT INTO kv (k, v) VALUES (?, ?)", 4, 40)
        covered_lsn = scan_wal(manager.wals[0].path).frames[0].lsn
        assert covered_lsn <= manager.wals[0].read_checkpoint()["lsn"]
        assert manager.wals[0].inject_corruption(covered_lsn) == covered_lsn
        manager.close()
        recovered, report = recover_database(tmp_path)
        assert _db_state(recovered) == _db_state(db)
        assert report.shard_reports[0].frames_skipped >= 1

    def test_rowid_allocation_resumes_identically(self, tmp_path):
        db = make_kv_db()
        manager = attach_wal(db, tmp_path)
        conn = connect(db)
        conn.execute("INSERT INTO kv (k, v) VALUES (?, ?)", 3, 30)
        conn.execute("DELETE FROM kv WHERE k = ?", 3)  # burns rowid 3
        manager.close()
        recovered, _ = recover_database(tmp_path)
        db.redo_collector = None  # detach the closed log
        connect(db).execute("INSERT INTO kv (k, v) VALUES (?, ?)", 5, 50)
        connect(recovered).execute(
            "INSERT INTO kv (k, v) VALUES (?, ?)", 5, 50
        )
        assert _db_state(recovered) == _db_state(db)


# ---------------------------------------------------------------------------
# Sharded tier
# ---------------------------------------------------------------------------


class TestShardedRecovery:
    def test_round_trip_with_cross_shard_txn(self, tmp_path):
        sdb = make_kv_sdb()
        manager = attach_wal(sdb, tmp_path)
        conn = connect_sharded(sdb)
        conn.execute("UPDATE kv SET v = ? WHERE k = ?", 111, 1)
        conn.begin()
        conn.execute("UPDATE kv SET v = v + ? WHERE k = ?", 1, 2)  # shard 0
        conn.execute("UPDATE kv SET v = v + ? WHERE k = ?", 1, 3)  # shard 1
        conn.commit()
        manager.close()
        recovered, report = recover_sharded(tmp_path)
        assert _sdb_state(recovered) == _sdb_state(sdb)
        assert report.decisions == 1
        assert sum(r.resolves_applied for r in report.shard_reports) == 2

    def test_recover_dispatches_on_meta(self, tmp_path):
        single_db = make_kv_db()
        attach_wal(single_db, tmp_path / "single").close()
        sdb = make_kv_sdb()
        attach_wal(sdb, tmp_path / "sharded").close()
        single_rec, _ = recover(tmp_path / "single")
        sharded_rec, _ = recover(tmp_path / "sharded")
        assert isinstance(single_rec, Database)
        assert isinstance(sharded_rec, ShardedDatabase)
        assert sharded_rec.n_shards == 2

    def test_replicas_reseeded_from_recovered_primaries(self, tmp_path):
        sdb = make_kv_sdb(replicas=1)
        manager = attach_wal(sdb, tmp_path)
        connect_sharded(sdb).execute(
            "UPDATE kv SET v = ? WHERE k = ?", 777, 4
        )
        manager.close()
        recovered, report = recover_sharded(tmp_path)
        assert report.replicas == 1
        assert _sdb_state(recovered) == _sdb_state(sdb)
        recovered.assert_replica_groups_consistent()
        for group in recovered.groups:
            for replica in group.replicas:
                assert (
                    list(replica.database.table("kv").scan())
                    == list(group.primary.table("kv").scan())
                )


class TestTwoPhaseInDoubt:
    def _prepared_txn(self, tmp_path):
        """A cross-shard transaction held in the prepared window."""
        sdb = make_kv_sdb()
        manager = attach_wal(sdb, tmp_path)
        oracle = _sdb_state(sdb)  # state if the txn aborts
        conn = connect_sharded(sdb)
        txn = conn.begin()
        conn.execute("UPDATE kv SET v = ? WHERE k = ?", -1, 0)  # shard 0
        conn.execute("UPDATE kv SET v = ? WHERE k = ?", -1, 1)  # shard 1
        txn.prepare()
        return sdb, manager, txn, oracle

    def test_crash_between_prepare_and_decision_presumes_abort(
        self, tmp_path
    ):
        sdb, manager, txn, oracle = self._prepared_txn(tmp_path)
        manager.close()  # crash: no decision record was forced
        recovered, report = recover_sharded(tmp_path)
        assert _sdb_state(recovered) == oracle
        assert report.in_doubt_aborted == [txn.gtid]
        assert report.in_doubt_committed == []

    def test_crash_after_durable_decision_applies_prepares(self, tmp_path):
        sdb, manager, txn, _ = self._prepared_txn(tmp_path)
        # The commit point happened, then the crash hit before any
        # branch commit: recovery must finish the transaction.
        assert manager.coordinator.log_commit(
            txn.gtid, txn._wal_prepared_shards  # noqa: SLF001
        )
        manager.close()
        recovered, report = recover_sharded(tmp_path)
        assert report.in_doubt_committed == [txn.gtid]
        rows = dict(
            row for _, row in recovered.logical_rows("kv").items()
        )
        assert rows[0] == -1 and rows[1] == -1

    def test_undurable_decision_aborts_the_live_coordinator(self, tmp_path):
        sdb = make_kv_sdb()
        manager = attach_wal(sdb, tmp_path)
        oracle = _sdb_state(sdb)
        manager.coordinator.fsync_fail = True
        conn = connect_sharded(sdb)
        conn.begin()
        conn.execute("UPDATE kv SET v = ? WHERE k = ?", -1, 0)
        conn.execute("UPDATE kv SET v = ? WHERE k = ?", -1, 1)
        with pytest.raises(TwoPhaseAbortError):
            conn.commit()
        assert _sdb_state(sdb) == oracle  # live rollback happened
        manager.close()
        recovered, report = recover_sharded(tmp_path)
        assert _sdb_state(recovered) == oracle
        assert report.in_doubt_committed == []


# ---------------------------------------------------------------------------
# Differential kill harness: TPC-C prefixes across the three rungs
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("sql_exec", MODES)
class TestTpccKillPoints:
    """Kill a WAL-attached sharded TPC-C run at seeded random statement
    boundaries; recovery must match an uninjected oracle bit for bit
    under every execution rung (tree / compiled / source)."""

    SHARDS = 3

    def _deployments(self, sql_exec):
        from repro.workloads.tpcc import (
            TpccScale,
            make_tpcc_database,
            new_order_statement_script,
            tpcc_sharding_scheme,
        )

        scale = TpccScale(
            warehouses=3, customers_per_district=20, items=120
        )
        scheme = tpcc_sharding_scheme("warehouse")
        script = new_order_statement_script(
            scale, transactions=6, seed=3
        )
        oracle_src, _ = make_tpcc_database(scale)
        victim_src, _ = make_tpcc_database(scale)
        oracle = ShardedDatabase.from_database(
            oracle_src, self.SHARDS, scheme
        )
        victim = ShardedDatabase.from_database(
            victim_src, self.SHARDS, scheme
        )
        return oracle, victim, script

    def test_recovery_matches_oracle_at_random_kill_points(
        self, tmp_path, sql_exec
    ):
        oracle, victim, script = self._deployments(sql_exec)
        rng = random.Random(1000 + MODES.index(sql_exec))
        kill_at = rng.randrange(1, len(script))
        wal_dir = tmp_path / "wal"
        manager = attach_wal(victim, wal_dir)
        oracle_conn = connect_sharded(oracle, sql_exec=sql_exec)
        victim_conn = connect_sharded(victim, sql_exec=sql_exec)
        for sql, params in script[:kill_at]:
            prepared = oracle_conn.prepare(sql)
            got_oracle = (
                list(prepared.query(*params).rows)
                if prepared.is_query else prepared.update(*params)
            )
            prepared = victim_conn.prepare(sql)
            got_victim = (
                list(prepared.query(*params).rows)
                if prepared.is_query else prepared.update(*params)
            )
            if not prepared.is_query:
                assert got_oracle == got_victim, sql
        # Crash mid-append of the next, never-acknowledged frame.
        manager.wals[kill_at % self.SHARDS].inject_torn_write()
        manager.close()
        recovered, report = recover_sharded(wal_dir)
        assert _sdb_state(recovered) == _sdb_state(oracle), (
            f"recovery diverged at kill point {kill_at} ({sql_exec})"
        )
        assert report.commits_applied > 0

    def test_recovered_cluster_continues_identically(
        self, tmp_path, sql_exec
    ):
        oracle, victim, script = self._deployments(sql_exec)
        split = len(script) // 2
        manager = attach_wal(victim, tmp_path)
        oracle_conn = connect_sharded(oracle, sql_exec=sql_exec)
        victim_conn = connect_sharded(victim, sql_exec=sql_exec)
        for sql, params in script[:split]:
            for conn in (oracle_conn, victim_conn):
                prepared = conn.prepare(sql)
                if prepared.is_query:
                    prepared.query(*params)
                else:
                    prepared.update(*params)
        manager.close()
        recovered, _ = recover_sharded(tmp_path)
        # The tail of the script runs on the recovered cluster and the
        # untouched oracle; rowid allocation and scan order must agree.
        recovered_conn = connect_sharded(recovered, sql_exec=sql_exec)
        for sql, params in script[split:]:
            for conn in (oracle_conn, recovered_conn):
                prepared = conn.prepare(sql)
                if prepared.is_query:
                    prepared.query(*params)
                else:
                    prepared.update(*params)
        assert _sdb_state(recovered) == _sdb_state(oracle)
