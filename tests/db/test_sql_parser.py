"""SQL parser."""

import pytest

from repro.db.errors import SqlSyntaxError
from repro.db.sql.ast import (
    Between,
    BinaryOp,
    ColumnRef,
    Delete,
    FuncCall,
    InList,
    Insert,
    IsNull,
    Literal,
    Parameter,
    Select,
    UnaryOp,
    Update,
    count_parameters,
)
from repro.db.sql.parser import parse


class TestSelect:
    def test_star(self):
        stmt = parse("SELECT * FROM t")
        assert isinstance(stmt, Select)
        assert stmt.items[0].star

    def test_column_list_with_aliases(self):
        stmt = parse("SELECT a, b AS bee, c cee FROM t")
        assert stmt.items[1].alias == "bee"
        assert stmt.items[2].alias == "cee"

    def test_qualified_columns(self):
        stmt = parse("SELECT t.a FROM t")
        expr = stmt.items[0].expr
        assert isinstance(expr, ColumnRef)
        assert expr.table == "t"

    def test_table_alias(self):
        stmt = parse("SELECT x.a FROM tbl x")
        assert stmt.table.binding == "x"

    def test_where_conjunction(self):
        stmt = parse("SELECT a FROM t WHERE a = 1 AND b > 2")
        assert isinstance(stmt.where, BinaryOp)
        assert stmt.where.op == "and"

    def test_where_or_precedence(self):
        stmt = parse("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
        # AND binds tighter than OR.
        assert stmt.where.op == "or"
        assert stmt.where.right.op == "and"

    def test_parameters_numbered_in_order(self):
        stmt = parse("SELECT a FROM t WHERE a = ? AND b = ?")
        params = [
            node
            for node in stmt.where.walk()
            if isinstance(node, Parameter)
        ]
        assert [p.index for p in params] == [0, 1]
        assert count_parameters(stmt) == 2

    def test_join_with_condition(self):
        stmt = parse(
            "SELECT a.x FROM a JOIN b ON a.id = b.a_id WHERE b.y = 1"
        )
        assert len(stmt.joins) == 1
        assert stmt.joins[0].table.name == "b"

    def test_inner_join_keyword(self):
        stmt = parse("SELECT x FROM a INNER JOIN b ON a.i = b.i")
        assert len(stmt.joins) == 1

    def test_group_by(self):
        stmt = parse("SELECT dept, COUNT(*) FROM emp GROUP BY dept")
        assert len(stmt.group_by) == 1
        assert stmt.has_aggregates

    def test_order_by_directions(self):
        stmt = parse("SELECT a FROM t ORDER BY a DESC, b ASC, c")
        assert [o.descending for o in stmt.order_by] == [True, False, False]

    def test_limit(self):
        stmt = parse("SELECT a FROM t LIMIT 10")
        assert isinstance(stmt.limit, Literal)
        assert stmt.limit.value == 10

    def test_for_update(self):
        stmt = parse("SELECT a FROM t WHERE a = 1 FOR UPDATE")
        assert stmt.for_update

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct

    def test_aggregates(self):
        stmt = parse("SELECT COUNT(*), SUM(x), AVG(y) FROM t")
        calls = [item.expr for item in stmt.items]
        assert all(isinstance(c, FuncCall) and c.is_aggregate for c in calls)
        assert calls[0].star

    def test_arithmetic_precedence(self):
        stmt = parse("SELECT a + b * c FROM t")
        expr = stmt.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parenthesized_expression(self):
        stmt = parse("SELECT (a + b) * c FROM t")
        assert stmt.items[0].expr.op == "*"

    def test_unary_minus_folds_literals(self):
        stmt = parse("SELECT a FROM t WHERE a = -5")
        assert stmt.where.right == Literal(-5)

    def test_is_null_and_is_not_null(self):
        stmt = parse("SELECT a FROM t WHERE a IS NULL AND b IS NOT NULL")
        left, right = stmt.where.left, stmt.where.right
        assert isinstance(left, IsNull) and not left.negated
        assert isinstance(right, IsNull) and right.negated

    def test_in_list(self):
        stmt = parse("SELECT a FROM t WHERE a IN (1, 2, 3)")
        assert isinstance(stmt.where, InList)
        assert len(stmt.where.options) == 3

    def test_between(self):
        stmt = parse("SELECT a FROM t WHERE a BETWEEN 1 AND 10")
        assert isinstance(stmt.where, Between)

    def test_not(self):
        stmt = parse("SELECT a FROM t WHERE NOT a = 1")
        assert isinstance(stmt.where, UnaryOp)
        assert stmt.where.op == "not"

    def test_like(self):
        stmt = parse("SELECT a FROM t WHERE name LIKE 'ab%'")
        assert stmt.where.op == "like"


class TestInsert:
    def test_with_columns(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x')")
        assert isinstance(stmt, Insert)
        assert stmt.columns == ("a", "b")
        assert len(stmt.values) == 2

    def test_without_columns(self):
        stmt = parse("INSERT INTO t VALUES (1, 2)")
        assert stmt.columns == ()

    def test_with_parameters(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (?, ?)")
        assert count_parameters(stmt) == 2


class TestUpdate:
    def test_assignments(self):
        stmt = parse("UPDATE t SET a = 1, b = b + 1 WHERE id = ?")
        assert isinstance(stmt, Update)
        assert len(stmt.assignments) == 2
        assert stmt.assignments[1].value.op == "+"

    def test_without_where(self):
        stmt = parse("UPDATE t SET a = 0")
        assert stmt.where is None


class TestDelete:
    def test_with_where(self):
        stmt = parse("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, Delete)
        assert stmt.where is not None

    def test_without_where(self):
        assert parse("DELETE FROM t").where is None


class TestErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "",
            "SELEC a FROM t",
            "SELECT FROM t",
            "SELECT a",
            "SELECT a FROM t WHERE",
            "INSERT INTO t (a VALUES (1)",
            "UPDATE t SET",
            "SELECT a FROM t extra garbage (",
            "SELECT a FROM t;;",
        ],
    )
    def test_syntax_errors(self, sql):
        with pytest.raises(SqlSyntaxError):
            parse(sql)

    def test_trailing_semicolon_allowed(self):
        assert isinstance(parse("SELECT a FROM t;"), Select)
