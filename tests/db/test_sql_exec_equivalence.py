"""Differential tests: tree executor vs compiled plans.

Every statement runs against two identically-loaded databases, once
through the tree executor and once through the compiled plan, and the
two must agree **bit-identically**: same ``StatementResult`` (columns,
rows in order, rowcount, rows_touched), same undo-log growth, same
post-statement table contents, same errors, and same state after
rollback.  Covered mixes: the TPC-C new-order script, the TPC-W
browsing statements (joins, grouped aggregates, ORDER BY ... LIMIT),
the micro key-value statements, plus targeted NULL-handling, DISTINCT
aggregate and range-predicate cases.
"""

import pytest

from repro.db import Database, connect
from repro.db.catalog import IndexSpec
from repro.db.errors import IntegrityError
from repro.db.jdbc import Connection
from repro.db.txn import Transaction


# Every test in this module runs once per compiled rung -- the closure
# compiler ("compiled") and the source codegen rung ("source") -- always
# against the tree executor as the oracle.  The autouse fixture swaps
# the module-level mode so the shared helpers stay signature-stable.
_MODE = "compiled"


@pytest.fixture(autouse=True, params=["compiled", "source"])
def exec_mode(request):
    global _MODE
    _MODE = request.param
    yield request.param
    _MODE = "compiled"


def _make_pair(factory):
    """Two identically-built (db, tree-conn, compiled-conn) fixtures."""
    db_tree, _ = factory()
    db_comp, _ = factory()
    return (
        (db_tree, connect(db_tree, sql_exec="tree")),
        (db_comp, connect(db_comp, sql_exec=_MODE)),
    )


def _state(db: Database) -> dict:
    """Full table contents keyed by rowid (rowids advance identically
    in both databases because they execute identical scripts)."""
    return {
        table.schema.name: dict(table.scan()) for table in db.tables()
    }


def _run(conn: Connection, sql: str, params: tuple, txn=None):
    prepared = conn.prepare(sql)
    if prepared.compiled is not None:
        return prepared.compiled.execute(params, txn)
    return conn.executor.execute(prepared.plan, params, txn)


def assert_statement_equivalence(pair, script, use_txn=False):
    """Run ``script`` on both connections, comparing every result."""
    (db_tree, conn_tree), (db_comp, conn_comp) = pair
    assert conn_tree.sql_exec == "tree"
    assert conn_comp.sql_exec == _MODE
    txn_tree = Transaction(db_tree, None) if use_txn else None
    txn_comp = Transaction(db_comp, None) if use_txn else None
    for sql, params in script:
        tree_result = _run(conn_tree, sql, params, txn_tree)
        comp_result = _run(conn_comp, sql, params, txn_comp)
        assert tree_result.columns == comp_result.columns, sql
        assert tree_result.rows == comp_result.rows, sql
        assert tree_result.rowcount == comp_result.rowcount, sql
        assert tree_result.rows_touched == comp_result.rows_touched, sql
        if use_txn:
            assert txn_tree.undo_depth == txn_comp.undo_depth, sql
    assert _state(db_tree) == _state(db_comp)
    return txn_tree, txn_comp


# ---------------------------------------------------------------------------
# Workload statement mixes
# ---------------------------------------------------------------------------


class TestTpccMix:
    def _pair(self):
        from repro.workloads.tpcc import TpccScale, make_tpcc_database

        scale = TpccScale(warehouses=1, customers_per_district=30, items=200)
        return _make_pair(lambda: make_tpcc_database(scale)), scale

    def test_new_order_script(self):
        from repro.workloads.tpcc import new_order_statement_script

        pair, scale = self._pair()
        script = new_order_statement_script(scale, transactions=12, seed=3)
        assert_statement_equivalence(pair, script)

    def test_new_order_script_in_txn_then_rollback(self):
        from repro.workloads.tpcc import new_order_statement_script

        pair, scale = self._pair()
        before = (_state(pair[0][0]), _state(pair[1][0]))
        assert before[0] == before[1]
        script = new_order_statement_script(scale, transactions=6, seed=5)
        txn_tree, txn_comp = assert_statement_equivalence(
            pair, script, use_txn=True
        )
        assert txn_tree.undo_depth == txn_comp.undo_depth > 0
        txn_tree.rollback()
        txn_comp.rollback()
        after = (_state(pair[0][0]), _state(pair[1][0]))
        assert after[0] == after[1] == before[0]

    def test_payment_and_order_status_statements(self):
        pair, scale = self._pair()
        script = []
        for c_id in (1, 2, 7):
            script.extend([
                ("UPDATE warehouse SET w_ytd = w_ytd + ? WHERE w_id = ?",
                 (10.5, 1)),
                ("UPDATE district SET d_ytd = d_ytd + ? "
                 "WHERE d_w_id = ? AND d_id = ?", (10.5, 1, c_id)),
                ("SELECT c_balance, c_ytd_payment, c_payment_cnt, c_credit "
                 "FROM customer WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
                 (1, 1, c_id)),
                ("UPDATE customer SET c_balance = ?, c_ytd_payment = ?, "
                 "c_payment_cnt = ? WHERE c_w_id = ? AND c_d_id = ? "
                 "AND c_id = ?", (-20.5, 20.5, 2, 1, 1, c_id)),
                # Ordered-index equality prefix + ORDER BY DESC LIMIT.
                ("SELECT o_id, o_entry_d, o_ol_cnt FROM orders "
                 "WHERE o_w_id = ? AND o_d_id = ? AND o_c_id = ? "
                 "ORDER BY o_id DESC LIMIT 1", (1, 1, c_id)),
                # Secondary ordered index on customer last name.
                ("SELECT c_id, c_first FROM customer WHERE c_w_id = ? "
                 "AND c_d_id = ? AND c_last = ? ORDER BY c_first",
                 (1, 1, "BARBARBAR")),
            ])
        assert_statement_equivalence(pair, script)


class TestTpcwMix:
    def _pair(self):
        from repro.workloads.tpcw import TpcwScale, make_tpcw_database

        scale = TpcwScale(items=120, authors=40, customers=60, orders=80)
        return _make_pair(lambda: make_tpcw_database(scale))

    def test_browsing_statements(self):
        pair = self._pair()
        script = []
        for c_id, i_id, subject, lname in (
            (1, 5, "ARTS", "last3"),
            (17, 44, "COOKING", "last11"),
            (33, 99, "HISTORY", "last40"),
        ):
            script.extend([
                ("SELECT c_fname, c_lname, c_discount FROM tw_customer "
                 "WHERE c_id = ?", (c_id,)),
                ("SELECT i_title, i_cost FROM tw_item WHERE i_id = ?",
                 (i_id,)),
                # Join + ordered-index range + multi-key sort + LIMIT.
                ("SELECT i.i_id, i.i_title, i.i_pub_date, i.i_cost, "
                 "a.a_fname, a.a_lname FROM tw_item i JOIN author a "
                 "ON i.i_a_id = a.a_id WHERE i.i_subject = ? "
                 "ORDER BY i.i_pub_date DESC, i.i_title LIMIT 10",
                 (subject,)),
                # Join + GROUP BY + SUM + ORDER BY alias DESC + LIMIT.
                ("SELECT i.i_id, i.i_title, SUM(ol.ol_qty) AS sold "
                 "FROM tw_order_line ol JOIN tw_item i "
                 "ON ol.ol_i_id = i.i_id WHERE i.i_subject = ? "
                 "GROUP BY i.i_id, i.i_title ORDER BY sold DESC LIMIT 10",
                 (subject,)),
                ("SELECT i.i_id, i.i_title FROM tw_item i JOIN author a "
                 "ON i.i_a_id = a.a_id WHERE a.a_lname = ? "
                 "ORDER BY i.i_title LIMIT 20", (lname,)),
                ("SELECT o_id, o_date, o_total FROM tw_orders "
                 "WHERE o_c_id = ? ORDER BY o_id DESC LIMIT 1", (c_id,)),
                ("SELECT ol_i_id, ol_qty FROM tw_order_line "
                 "WHERE ol_o_id = ?", (c_id,)),
            ])
        assert_statement_equivalence(pair, script)


class TestMicroMix:
    def test_kv_statements(self):
        from repro.workloads.micro import make_micro_database

        pair = _make_pair(lambda: make_micro_database(rows=64))
        script = [
            ("SELECT v FROM kv WHERE k = ?", (k,)) for k in range(0, 64, 7)
        ]
        script.append(("SELECT COUNT(*) FROM kv", ()))
        script.append(("SELECT k FROM kv WHERE v >= ? ORDER BY k", (0.5,)))
        assert_statement_equivalence(pair, script)


# ---------------------------------------------------------------------------
# Targeted semantic cases
# ---------------------------------------------------------------------------


def _make_typed_db():
    db = Database("typed")
    db.create_table(
        "t",
        [("id", "int", False), ("grp", "text"), ("val", "int"),
         ("score", "float"), ("flag", "bool")],
        primary_key=["id"],
        indexes=[
            IndexSpec("t_by_grp", ("grp",)),
            IndexSpec("t_by_val", ("val",), ordered=True),
        ],
    )
    conn = connect(db)
    rows = [
        (1, "a", 10, 1.5, True),
        (2, "a", None, 2.5, False),
        (3, "b", 10, None, None),
        (4, "b", 30, 4.0, True),
        (5, None, 50, 5.5, False),
        (6, "c", 50, 1.5, True),
    ]
    for r in rows:
        conn.execute(
            "INSERT INTO t (id, grp, val, score, flag) "
            "VALUES (?, ?, ?, ?, ?)", *r,
        )
    return db, conn


TYPED_QUERIES = [
    # NULL comparison/filter semantics.
    ("SELECT id FROM t WHERE val > ? ORDER BY id", (5,)),
    ("SELECT id FROM t WHERE val IS NULL", ()),
    ("SELECT id FROM t WHERE val IS NOT NULL ORDER BY id", ()),
    ("SELECT id FROM t WHERE grp IS NULL", ()),
    ("SELECT id FROM t WHERE NOT (val > 20) ORDER BY id", ()),
    ("SELECT id FROM t WHERE val = ? OR score > ? ORDER BY id", (10, 4.5)),
    # Aggregates skip NULLs; empty input still yields one row.
    ("SELECT COUNT(*), COUNT(val), SUM(val), AVG(score), MIN(val), "
     "MAX(score) FROM t", ()),
    ("SELECT SUM(val) FROM t WHERE id > ?", (100,)),
    # DISTINCT aggregates (val=10 and 50 repeat, score=1.5 repeats).
    ("SELECT COUNT(DISTINCT val), SUM(DISTINCT val) FROM t", ()),
    ("SELECT COUNT(DISTINCT score), AVG(score) FROM t", ()),
    # GROUP BY with NULL-ish group keys and aggregates.
    ("SELECT grp, COUNT(*) AS n, SUM(val) AS s FROM t GROUP BY grp "
     "ORDER BY n DESC, s", ()),
    # DISTINCT projection.
    ("SELECT DISTINCT score FROM t", ()),
    # Range predicates on the ordered index (inclusive / exclusive).
    ("SELECT id FROM t WHERE val >= ? AND val < ? ORDER BY id", (10, 50)),
    ("SELECT id FROM t WHERE val > ? ORDER BY id", (10,)),
    ("SELECT id FROM t WHERE val BETWEEN ? AND ? ORDER BY id", (10, 30)),
    ("SELECT id FROM t WHERE val NOT BETWEEN ? AND ? ORDER BY id", (10, 30)),
    # IN lists and LIKE with NULL operands.
    ("SELECT id FROM t WHERE grp IN ('a', 'c') ORDER BY id", ()),
    ("SELECT id FROM t WHERE grp NOT IN ('a') ORDER BY id", ()),
    ("SELECT id FROM t WHERE grp LIKE ? ORDER BY id", ("%a%",)),
    # Expression projections with NULL propagation + scalar functions.
    ("SELECT id, val * 2 + 1, upper(grp), coalesce(val, -1), "
     "round(score, 0) FROM t ORDER BY id", ()),
    # Sorting with NULLs first and mixed hidden sort keys.
    ("SELECT id FROM t ORDER BY val, id DESC", ()),
    ("SELECT id, score FROM t ORDER BY score DESC LIMIT 3", ()),
]


class TestSemanticCases:
    def test_typed_queries(self):
        pair = _make_pair(_make_typed_db)
        assert_statement_equivalence(pair, TYPED_QUERIES)

    def test_mutations_and_rollback(self):
        pair = _make_pair(_make_typed_db)
        (db_tree, _), (db_comp, _) = pair
        before = _state(db_tree)
        assert before == _state(db_comp)
        script = [
            # Multi-row update through the secondary hash index.
            ("UPDATE t SET score = score + ? WHERE grp = ?", (1.0, "a")),
            # Update touching an index-key column (general update path).
            ("UPDATE t SET val = ? WHERE id = ?", (99, 3)),
            # Update with residual filter over a scan.
            ("UPDATE t SET flag = ? WHERE score > ? AND flag = ?",
             (False, 3.0, True)),
            # NULL assignment.
            ("UPDATE t SET grp = ? WHERE id = ?", (None, 6)),
            # Insert with partial column list (others default to NULL).
            ("INSERT INTO t (id, grp) VALUES (?, ?)", (7, "d")),
            # Range-targeted delete.
            ("DELETE FROM t WHERE val >= ?", (50,)),
            # Delete with no matches.
            ("DELETE FROM t WHERE id = ?", (1000,)),
        ]
        txn_tree, txn_comp = assert_statement_equivalence(
            pair, script, use_txn=True
        )
        assert txn_tree.undo_depth == txn_comp.undo_depth > 0
        txn_tree.rollback()
        txn_comp.rollback()
        assert _state(db_tree) == _state(db_comp) == before

    def test_mid_statement_failure_preserves_partial_undo(self):
        """A multi-row update that fails on a later row must leave both
        executors in the same partially-mutated state, with the same
        undo records, and roll back to the same place."""
        def factory():
            db = Database("fail")
            db.create_table(
                "u", [("id", "int", False), ("val", "int")],
                primary_key=["id"],
            )
            conn = connect(db)
            for i in (1, 2, 3):
                conn.execute(
                    "INSERT INTO u (id, val) VALUES (?, ?)", i, i * 10
                )
            return db, conn

        pair = _make_pair(factory)
        (db_tree, conn_tree), (db_comp, conn_comp) = pair
        before = _state(db_tree)
        assert before == _state(db_comp)
        txn_tree = Transaction(db_tree, None)
        txn_comp = Transaction(db_comp, None)
        # Setting every matching row's id to the same constant succeeds
        # on the first row and collides on the second: the statement
        # fails mid-loop with one row already mutated.
        sql = "UPDATE u SET id = ? WHERE val >= ?"
        with pytest.raises(IntegrityError) as tree_err:
            _run(conn_tree, sql, (7, 10), txn_tree)
        with pytest.raises(IntegrityError) as comp_err:
            _run(conn_comp, sql, (7, 10), txn_comp)
        assert str(tree_err.value) == str(comp_err.value)
        # The first row's undo record must have reached the transaction
        # in both executors (the compiled batch flushes on error).
        assert txn_tree.undo_depth == txn_comp.undo_depth == 1
        assert _state(db_tree) == _state(db_comp) != before
        txn_tree.rollback()
        txn_comp.rollback()
        assert _state(db_tree) == _state(db_comp) == before

    def test_uniform_type_error_fails_identically(self):
        def factory():
            db = Database("fail2")
            db.create_table(
                "u", [("id", "int", False), ("val", "int")],
                primary_key=["id"],
            )
            conn = connect(db)
            for i in (1, 2, 3):
                conn.execute(
                    "INSERT INTO u (id, val) VALUES (?, ?)", i, i * 10
                )
            return db, conn

        pair = _make_pair(factory)
        (db_tree, conn_tree), (db_comp, conn_comp) = pair
        sql = "UPDATE u SET val = val + ? WHERE id >= ?"
        with pytest.raises(TypeError):
            _run(conn_tree, sql, ("x", 1))
        with pytest.raises(TypeError):
            _run(conn_comp, sql, ("x", 1))
        assert _state(db_tree) == _state(db_comp)

    def test_duplicate_pk_insert_fails_identically(self):
        pair = _make_pair(_make_typed_db)
        (db_tree, conn_tree), (db_comp, conn_comp) = pair
        sql = "INSERT INTO t (id, grp) VALUES (?, ?)"
        with pytest.raises(IntegrityError) as tree_err:
            _run(conn_tree, sql, (1, "dup"))
        with pytest.raises(IntegrityError) as comp_err:
            _run(conn_comp, sql, (1, "dup"))
        assert str(tree_err.value) == str(comp_err.value)
        assert _state(db_tree) == _state(db_comp)

    def test_type_validation_fails_identically(self):
        pair = _make_pair(_make_typed_db)
        (db_tree, conn_tree), (db_comp, conn_comp) = pair
        cases = [
            ("INSERT INTO t (id, grp, val) VALUES (?, ?, ?)",
             (8, "x", "not-an-int")),
            ("INSERT INTO t (id, flag) VALUES (?, ?)", (9, 1)),
            ("UPDATE t SET val = ? WHERE id = ?", ("nope", 1)),
            ("UPDATE t SET score = ? WHERE id = ?", ("nope", 1)),
        ]
        for sql, params in cases:
            with pytest.raises(IntegrityError) as tree_err:
                _run(conn_tree, sql, params)
            with pytest.raises(IntegrityError) as comp_err:
                _run(conn_comp, sql, params)
            assert str(tree_err.value) == str(comp_err.value), sql
        assert _state(db_tree) == _state(db_comp)

    def test_pk_update_changing_key_uses_general_path(self):
        pair = _make_pair(_make_typed_db)
        script = [
            ("UPDATE t SET id = ? WHERE id = ?", (100, 1)),
            ("SELECT id, grp FROM t WHERE id = ?", (100,)),
            ("SELECT COUNT(*) FROM t", ()),
        ]
        assert_statement_equivalence(pair, script)

    def test_output_key_before_expression_key_sorts_correctly(self):
        """Regression: a sort key naming an output column *before* an
        expression key must not shift the expression key onto the
        wrong hidden slot (both executors share the sort helper, so
        this asserts correctness, not just agreement)."""
        pair = _make_pair(_make_typed_db)
        sql = "SELECT id, val FROM t ORDER BY val, id + 0 DESC"
        (db_tree, conn_tree), (db_comp, conn_comp) = pair
        tree_result = _run(conn_tree, sql, ())
        comp_result = _run(conn_comp, sql, ())
        assert tree_result.rows == comp_result.rows
        # val=10 ties (ids 1 and 3) must come in descending id order;
        # val=50 ties (ids 5 and 6) likewise.  NULL val sorts first.
        ids = [row[0] for row in tree_result.rows]
        assert ids == [2, 3, 1, 4, 6, 5]

    def test_compiled_update_maintains_index_created_at_runtime(self):
        """Regression: the key-safety proof must consult the table's
        live indexes, not just the schema's static list, so an index
        added via create_index stays maintained."""
        from repro.db.catalog import IndexSpec

        def factory():
            db, conn = _make_typed_db()
            db.table("t").create_index(IndexSpec("t_live_score", ("score",)))
            return db, conn

        pair = _make_pair(factory)
        script = [
            ("UPDATE t SET score = ? WHERE id = ?", (9.9, 1)),
            ("SELECT id FROM t WHERE score = ?", (9.9,)),
        ]
        assert_statement_equivalence(pair, script)
        (db_tree, _), (db_comp, _) = pair
        for db in (db_tree, db_comp):
            index = db.table("t").secondary["t_live_score"]
            assert index.lookup((9.9,)) == frozenset({1})
            assert index.lookup((1.5,)) == frozenset({6})

    def test_failed_insert_lock_state_matches_under_lock_manager(self):
        """Regression: a validation-failed INSERT must leave the same
        lock state in both executors (the tree executor locks the
        table before validating; compiled must too)."""
        from repro.db.txn import LockManager

        results = {}
        for mode in ("tree", _MODE):
            db, _ = _make_typed_db()
            manager = LockManager()
            conn = connect(db, manager, sql_exec=mode)
            txn = Transaction(db, manager)
            with pytest.raises(IntegrityError):
                _run(conn, "INSERT INTO t (id, val) VALUES (?, ?)",
                     (50, "bad"), txn)
            results[mode] = manager.holders(("table", "t"))
            txn.rollback()
        assert results["tree"] and results[_MODE]
        assert (
            list(results["tree"].values())
            == list(results[_MODE].values())
        )

    def test_hand_built_plans_fall_back_to_tree_executor(self):
        """Plans missing compiler metadata must compile to None (tree
        fallback), never escape with AssertionError/KeyError."""
        from repro.db.sql.codegen_plan import maybe_compile_plan_source
        from repro.db.sql.compile_plan import maybe_compile_plan
        from repro.db.sql.planner import (
            AccessPath,
            DeletePlan,
            SelectPlan,
            TableAccess,
            UpdatePlan,
        )

        db, _ = _make_typed_db()
        bare_target = TableAccess(
            table_name="t", binding="t",
            access=AccessPath(kind="index_eq", index_name="missing"),
        )
        hand_built = [
            SelectPlan(
                tables=[bare_target], columns=[], aggregates=[],
                group_exprs=[], sort_keys=[], limit=None, distinct=False,
                for_update=False, column_names=[],
            ),
            UpdatePlan(target=bare_target, assignments=[]),
            DeletePlan(target=bare_target),
            DeletePlan(
                target=TableAccess(
                    table_name="t", binding="t",
                    access=AccessPath(kind="pk"),
                ),
                scope=None,
            ),
        ]
        for plan in hand_built:
            assert maybe_compile_plan(plan, db) is None
            assert maybe_compile_plan_source(plan, db) is None

    def test_autocommit_through_connection_api(self):
        """End-to-end through Connection.query/execute (ResultSet layer)."""
        (db_tree, conn_tree), (db_comp, conn_comp) = _make_pair(
            _make_typed_db
        )
        for conn in (conn_tree, conn_comp):
            assert conn.execute(
                "UPDATE t SET val = val + 1 WHERE grp = ?", "b"
            ) == 2
        rows_tree = [
            r.as_tuple()
            for r in conn_tree.query("SELECT id, val FROM t ORDER BY id")
        ]
        rows_comp = [
            r.as_tuple()
            for r in conn_comp.query("SELECT id, val FROM t ORDER BY id")
        ]
        assert rows_tree == rows_comp
        assert (
            conn_comp.plan_cache_stats.compiled_plans > 0
        )
        assert conn_tree.plan_cache_stats.compiled_plans == 0
