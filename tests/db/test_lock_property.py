"""Property test: random lock schedules against the LockManager.

Drives seeded random acquire/upgrade/release schedules and checks,
after every step, the two invariants the PR-10 lock fixes pin:

(a) no resource is ever held (or queued for) by a finished
    transaction -- ``release_all`` must purge the departing txn's own
    queued requests before granting anything;
(b) the manager is always *saturated*: no queued request that the
    grant policy says is grantable (an upgrade with no other holders,
    or a compatible queue head) is left waiting.  Together with
    deadlock detection this gives liveness -- every blocked schedule
    either makes progress after some release or raises
    ``DeadlockError``.
"""

import random

import pytest

from repro.db.errors import DeadlockError
from repro.db.txn import LockManager, LockMode

RESOURCES = ["a", "b", "c"]
MAX_ALIVE = 6
STEPS = 300


class _Harness:
    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self.lm = LockManager()
        self.next_id = 1
        self.alive: set[int] = set()
        self.blocked: set[int] = set()
        self.finished: set[int] = set()
        self.lm.grant_callback = self._on_grant

    def _on_grant(self, txn_id: int, resource) -> None:
        assert txn_id not in self.finished, (
            f"grant_callback fired for finished txn {txn_id} on {resource}"
        )
        self.blocked.discard(txn_id)

    # -- schedule actions ---------------------------------------------------

    def begin(self) -> None:
        self.alive.add(self.next_id)
        self.next_id += 1

    def acquire(self, txn_id: int) -> None:
        resource = self.rng.choice(RESOURCES)
        mode = self.rng.choice([LockMode.SHARED, LockMode.EXCLUSIVE])
        try:
            granted = self.lm.acquire(txn_id, resource, mode)
        except DeadlockError as exc:
            assert txn_id in exc.cycle or txn_id == exc.args[0]
            self.finish(txn_id)  # victim aborts
            return
        if not granted:
            self.blocked.add(txn_id)

    def finish(self, txn_id: int) -> None:
        self.finished.add(txn_id)
        self.alive.discard(txn_id)
        self.blocked.discard(txn_id)
        self.lm.release_all(txn_id)

    def step(self) -> None:
        runnable = sorted(self.alive - self.blocked)
        choices = []
        if len(self.alive) < MAX_ALIVE:
            choices.append("begin")
        if runnable:
            choices.extend(["acquire"] * 4)
        if self.alive:
            choices.append("finish")
        if not choices:
            choices = ["begin"]
        action = self.rng.choice(choices)
        if action == "begin":
            self.begin()
        elif action == "acquire":
            self.acquire(self.rng.choice(runnable))
        else:
            self.finish(self.rng.choice(sorted(self.alive)))
        self.check_invariants()

    # -- invariants ---------------------------------------------------------

    def check_invariants(self) -> None:
        for txn_id in self.finished:
            assert not self.lm.held_by(txn_id)
        for resource in RESOURCES:
            holders = self.lm.holders(resource)
            waiters = self.lm.waiting(resource)
            for txn_id in holders:
                assert txn_id not in self.finished, (
                    f"finished txn {txn_id} still holds {resource}"
                )
                assert resource in self.lm.held_by(txn_id)
            for txn_id, _ in waiters:
                assert txn_id not in self.finished, (
                    f"finished txn {txn_id} still queued on {resource}"
                )
            self._check_saturated(resource, holders, waiters)
        # Progress: if anything is alive, something must be runnable --
        # an all-blocked schedule would mean an undetected deadlock.
        if self.alive:
            assert self.alive - self.blocked, (
                "every live txn is blocked and no DeadlockError was raised"
            )

    def _check_saturated(self, resource, holders, waiters) -> None:
        for txn_id, mode in waiters:
            others = {t: m for t, m in holders.items() if t != txn_id}
            upgrade = (
                holders.get(txn_id) is LockMode.SHARED
                and mode is LockMode.EXCLUSIVE
            )
            if upgrade and not others:
                pytest.fail(
                    f"grantable upgrade for txn {txn_id} left queued "
                    f"on {resource}"
                )
        if waiters:
            head_txn, head_mode = waiters[0]
            if head_txn not in holders:
                compatible = not holders or (
                    head_mode is LockMode.SHARED
                    and all(m is LockMode.SHARED for m in holders.values())
                )
                if compatible:
                    pytest.fail(
                        f"grantable head waiter {head_txn} left queued "
                        f"on {resource}"
                    )


@pytest.mark.parametrize("seed", range(8))
def test_random_schedules_hold_lock_invariants(seed):
    harness = _Harness(seed)
    for _ in range(STEPS):
        harness.step()
    # Drain: finish everything; the manager must come back empty.
    for txn_id in sorted(harness.alive, key=lambda t: harness.rng.random()):
        harness.finish(txn_id)
        harness.check_invariants()
    assert harness.lm.wait_for_edges() == {}
    for resource in RESOURCES:
        assert harness.lm.holders(resource) == {}
        assert harness.lm.waiting(resource) == []
