"""Unit tests for the WAL tier: frame codec, ShardWal, CoordinatorLog.

Covers the frame format invariants (length-prefix, CRC, monotone
LSNs), torn-tail vs corrupt-frame classification, both sync policies,
fsync-fault behavior, checkpoint/truncation mechanics, reopen
semantics and the storage-fault injection hooks.
"""

import json

import pytest

from repro.db import ShardWal, WalManager, attach_wal
from repro.db.engine import Database
from repro.db.errors import WalCorruptionError, WalError
from repro.db.replica import RedoOp
from repro.db.wal import (
    FRAME_HEADER,
    CoordinatorLog,
    decode_ops,
    encode_ops,
    read_meta,
    scan_wal,
)


def ops(*rows):
    """Insert RedoOps for kv rows ``(rowid, k, v)``."""
    return [
        RedoOp("kv", "insert", rowid, (k, v)) for rowid, k, v in rows
    ]


def as_tuples(batch):
    """RedoOp is slotted with no __eq__; compare by field tuples."""
    return [(op.table, op.kind, op.rowid, op.after) for op in batch]


def make_wal(tmp_path, **kwargs) -> ShardWal:
    return ShardWal(tmp_path / "shard0.wal", **kwargs)


# ---------------------------------------------------------------------------
# Frame codec
# ---------------------------------------------------------------------------


class TestFrameCodec:
    def test_commit_frames_round_trip(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.commit_ops(ops((1, 10, 100)))
        wal.commit_ops(
            [RedoOp("kv", "delete", 1, None),
             RedoOp("kv", "update", 2, (20, 999))]
        )
        wal.close()
        scan = scan_wal(wal.path)
        assert [f.lsn for f in scan.frames] == [1, 2]
        assert [f.kind for f in scan.frames] == ["commit", "commit"]
        assert not scan.torn
        first = decode_ops(scan.frames[0].record["ops"])
        assert as_tuples(first) == [("kv", "insert", 1, (10, 100))]
        second = decode_ops(scan.frames[1].record["ops"])
        assert as_tuples(second) == [
            ("kv", "delete", 1, None), ("kv", "update", 2, (20, 999))
        ]

    def test_encode_decode_ops_round_trip(self):
        batch = [
            RedoOp("t", "insert", 7, (1, None, "x")),
            RedoOp("t", "delete", 7, None),
        ]
        assert as_tuples(decode_ops(encode_ops(batch))) == as_tuples(batch)

    def test_scan_missing_file_is_empty(self, tmp_path):
        scan = scan_wal(tmp_path / "nope.wal")
        assert scan.frames == [] and not scan.torn

    def test_non_monotone_lsn_is_corruption(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.commit_ops(ops((1, 1, 1)))
        wal.close()
        # Duplicate the (single) frame: second copy repeats LSN 1.
        data = wal.path.read_bytes()
        wal.path.write_bytes(data + data)
        with pytest.raises(WalCorruptionError) as err:
            scan_wal(wal.path)
        assert "LSN not monotone" in str(err.value)

    def test_garbage_header_is_corruption(self, tmp_path):
        path = tmp_path / "shard0.wal"
        path.write_bytes(b"\xff" * (FRAME_HEADER.size + 4))
        with pytest.raises(WalCorruptionError) as err:
            scan_wal(path)
        assert "unreadable frame header" in str(err.value)


# ---------------------------------------------------------------------------
# Torn tails vs corrupt frames
# ---------------------------------------------------------------------------


class TestTornAndCorrupt:
    def test_torn_payload_stops_scan_at_last_complete_frame(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.commit_ops(ops((1, 1, 1)))
        wal.inject_torn_write()
        wal.close()
        scan = scan_wal(wal.path)
        assert scan.torn
        assert [f.lsn for f in scan.frames] == [1]
        assert scan.valid_end < wal.path.stat().st_size

    def test_torn_header_counts_as_torn(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.commit_ops(ops((1, 1, 1)))
        wal.close()
        with open(wal.path, "ab") as fh:
            fh.write(b"\x01\x02\x03")  # partial header
        scan = scan_wal(wal.path)
        assert scan.torn and len(scan.frames) == 1

    def test_reopen_truncates_torn_tail_and_resumes(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.commit_ops(ops((1, 1, 1)))
        wal.inject_torn_write()
        wal.close()
        reopened = make_wal(tmp_path)
        assert reopened.tip == 1
        reopened.commit_ops(ops((2, 2, 2)))
        reopened.close()
        scan = scan_wal(reopened.path)
        assert not scan.torn
        assert [f.lsn for f in scan.frames] == [1, 2]

    def test_corrupt_frame_raises_with_lsn_quoted(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.commit_ops(ops((1, 1, 1)))
        wal.commit_ops(ops((2, 2, 2)))
        corrupted = wal.inject_corruption(lsn=2)
        wal.close()
        assert corrupted == 2
        with pytest.raises(WalCorruptionError) as err:
            scan_wal(wal.path)
        message = str(err.value)
        assert "LSN 2" in message and str(wal.path) in message

    def test_skip_below_ignores_damage_in_covered_commits(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.commit_ops(ops((1, 1, 1)))
        wal.commit_ops(ops((2, 2, 2)))
        wal.inject_corruption(lsn=1)
        wal.close()
        scan = scan_wal(wal.path, skip_below=1)
        assert scan.frames[0].record is None  # skipped, not validated
        assert scan.frames[1].record is not None

    def test_skip_below_still_validates_prepare_frames(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.log_prepare("e1-t1", ops((1, 1, 1)))
        wal.sync()
        corrupted = wal.inject_corruption(lsn=1)
        wal.close()
        assert corrupted == 1
        # A checkpoint cannot cover a pending prepare: always decoded.
        with pytest.raises(WalCorruptionError):
            scan_wal(wal.path, skip_below=5)


# ---------------------------------------------------------------------------
# Sync policies and fsync faults
# ---------------------------------------------------------------------------


class TestDurability:
    def test_commit_policy_syncs_every_commit(self, tmp_path):
        wal = make_wal(tmp_path, sync_policy="commit")
        wal.commit_ops(ops((1, 1, 1)))
        wal.commit_ops(ops((2, 2, 2)))
        assert wal.durable_lsn == wal.tip == 2
        assert wal.stats.syncs == 2
        wal.close()

    def test_group_policy_buffers_until_sync(self, tmp_path):
        wal = make_wal(tmp_path, sync_policy="group")
        wal.commit_ops(ops((1, 1, 1)))
        wal.commit_ops(ops((2, 2, 2)))
        assert wal.durable_lsn == 0 and wal.tip == 2
        assert wal.sync()
        assert wal.durable_lsn == 2
        assert wal.stats.syncs == 1  # one fsync for the batch
        assert wal.sync()  # nothing pending: no extra fsync
        assert wal.stats.syncs == 1
        wal.close()

    def test_unknown_sync_policy_rejected(self, tmp_path):
        with pytest.raises(WalError):
            make_wal(tmp_path, sync_policy="paranoid")

    def test_fsync_fail_freezes_durable_horizon(self, tmp_path):
        wal = make_wal(tmp_path, sync_policy="group")
        wal.commit_ops(ops((1, 1, 1)))
        wal.fsync_fail = True
        assert not wal.sync()
        assert wal.stats.sync_failures == 1
        assert wal.durable_lsn == 0
        wal.fsync_fail = False
        assert wal.sync()
        assert wal.durable_lsn == 1
        wal.close()

    def test_drop_unsynced_reverts_to_durable_prefix(self, tmp_path):
        wal = make_wal(tmp_path, sync_policy="group")
        wal.commit_ops(ops((1, 1, 1)))
        wal.sync()
        wal.commit_ops(ops((2, 2, 2)))
        wal.commit_ops(ops((3, 3, 3)))
        wal.drop_unsynced()  # machine crash: buffered frames vanish
        assert wal.tip == 1
        wal.close()
        scan = scan_wal(wal.path)
        assert [f.lsn for f in scan.frames] == [1]

    def test_drop_unsynced_forgets_undurable_prepares(self, tmp_path):
        wal = make_wal(tmp_path, sync_policy="group")
        wal.log_prepare("e1-t1", ops((1, 1, 1)))
        wal.sync()
        wal.log_prepare("e1-t2", ops((2, 2, 2)))
        wal.drop_unsynced()
        assert wal.pending_prepares() == {"e1-t1": 1}
        wal.close()


# ---------------------------------------------------------------------------
# Checkpoints and truncation
# ---------------------------------------------------------------------------


def make_kv_database(rows) -> Database:
    db = Database("ckpt")
    db.create_table(
        "kv", [("k", "int", False), ("v", "int")], primary_key=["k"]
    )
    table = db.table("kv")
    for k, v in rows:
        table.insert((k, v))
    return db


class TestCheckpoints:
    def test_checkpoint_truncates_covered_frames(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.commit_ops(ops((1, 1, 1)))
        wal.commit_ops(ops((2, 2, 2)))
        lsn = wal.write_checkpoint(make_kv_database([(1, 1), (2, 2)]))
        assert lsn == 2
        assert wal.stats.checkpoints == 1
        assert wal.stats.truncated_frames == 2
        assert scan_wal(wal.path).frames == []
        ckpt = wal.read_checkpoint()
        assert ckpt["lsn"] == 2
        (spec,) = [t for t in ckpt["tables"] if t["name"] == "kv"]
        assert [row for _, row in spec["rows"]] == [[1, 1], [2, 2]]
        wal.close()

    def test_checkpoint_without_truncation_keeps_frames(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.commit_ops(ops((1, 1, 1)))
        lsn = wal.write_checkpoint(
            make_kv_database([(1, 1)]), truncate=False
        )
        assert lsn == 1
        assert [f.lsn for f in scan_wal(wal.path).frames] == [1]
        wal.close()

    def test_truncate_below_keeps_pending_prepares(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.commit_ops(ops((1, 1, 1)))
        wal.log_prepare("e1-t9", ops((2, 2, 2)))
        wal.sync()
        wal.commit_ops(ops((3, 3, 3)))
        dropped = wal.truncate_below(3)
        assert dropped == 2  # commits 1 and 3; the prepare survives
        scan = scan_wal(wal.path)
        assert [(f.lsn, f.kind) for f in scan.frames] == [(2, "prepare")]
        wal.close()

    def test_checkpoint_refused_when_log_not_durable(self, tmp_path):
        wal = make_wal(tmp_path, sync_policy="group")
        wal.commit_ops(ops((1, 1, 1)))
        wal.fsync_fail = True
        assert wal.write_checkpoint(make_kv_database([(1, 1)])) is None
        assert wal.read_checkpoint() is None
        wal.close()

    def test_stale_checkpoint_tmp_is_ignored(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.commit_ops(ops((1, 1, 1)))
        wal.write_checkpoint(make_kv_database([(1, 1)]))
        # Crash mid-checkpoint: a half-written temp file is left over.
        tmp = wal.checkpoint_path.with_suffix(".ckpt.tmp")
        tmp.write_text('{"lsn": 99, "tab', encoding="utf-8")
        wal.close()
        reopened = make_wal(tmp_path)
        assert reopened.read_checkpoint()["lsn"] == 1
        reopened.close()


# ---------------------------------------------------------------------------
# Reopen semantics
# ---------------------------------------------------------------------------


class TestReopen:
    def test_reopen_resumes_lsn_sequence(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.commit_ops(ops((1, 1, 1)))
        wal.close()
        reopened = make_wal(tmp_path)
        assert reopened.commit_ops(ops((2, 2, 2))) == 2
        reopened.close()

    def test_reopen_after_checkpoint_resumes_past_its_lsn(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.commit_ops(ops((1, 1, 1)))
        wal.write_checkpoint(make_kv_database([(1, 1)]))  # empties the log
        wal.close()
        reopened = make_wal(tmp_path)
        assert reopened.tip == 1  # from the checkpoint, not the frames
        assert reopened.commit_ops(ops((2, 2, 2))) == 2
        reopened.close()

    def test_reopen_restores_pending_prepares(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.log_prepare("e1-t1", ops((1, 1, 1)))
        wal.log_prepare("e1-t2", ops((2, 2, 2)))
        wal.sync()
        wal.mark_resolving("e1-t1")
        wal.commit_ops([])  # resolve for t1
        wal.close()
        reopened = make_wal(tmp_path)
        assert reopened.pending_prepares() == {"e1-t2": 2}
        reopened.close()

    def test_abort_prepare_forgets_without_rewriting(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.log_prepare("e1-t1", ops((1, 1, 1)))
        wal.sync()
        wal.abort_prepare("e1-t1")
        assert wal.pending_prepares() == {}
        # The frame itself stays (appends are immutable) ...
        assert [f.kind for f in scan_wal(wal.path).frames] == ["prepare"]
        # ... but truncation no longer protects it.
        wal.truncate_below(1)
        assert scan_wal(wal.path).frames == []
        wal.close()


# ---------------------------------------------------------------------------
# Coordinator decision log
# ---------------------------------------------------------------------------


class TestCoordinatorLog:
    def test_decisions_survive_reopen(self, tmp_path):
        log = CoordinatorLog(tmp_path / "coord.wal")
        assert log.log_commit("e1-t1", [0, 2])
        log.close()
        reopened = CoordinatorLog(tmp_path / "coord.wal")
        assert reopened.committed("e1-t1")
        assert not reopened.committed("e1-t2")
        assert reopened.decisions["e1-t1"] == [0, 2]
        reopened.close()

    def test_failed_force_leaves_no_durable_decision(self, tmp_path):
        log = CoordinatorLog(tmp_path / "coord.wal")
        log.fsync_fail = True
        assert not log.log_commit("e1-t1", [0, 1])
        assert not log.committed("e1-t1")
        log.fsync_fail = False
        assert log.log_commit("e1-t2", [0, 1])
        log.close()
        reopened = CoordinatorLog(tmp_path / "coord.wal")
        assert list(reopened.decisions) == ["e1-t2"]
        reopened.close()

    def test_shard_frame_in_coordinator_log_is_corruption(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.commit_ops(ops((1, 1, 1)))
        wal.close()
        with pytest.raises(WalCorruptionError) as err:
            CoordinatorLog(tmp_path / "shard0.wal")
        assert "coordinator log" in str(err.value)


# ---------------------------------------------------------------------------
# WalManager + attach_wal
# ---------------------------------------------------------------------------


class TestWalManager:
    def test_needs_at_least_one_shard(self, tmp_path):
        with pytest.raises(WalError):
            WalManager(tmp_path, shards=0)

    def test_checkpoint_shape_mismatch_rejected(self, tmp_path):
        manager = WalManager(tmp_path, shards=2)
        with pytest.raises(WalError):
            manager.checkpoint([make_kv_database([])])
        manager.close()

    def test_attach_bumps_epoch_and_namespaces_gtids(self, tmp_path):
        db = make_kv_database([(1, 10)])
        manager = attach_wal(db, tmp_path)
        assert manager.epoch == 1
        assert manager.next_gtid() == "e1-t1"
        manager.close()
        again = attach_wal(db, tmp_path)
        assert again.epoch == 2
        assert again.next_gtid() == "e2-t1"
        assert read_meta(tmp_path)["epoch"] == 2
        again.close()

    def test_attach_writes_bootstrap_checkpoint(self, tmp_path):
        db = make_kv_database([(1, 10), (2, 20)])
        manager = attach_wal(db, tmp_path)
        ckpt = manager.wals[0].read_checkpoint()
        (spec,) = [t for t in ckpt["tables"] if t["name"] == "kv"]
        assert len(spec["rows"]) == 2
        assert read_meta(tmp_path)["single"] is True
        manager.close()

    def test_meta_file_is_valid_json(self, tmp_path):
        db = make_kv_database([])
        manager = attach_wal(db, tmp_path)
        manager.close()
        meta = json.loads((tmp_path / "meta.json").read_text())
        assert meta["shards"] == 1 and meta["replicas"] == 0
