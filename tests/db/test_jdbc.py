"""JDBC-like connection API."""

import pytest

from repro.db import Database, connect
from repro.db.errors import ExecutionError, TransactionError


@pytest.fixture()
def conn(people_db):
    return people_db[1]


class TestResultSet:
    def test_cursor_api(self, conn):
        rs = conn.query("SELECT id, name FROM person ORDER BY id LIMIT 2")
        assert rs.next()
        assert rs.get("id") == 1
        assert rs.get(1) == "ann"
        assert rs.next()
        assert rs.get("id") == 2
        assert not rs.next()

    def test_get_before_next_rejected(self, conn):
        rs = conn.query("SELECT id FROM person")
        with pytest.raises(ExecutionError):
            rs.get("id")

    def test_rewind(self, conn):
        rs = conn.query("SELECT id FROM person ORDER BY id LIMIT 1")
        rs.next()
        rs.rewind()
        assert rs.next()
        assert rs.get("id") == 1

    def test_one_requires_single_row(self, conn):
        with pytest.raises(ExecutionError):
            conn.query("SELECT id FROM person").one()

    def test_scalar_requires_single_column(self, conn):
        with pytest.raises(ExecutionError):
            conn.query("SELECT id, name FROM person WHERE id = 1").scalar()

    def test_first_and_bool(self, conn):
        empty = conn.query("SELECT id FROM person WHERE id = -1")
        assert not empty
        assert empty.first() is None
        nonempty = conn.query("SELECT id FROM person WHERE id = 1")
        assert nonempty
        assert nonempty.first()["id"] == 1

    def test_iteration(self, conn):
        rows = list(conn.query("SELECT id FROM person ORDER BY id"))
        assert [r["id"] for r in rows] == [1, 2, 3, 4, 5, 6]


class TestRow:
    def test_access_by_name_case_insensitive(self, conn):
        row = conn.query_one("SELECT name FROM person WHERE id = 1")
        assert row["NAME"] == "ann"

    def test_access_by_index(self, conn):
        row = conn.query_one("SELECT id, name FROM person WHERE id = 1")
        assert row[0] == 1

    def test_missing_key(self, conn):
        row = conn.query_one("SELECT id FROM person WHERE id = 1")
        with pytest.raises(KeyError):
            row["nope"]
        assert row.get("nope", "dflt") == "dflt"

    def test_equality_with_tuple(self, conn):
        row = conn.query_one("SELECT id, name FROM person WHERE id = 1")
        assert row == (1, "ann")


class TestConnection:
    def test_plan_cache_reuses_prepared(self, conn):
        first = conn.prepare("SELECT id FROM person WHERE id = ?")
        second = conn.prepare("SELECT id FROM person WHERE id = ?")
        assert first is second

    def test_plan_cache_counts_hits_and_misses(self, conn):
        stats = conn.plan_cache_stats
        stats.reset()
        conn.prepare("SELECT id FROM person WHERE id = ?")
        conn.prepare("SELECT id FROM person WHERE id = ?")
        conn.prepare("SELECT name FROM person WHERE id = ?")
        assert stats.misses == 2
        assert stats.hits == 1

    def test_plan_cache_bounded_lru(self, people_db):
        db, _ = people_db
        conn = connect(db, plan_cache_size=2)
        a = "SELECT id FROM person WHERE id = 1"
        b = "SELECT id FROM person WHERE id = 2"
        c = "SELECT id FROM person WHERE id = 3"
        conn.prepare(a)
        conn.prepare(b)
        conn.prepare(a)  # refresh a: b becomes least recently used
        conn.prepare(c)  # evicts b
        assert conn.plan_cache_stats.evictions == 1
        # Cache entries are keyed on (executor mode, sql).
        assert set(conn._plan_cache) == {
            (conn.sql_exec, a), (conn.sql_exec, c)
        }
        assert len(conn._plan_cache) <= 2

    def test_execute_rejects_select(self, conn):
        with pytest.raises(ExecutionError):
            conn.execute("SELECT id FROM person")

    def test_query_rejects_update_via_prepared(self, conn):
        stmt = conn.prepare("DELETE FROM person WHERE id = ?")
        with pytest.raises(ExecutionError):
            stmt.query(1)

    def test_observer_sees_calls(self, conn):
        events = []
        conn.observer = lambda kind, sql, touched, rows: events.append(kind)
        conn.query("SELECT id FROM person WHERE id = 1")
        conn.execute("UPDATE person SET age = 1 WHERE id = 1")
        assert events == ["query", "update"]

    def test_call_counter(self, conn):
        before = conn.calls
        conn.query("SELECT id FROM person WHERE id = 1")
        assert conn.calls == before + 1

    def test_closed_connection_rejects_use(self, people_db):
        _, conn = people_db
        conn.close()
        with pytest.raises(ExecutionError):
            conn.query("SELECT id FROM person")

    def test_context_manager_closes(self, people_db):
        db, _ = people_db
        with connect(db) as conn:
            conn.query("SELECT id FROM person WHERE id = 1")
        assert conn.closed


class TestTransactions:
    def test_explicit_commit(self, people_db):
        db, _ = people_db
        conn = connect(db, use_locks=True)
        conn.begin()
        conn.execute("DELETE FROM person WHERE id = 1")
        conn.commit()
        assert conn.query_scalar("SELECT COUNT(*) FROM person") == 5

    def test_explicit_rollback(self, people_db):
        db, _ = people_db
        conn = connect(db, use_locks=True)
        conn.begin()
        conn.execute("DELETE FROM person")
        assert conn.query_scalar("SELECT COUNT(*) FROM person") == 0
        conn.rollback()
        assert conn.query_scalar("SELECT COUNT(*) FROM person") == 6

    def test_nested_begin_rejected(self, people_db):
        db, _ = people_db
        conn = connect(db, use_locks=True)
        conn.begin()
        with pytest.raises(TransactionError):
            conn.begin()

    def test_commit_without_begin_rejected(self, conn):
        with pytest.raises(TransactionError):
            conn.commit()

    def test_close_rolls_back_open_transaction(self, people_db):
        db, _ = people_db
        conn = connect(db, use_locks=True)
        conn.begin()
        conn.execute("DELETE FROM person WHERE id = 1")
        conn.close()
        verify = connect(db)
        assert verify.query_scalar("SELECT COUNT(*) FROM person") == 6

    def test_in_transaction_flag(self, people_db):
        db, _ = people_db
        conn = connect(db, use_locks=True)
        assert not conn.in_transaction
        conn.begin()
        assert conn.in_transaction
        conn.commit()
        assert not conn.in_transaction
