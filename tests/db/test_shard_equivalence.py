"""Differential acceptance suite: sharded tier vs single server.

Every script runs against a plain single :class:`Database` and a
:class:`ShardedDatabase` behind the statement router, under the
``tree``, ``compiled`` and ``source`` SQL executors, and the two
deployments must
agree **bit-identically**: same columns, same rows *in the same
order* (including scan order, sort-tie order and GROUP BY emission
order after the router's scatter-gather merge), same rowcount and
rows_touched, same undo-log growth, same post-statement state, same
errors, and same state after rollback.  A 1-shard ShardedDatabase is
included as the degenerate case.  Covered mixes: the TPC-C new-order
script (warehouse-affine single-shard routing), TPC-C payment /
order-status statements, TPC-W browsing (scatter joins against
replicated dimension tables, grouped aggregates, ORDER BY ... LIMIT),
the micro key-value statements, plus targeted scatter, rollback and
mid-statement-failure cases.
"""

import pytest

from repro.db import (
    Database,
    IntegrityError,
    ShardedDatabase,
    ShardingScheme,
    TableSharding,
    connect,
    connect_sharded,
)

MODES = ("tree", "compiled", "source")
SHARD_COUNTS = (1, 3)


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------


def _observed(conn):
    """Capture (kind, sql, rows_touched, rowcount) per statement."""
    log = []
    conn.observer = lambda kind, sql, touched, rows: log.append(
        (kind, sql, touched, rows)
    )
    return log


def _single_state(db: Database) -> dict:
    return {
        table.schema.name: list(table.scan()) for table in db.tables()
    }


def _sharded_state(sdb: ShardedDatabase) -> dict:
    return {
        name: list(sdb.logical_rows(name).items())
        for name in sdb.catalog.names()
    }


def _assert_replicas_consistent(sdb: ShardedDatabase) -> None:
    """Every replicated table's copies must be identical."""
    for name in sdb.catalog.names():
        if sdb.scheme.sharding(name) is not None:
            continue
        reference = list(sdb.shards[0].table(name).scan())
        for shard in sdb.shards[1:]:
            assert list(shard.table(name).scan()) == reference, name


def _run_statement(conn, sql, params):
    prepared = conn.prepare(sql)
    if prepared.is_query:
        rs = prepared.query(*params)
        return (
            list(rs.columns),
            [row.as_tuple() for row in rs.rows],
            len(rs),
            rs.rows_touched,
        )
    count = prepared.update(*params)
    return ([], [], count, None)


def assert_shard_equivalence(
    single_pair, sharded_pair, script, use_txn=False
):
    """Run ``script`` on both deployments, comparing every statement."""
    single_db, single_conn = single_pair
    sharded_db, sharded_conn = sharded_pair
    single_log = _observed(single_conn)
    sharded_log = _observed(sharded_conn)
    txn_single = single_conn.begin() if use_txn else None
    txn_sharded = sharded_conn.begin() if use_txn else None
    for sql, params in script:
        got_single = _run_statement(single_conn, sql, params)
        got_sharded = _run_statement(sharded_conn, sql, params)
        assert got_single == got_sharded, sql
        if use_txn:
            assert (
                txn_single.undo_depth == txn_sharded.undo_depth
            ), sql
    # The observer stream carries rows_touched for mutations too.
    assert single_log == sharded_log
    assert _single_state(single_db) == _sharded_state(sharded_db)
    _assert_replicas_consistent(sharded_db)
    return txn_single, txn_sharded


def make_pair(factory, scheme, shards, sql_exec):
    """(single, sharded) deployments loaded with identical rows."""
    single_db, _ = factory()
    source_db, _ = factory()
    sharded_db = ShardedDatabase.from_database(source_db, shards, scheme)
    return (
        (single_db, connect(single_db, sql_exec=sql_exec)),
        (sharded_db, connect_sharded(sharded_db, sql_exec=sql_exec)),
    )


# ---------------------------------------------------------------------------
# TPC-C
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("sql_exec", MODES)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
class TestTpccMix:
    def _pair(self, shards, sql_exec):
        from repro.workloads.tpcc import (
            TpccScale,
            make_tpcc_database,
            tpcc_sharding_scheme,
        )

        scale = TpccScale(
            warehouses=3, customers_per_district=20, items=120
        )
        return make_pair(
            lambda: make_tpcc_database(scale),
            tpcc_sharding_scheme("warehouse"),
            shards,
            sql_exec,
        ), scale

    def test_new_order_script(self, shards, sql_exec):
        from repro.workloads.tpcc import new_order_statement_script

        pair, scale = self._pair(shards, sql_exec)
        script = new_order_statement_script(scale, transactions=10, seed=3)
        assert_shard_equivalence(pair[0], pair[1], script)

    def test_new_order_script_in_txn_then_rollback(self, shards, sql_exec):
        from repro.workloads.tpcc import new_order_statement_script

        pair, scale = self._pair(shards, sql_exec)
        (single_db, single_conn), (sharded_db, sharded_conn) = pair
        before = _single_state(single_db)
        assert before == _sharded_state(sharded_db)
        script = new_order_statement_script(scale, transactions=5, seed=5)
        txn_single, txn_sharded = assert_shard_equivalence(
            pair[0], pair[1], script, use_txn=True
        )
        assert txn_single.undo_depth == txn_sharded.undo_depth > 0
        single_conn.rollback()
        sharded_conn.rollback()
        assert _single_state(single_db) == before
        assert _sharded_state(sharded_db) == before

    def test_payment_order_status_and_scatter_statements(
        self, shards, sql_exec
    ):
        pair, scale = self._pair(shards, sql_exec)
        script = []
        for w_id, c_id in ((1, 1), (2, 2), (3, 7)):
            script.extend([
                ("UPDATE warehouse SET w_ytd = w_ytd + ? WHERE w_id = ?",
                 (10.5, w_id)),
                ("UPDATE district SET d_ytd = d_ytd + ? "
                 "WHERE d_w_id = ? AND d_id = ?", (10.5, w_id, c_id)),
                ("SELECT c_balance, c_ytd_payment, c_payment_cnt "
                 "FROM customer WHERE c_w_id = ? AND c_d_id = ? "
                 "AND c_id = ?", (w_id, 1, c_id)),
                ("UPDATE customer SET c_balance = ?, c_payment_cnt = ? "
                 "WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
                 (-20.5, 2, w_id, 1, c_id)),
                # Ordered secondary index, single shard (w_id bound).
                ("SELECT c_id, c_first FROM customer WHERE c_w_id = ? "
                 "AND c_d_id = ? AND c_last = ? ORDER BY c_first",
                 (w_id, 1, "BARBARBAR")),
                # Replicated dimension read.
                ("SELECT i_price FROM item WHERE i_id = ?", (c_id * 7,)),
            ])
        # Scatter-gather: no warehouse key bound.
        script.extend([
            ("SELECT COUNT(*) FROM district", ()),
            ("SELECT d_w_id, SUM(d_ytd) AS ytd, COUNT(*) AS n "
             "FROM district GROUP BY d_w_id ORDER BY ytd DESC, d_w_id",
             ()),
            ("SELECT w_id, w_ytd FROM warehouse ORDER BY w_ytd DESC", ()),
            ("SELECT d_id, d_next_o_id FROM district WHERE d_id = ? "
             "ORDER BY d_w_id", (3,)),
            ("SELECT DISTINCT d_next_o_id FROM district", ()),
            ("UPDATE district SET d_tax = d_tax * ? WHERE d_id > ?",
             (1.0, 7)),
            ("SELECT MIN(s_quantity), MAX(s_quantity), COUNT(*) "
             "FROM stock WHERE s_quantity BETWEEN ? AND ?", (20, 60)),
        ])
        assert_shard_equivalence(pair[0], pair[1], script)


# ---------------------------------------------------------------------------
# TPC-W (scatter joins against replicated dimensions)
# ---------------------------------------------------------------------------


def tpcw_sharding_scheme() -> ShardingScheme:
    return ShardingScheme({
        "tw_customer": TableSharding(("c_id",), "hash"),
        "tw_orders": TableSharding(("o_id",), "hash"),
        "tw_order_line": TableSharding(("ol_o_id",), "hash"),
        "tw_item": None,   # replicated
        "author": None,    # replicated
    })


@pytest.mark.parametrize("sql_exec", MODES)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
class TestTpcwMix:
    def test_browsing_statements(self, shards, sql_exec):
        from repro.workloads.tpcw import TpcwScale, make_tpcw_database

        scale = TpcwScale(items=80, authors=30, customers=40, orders=60)
        single, sharded = make_pair(
            lambda: make_tpcw_database(scale),
            tpcw_sharding_scheme(),
            shards,
            sql_exec,
        )
        script = []
        for c_id, i_id, subject, lname in (
            (1, 5, "ARTS", "last3"),
            (17, 44, "COOKING", "last11"),
            (33, 79, "HISTORY", "last29"),
        ):
            script.extend([
                # Single-shard point reads.
                ("SELECT c_fname, c_lname, c_discount FROM tw_customer "
                 "WHERE c_id = ?", (c_id,)),
                ("SELECT i_title, i_cost FROM tw_item WHERE i_id = ?",
                 (i_id,)),
                # Replicated join (pinned to the affinity shard).
                ("SELECT i.i_id, i.i_title, i.i_pub_date, a.a_lname "
                 "FROM tw_item i JOIN author a ON i.i_a_id = a.a_id "
                 "WHERE i.i_subject = ? "
                 "ORDER BY i.i_pub_date DESC, i.i_title LIMIT 10",
                 (subject,)),
                # Scatter join: sharded order lines drive, item
                # replicated; grouped aggregate merged at the router.
                ("SELECT i.i_id, i.i_title, SUM(ol.ol_qty) AS sold "
                 "FROM tw_order_line ol JOIN tw_item i "
                 "ON ol.ol_i_id = i.i_id WHERE i.i_subject = ? "
                 "GROUP BY i.i_id, i.i_title ORDER BY sold DESC LIMIT 10",
                 (subject,)),
                # Scatter via a secondary index (o_c_id is not the
                # shard key) with ORDER BY ... LIMIT merged globally.
                ("SELECT o_id, o_date, o_total FROM tw_orders "
                 "WHERE o_c_id = ? ORDER BY o_id DESC LIMIT 1", (c_id,)),
                # Single shard: ol_o_id is the shard key.
                ("SELECT ol_i_id, ol_qty FROM tw_order_line "
                 "WHERE ol_o_id = ?", (c_id,)),
            ])
        assert_shard_equivalence(single, sharded, script)


# ---------------------------------------------------------------------------
# Micro key-value mix
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("sql_exec", MODES)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
class TestMicroMix:
    def test_kv_statements(self, shards, sql_exec):
        from repro.workloads.micro import make_micro_database

        single, sharded = make_pair(
            lambda: make_micro_database(rows=64),
            ShardingScheme({"kv": TableSharding(("k",), "hash")}),
            shards,
            sql_exec,
        )
        script = [
            ("SELECT v FROM kv WHERE k = ?", (k,)) for k in range(0, 64, 7)
        ]
        script.append(("SELECT COUNT(*) FROM kv", ()))
        script.append(("SELECT k FROM kv WHERE v >= ? ORDER BY k", (0.5,)))
        script.append(("SELECT k, v FROM kv", ()))  # raw scan order
        script.append(("UPDATE kv SET v = v + ? WHERE v < ?", (1.0, 0.5)))
        script.append(("DELETE FROM kv WHERE k > ?", (57,)))
        script.append(("SELECT k, v FROM kv", ()))
        assert_shard_equivalence(single, sharded, script)


# ---------------------------------------------------------------------------
# Failure / rollback edge cases
# ---------------------------------------------------------------------------


def _grouped_factory():
    """pk (g, id), sharded by g -- id stays updatable."""
    db = Database("fail")
    db.create_table(
        "u",
        [("g", "int", False), ("id", "int", False), ("val", "int")],
        primary_key=["g", "id"],
    )
    conn = connect(db)
    for g, i, v in ((1, 1, 10), (1, 2, 20), (2, 3, 30), (2, 4, 40)):
        conn.execute("INSERT INTO u (g, id, val) VALUES (?, ?, ?)", g, i, v)
    return db, conn


GROUPED_SCHEME = ShardingScheme({"u": TableSharding(("g",), "mod")})


@pytest.mark.parametrize("sql_exec", MODES)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
class TestFailureCases:
    def test_single_shard_mid_statement_failure(self, shards, sql_exec):
        """A keyed multi-row update failing on its second row leaves
        identical partial state and undo in both deployments."""
        single, sharded = make_pair(
            _grouped_factory, GROUPED_SCHEME, shards, sql_exec
        )
        (single_db, single_conn), (sharded_db, sharded_conn) = single, sharded
        before = _single_state(single_db)
        txn_single = single_conn.begin()
        txn_sharded = sharded_conn.begin()
        sql = "UPDATE u SET id = ? WHERE g = ? AND val >= ?"
        with pytest.raises(IntegrityError) as err_single:
            single_conn.execute(sql, 7, 1, 10)
        with pytest.raises(IntegrityError) as err_sharded:
            sharded_conn.execute(sql, 7, 1, 10)
        assert str(err_single.value) == str(err_sharded.value)
        assert txn_single.undo_depth == txn_sharded.undo_depth == 1
        assert _single_state(single_db) == _sharded_state(sharded_db)
        single_conn.rollback()
        sharded_conn.rollback()
        assert _single_state(single_db) == before
        assert _sharded_state(sharded_db) == before

    def test_scatter_mid_statement_failure(self, shards, sql_exec):
        """An unkeyed update processes rows in global rowid order, so
        a mid-statement duplicate-key failure happens at the same
        global row on both deployments."""
        single, sharded = make_pair(
            _grouped_factory, GROUPED_SCHEME, shards, sql_exec
        )
        (single_db, single_conn), (sharded_db, sharded_conn) = single, sharded
        txn_single = single_conn.begin()
        txn_sharded = sharded_conn.begin()
        # Rows (1,1) and (1,2) collide on (g=1, id=7): the first
        # mutates, the second fails -- one undo record each.
        sql = "UPDATE u SET id = ? WHERE val >= ?"
        with pytest.raises(IntegrityError) as err_single:
            single_conn.execute(sql, 7, 10)
        with pytest.raises(IntegrityError) as err_sharded:
            sharded_conn.execute(sql, 7, 10)
        assert str(err_single.value) == str(err_sharded.value)
        assert txn_single.undo_depth == txn_sharded.undo_depth == 1
        assert _single_state(single_db) == _sharded_state(sharded_db)
        single_conn.rollback()
        sharded_conn.rollback()
        assert _single_state(single_db) == _sharded_state(sharded_db)

    def test_duplicate_pk_insert_fails_identically(self, shards, sql_exec):
        single, sharded = make_pair(
            _grouped_factory, GROUPED_SCHEME, shards, sql_exec
        )
        (single_db, single_conn), (sharded_db, sharded_conn) = single, sharded
        sql = "INSERT INTO u (g, id, val) VALUES (?, ?, ?)"
        with pytest.raises(IntegrityError) as err_single:
            single_conn.execute(sql, 1, 1, 99)
        with pytest.raises(IntegrityError) as err_sharded:
            sharded_conn.execute(sql, 1, 1, 99)
        assert str(err_single.value) == str(err_sharded.value)
        assert _single_state(single_db) == _sharded_state(sharded_db)

    def test_rollback_restores_scan_order(self, shards, sql_exec):
        """Delete + rollback must restore row order, not just content
        (the invariant the scatter merge depends on)."""
        single, sharded = make_pair(
            _grouped_factory, GROUPED_SCHEME, shards, sql_exec
        )
        (single_db, single_conn), (sharded_db, sharded_conn) = single, sharded
        probe = ("SELECT g, id, val FROM u", ())
        before_single = _run_statement(single_conn, *probe)
        assert before_single == _run_statement(sharded_conn, *probe)
        for conn in (single_conn, sharded_conn):
            conn.begin()
            conn.execute("DELETE FROM u WHERE id = ?", 2)
            conn.execute("INSERT INTO u (g, id, val) VALUES (?, ?, ?)",
                         2, 9, 90)
            conn.rollback()
        assert _run_statement(single_conn, *probe) == before_single
        assert _run_statement(sharded_conn, *probe) == before_single
