"""SQL tokenizer."""

import pytest

from repro.db.errors import SqlSyntaxError
from repro.db.sql.lexer import TokenKind, tokenize


def kinds(sql):
    return [t.kind for t in tokenize(sql)[:-1]]


def texts(sql):
    return [t.text for t in tokenize(sql)[:-1]]


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT select SeLeCt")
        assert all(t.kind is TokenKind.KEYWORD for t in tokens[:-1])

    def test_identifiers(self):
        tokens = tokenize("foo _bar baz_9")
        assert all(t.kind is TokenKind.IDENTIFIER for t in tokens[:-1])

    def test_integer_and_float(self):
        tokens = tokenize("42 3.25")
        assert texts("42 3.25") == ["42", "3.25"]
        assert all(t.kind is TokenKind.NUMBER for t in tokens[:-1])

    def test_string_literal(self):
        tokens = tokenize("'hello world'")
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].text == "hello world"

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].text == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_parameters(self):
        tokens = tokenize("? ?")
        assert all(t.kind is TokenKind.PARAM for t in tokens[:-1])

    def test_operators_longest_match(self):
        assert texts("a <= b <> c != d") == ["a", "<=", "b", "<>", "c", "!=", "d"]

    def test_punctuation(self):
        assert texts("(a, b.c);") == ["(", "a", ",", "b", ".", "c", ")", ";"]

    def test_line_comment_skipped(self):
        tokens = tokenize("SELECT -- a comment\n1")
        assert [t.text for t in tokens[:-1]] == ["SELECT", "1"]

    def test_eof_token_present(self):
        assert tokenize("")[-1].kind is TokenKind.EOF

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError) as excinfo:
            tokenize("SELECT @")
        assert excinfo.value.position == 7

    def test_qualified_name_tokens(self):
        assert texts("t.col") == ["t", ".", "col"]

    def test_whitespace_variants(self):
        assert texts("a\tb\nc") == ["a", "b", "c"]
