"""Replica groups: log shipping, catch-up, promotion, replica reads.

Unit-level coverage of :mod:`repro.db.replica` plus the router's
replica-aware behaviors (read-your-writes watermarks, generation
refresh) that ride on it.
"""

import pytest

from repro.db import (
    Database,
    ReplicaGroup,
    ShardDownError,
    ShardedDatabase,
    ShardingScheme,
    TableSharding,
    connect_sharded,
)
from repro.db.errors import ShardError
from repro.sim.network import NetworkModel


def make_group(n_replicas: int = 2) -> tuple[Database, ReplicaGroup]:
    primary = Database("g/shard0")
    group = ReplicaGroup(primary, n_replicas)
    primary.create_table(
        "kv", [("k", "int", False), ("v", "int")], primary_key=["k"]
    )
    group.mirror_create_table(
        "kv", [("k", "int", False), ("v", "int")], ["k"]
    )
    return primary, group


def commit_rows(primary: Database, rows) -> None:
    """Run one committed transaction inserting ``rows`` into kv."""
    from repro.db.txn import Transaction

    txn = Transaction(primary)
    table = primary.table("kv")
    for k, v in rows:
        _, undo = table.insert((k, v))
        txn.record_undo(undo)
    txn.commit()


def scan(db: Database) -> list:
    """(rowid, row) pairs in scan order."""
    return list(db.table("kv").scan())


def rows_of(db: Database) -> list:
    return [row for _, row in db.table("kv").scan()]


class TestLogShipping:
    def test_commit_ships_to_every_replica(self):
        primary, group = make_group()
        commit_rows(primary, [(1, 10), (2, 20)])
        assert group.log.tip == 1
        for replica in group.replicas:
            assert replica.applied_lsn == 1
            assert scan(replica.database) == scan(primary)
        assert group.stats.entries_shipped == 2  # one entry x 2 replicas
        assert group.stats.ops_shipped == 4

    def test_update_and_delete_after_images(self):
        from repro.db.txn import Transaction

        primary, group = make_group(n_replicas=1)
        commit_rows(primary, [(1, 10), (2, 20)])
        table = primary.table("kv")
        txn = Transaction(primary)
        (rowid, _), = [
            (rid, r) for rid, r in table.scan() if r[0] == 1
        ]
        txn.record_undo(table.update(rowid, {"v": 99}))
        (rowid2, _), = [
            (rid, r) for rid, r in table.scan() if r[0] == 2
        ]
        txn.record_undo(table.delete(rowid2))
        txn.commit()
        group.assert_replicas_consistent()
        assert rows_of(group.replicas[0].database) == [(1, 99)]

    def test_rollback_ships_nothing(self):
        from repro.db.txn import Transaction

        primary, group = make_group(n_replicas=1)
        txn = Transaction(primary)
        table = primary.table("kv")
        _, undo = table.insert((5, 50))
        txn.record_undo(undo)
        txn.rollback()
        assert group.log.tip == 0
        assert rows_of(group.replicas[0].database) == []

    def test_bootstrap_insert_bypasses_the_log(self):
        primary, group = make_group(n_replicas=1)
        table = primary.table("kv")
        rowid, _ = table.insert((7, 70))
        group.bootstrap_insert("kv", rowid, table.fetch(rowid))
        assert group.log.tip == 0
        assert rows_of(group.replicas[0].database) == [(7, 70)]
        group.assert_replicas_consistent()


class TestPartitionAndCatchUp:
    def test_disconnected_replica_falls_behind_then_catches_up(self):
        primary, group = make_group(n_replicas=2)
        group.set_replica_connected(1, False)
        commit_rows(primary, [(1, 10)])
        commit_rows(primary, [(2, 20)])
        assert group.replicas[0].applied_lsn == 2
        assert group.replicas[1].applied_lsn == 0
        assert group.replication_lag() == [0, 2]
        group.set_replica_connected(1, True)  # reconnect = catch-up
        assert group.replicas[1].applied_lsn == 2
        group.assert_replicas_consistent()

    def test_partitioned_link_counts_drops_and_ship_failures(self):
        primary, group = make_group(n_replicas=1)
        link = NetworkModel()
        group.replicas[0].link = link
        commit_rows(primary, [(1, 10)])
        assert link.app_to_db.messages == 1
        link.set_link_down(True)
        commit_rows(primary, [(2, 20)])
        assert group.stats.ship_failures == 1
        assert link.app_to_db.dropped == 1
        assert group.replicas[0].applied_lsn == 1
        link.set_link_down(False)
        assert group.catch_up(0) == 2
        group.assert_replicas_consistent()

    def test_degraded_link_counts_delayed_messages(self):
        primary, group = make_group(n_replicas=1)
        link = NetworkModel()
        group.replicas[0].link = link
        link.set_latency_multiplier(4.0)
        commit_rows(primary, [(1, 10)])
        assert link.app_to_db.delayed == 1
        assert group.replicas[0].applied_lsn == 1


class TestPromotion:
    def test_tie_breaks_to_lowest_index(self):
        primary, group = make_group(n_replicas=3)
        commit_rows(primary, [(1, 10)])
        group.crash_primary()
        report = group.promote()
        assert report.chosen == 0
        assert report.replayed == 0
        assert report.generation == 1

    def test_most_caught_up_wins_and_replays_tail(self):
        primary, group = make_group(n_replicas=2)
        group.set_replica_connected(0, False)  # replica 0 falls behind
        commit_rows(primary, [(1, 10)])
        commit_rows(primary, [(2, 20)])
        before = scan(primary)
        group.crash_primary()
        assert group.crashed
        report = group.promote()
        assert report.chosen == 1
        assert report.replayed == 0
        assert not group.crashed
        assert scan(group.primary) == before
        # The straggler survivor is caught up by the new primary.
        assert group.replicas[0].applied_lsn == 0  # still partitioned
        group.set_replica_connected(0, True)
        group.assert_replicas_consistent()

    def test_promotion_replays_missing_tail_into_the_winner(self):
        primary, group = make_group(n_replicas=1)
        commit_rows(primary, [(1, 10)])
        group.set_replica_connected(0, False)
        commit_rows(primary, [(2, 20)])
        commit_rows(primary, [(3, 30)])
        before = scan(primary)
        group.crash_primary()
        report = group.promote()
        assert report.replayed == 2
        assert scan(group.primary) == before

    def test_writes_continue_with_global_rowids_after_promotion(self):
        primary, group = make_group(n_replicas=1)
        commit_rows(primary, [(1, 10)])
        group.crash_primary()
        group.promote()
        # The promoted primary allocates from the shared counter, so
        # new rowids continue where the dead primary stopped.
        old_rowids = {rid for rid, _ in group.primary.table("kv").scan()}
        commit_rows(group.primary, [(2, 20)])
        new_rowids = {rid for rid, _ in group.primary.table("kv").scan()}
        assert max(new_rowids - old_rowids) > max(old_rowids)

    def test_promote_with_no_replicas_left_raises(self):
        primary, group = make_group(n_replicas=1)
        group.crash_primary()
        group.promote()
        group.crash_primary()
        with pytest.raises(ShardError):
            group.promote()

    def test_group_needs_at_least_one_replica(self):
        with pytest.raises(ShardError):
            ReplicaGroup(Database("x"), 0)


def make_replicated_sdb(replicas: int = 1) -> ShardedDatabase:
    sdb = ShardedDatabase(
        "r",
        shards=2,
        scheme=ShardingScheme(
            {"kv": TableSharding(columns=("k",), strategy="mod")}
        ),
        replicas=replicas,
    )
    sdb.create_table(
        "kv", [("k", "int", False), ("v", "int")], primary_key=["k"]
    )
    for k in range(8):
        sdb.insert("kv", (k, 10 * k))
    return sdb


class TestRouterIntegration:
    def test_crashed_shard_raises_shard_down(self):
        sdb = make_replicated_sdb()
        conn = connect_sharded(sdb)
        sdb.crash_primary(1)
        with pytest.raises(ShardDownError):
            conn.query("SELECT v FROM kv WHERE k = ?", 1)
        # Shard 0 still serves.
        rows = conn.query("SELECT v FROM kv WHERE k = ?", 2)
        assert [r.as_tuple() for r in rows] == [(20,)]

    def test_promotion_refreshes_cached_plans(self):
        sdb = make_replicated_sdb()
        conn = connect_sharded(sdb)
        stmt = conn.prepare("SELECT v FROM kv WHERE k = ?")
        assert [r.as_tuple() for r in stmt.query(1)] == [(10,)]
        before = [r.as_tuple() for r in stmt.query(3)]
        sdb.crash_primary(1)
        report = sdb.promote(1)
        assert report.generation == 1
        # Same prepared statement keeps working against the promoted
        # primary (the router re-mints per-shard state by generation).
        assert [r.as_tuple() for r in stmt.query(3)] == before
        conn.execute("UPDATE kv SET v = ? WHERE k = ?", 999, 3)
        assert [r.as_tuple() for r in stmt.query(3)] == [(999,)]
        sdb.assert_replica_groups_consistent()

    def test_read_your_writes_watermarks(self):
        sdb = make_replicated_sdb()
        conn = connect_sharded(sdb, replica_reads=True)
        # Fresh session: replica offload serves reads immediately.
        rows = conn.query("SELECT v FROM kv WHERE k = ?", 1)
        assert [r.as_tuple() for r in rows] == [(10,)]
        assert conn.replica_read_count == 1
        # Disconnect shard 1's replica, then write through shard 1:
        # the session watermark now exceeds the replica's applied LSN,
        # so the next read must fall back to the primary.
        group = sdb.groups[1]
        group.set_replica_connected(0, False)
        conn.execute("UPDATE kv SET v = ? WHERE k = ?", 111, 1)
        offloaded = conn.replica_read_count
        rows = conn.query("SELECT v FROM kv WHERE k = ?", 1)
        assert [r.as_tuple() for r in rows] == [(111,)]
        assert conn.replica_read_count == offloaded
        # Reconnect (catch-up): the replica satisfies the watermark
        # again and serves the stale-safe read.
        group.set_replica_connected(0, True)
        rows = conn.query("SELECT v FROM kv WHERE k = ?", 1)
        assert [r.as_tuple() for r in rows] == [(111,)]
        assert conn.replica_read_count == offloaded + 1


class TestLogRetentionAndTruncation:
    def test_truncate_below_keeps_lsn_numbering(self):
        primary, group = make_group(n_replicas=1)
        for k in range(4):
            commit_rows(primary, [(k, k)])
        assert group.log.tip == 4
        assert group.log.truncate_below(2) == 2
        assert group.log.base_lsn == 2
        assert group.log.tip == 4  # truncation never renumbers
        assert group.log.stats.truncated == 2
        assert [e.lsn for e in group.log.entries_after(2)] == [3, 4]
        # Idempotent below the base.
        assert group.log.truncate_below(1) == 0

    def test_entries_after_below_base_requires_resync(self):
        primary, group = make_group(n_replicas=1)
        for k in range(3):
            commit_rows(primary, [(k, k)])
        group.log.truncate_below(2)
        with pytest.raises(ShardError) as err:
            group.log.entries_after(0)
        assert "resync" in str(err.value)

    def test_retention_bounds_the_log_when_replicas_keep_up(self):
        primary, group = make_group(n_replicas=2)
        group.retention = 2
        for k in range(10):
            commit_rows(primary, [(k, k)])
        # Every replica applied everything, so truncation runs to the
        # tip whenever the log exceeds the retention window.
        assert len(group.log.entries) <= 2
        assert group.log.stats.truncated >= 8
        group.assert_replicas_consistent()

    def test_partitioned_replica_does_not_pin_the_log(self):
        primary, group = make_group(n_replicas=2)
        group.retention = 2
        group.set_replica_connected(1, False)
        for k in range(6):
            commit_rows(primary, [(k, k)])
        # The floor is the *connected* minimum: replica 0's position.
        assert group.log.base_lsn == 6
        assert group.replicas[1].applied_lsn == 0
        # Reconnect: its position is below the base, so catch-up is a
        # full resync instead of an impossible replay.
        group.set_replica_connected(1, True)
        assert group.stats.resyncs == 1
        assert group.replicas[1].applied_lsn == 6
        group.assert_replicas_consistent()

    def test_fully_partitioned_group_truncates_nothing(self):
        primary, group = make_group(n_replicas=2)
        group.retention = 1
        group.set_replica_connected(0, False)
        group.set_replica_connected(1, False)
        for k in range(5):
            commit_rows(primary, [(k, k)])
        # Dropping entries nobody applied would force resyncs on every
        # reconnect; the policy waits for at least one connected peer.
        assert group.log.base_lsn == 0
        assert len(group.log.entries) == 5
        group.set_replica_connected(0, True)
        group.set_replica_connected(1, True)
        assert group.stats.resyncs == 0  # plain catch-up sufficed
        group.assert_replicas_consistent()
