"""Experiment shape assertions (fast mode).

These are the paper's headline claims, checked end to end: who wins,
where the crossovers are, and that the dynamic switcher adapts.  The
full sweeps live in benchmarks/.
"""

import pytest

from repro.bench.experiments import fig14, micro1
from repro.bench.report import format_fig14, format_micro1


class TestFig14:
    @pytest.fixture(scope="class")
    def result(self):
        return fig14()

    def test_three_partitions_distinct(self, result):
        fractions = [result.fractions_on_db[p] for p in result.partitions]
        assert fractions[0] == 0.0
        assert fractions[0] < fractions[1] < fractions[2]

    def test_paper_diagonal(self, result):
        # Figure 14's highlighted diagonal: each load level is won by
        # the partition generated for it.
        assert result.best_for("no_load") == "DB"
        assert result.best_for("partial_load") == "APP-DB"
        assert result.best_for("full_load") == "APP"

    def test_all_times_positive(self, result):
        assert all(t > 0 for t in result.times.values())

    def test_load_slows_everyone(self, result):
        for partition in result.partitions:
            assert (
                result.times[(partition, "full_load")]
                > result.times[(partition, "no_load")]
            )

    def test_report_renders(self, result):
        text = format_fig14(result)
        assert "APP-DB" in text and "*" in text


class TestMicro1:
    def test_overhead_is_constant_factor(self):
        # The runtime is slower by a constant factor (the paper's claim;
        # their Java runtime measured ~6x, our Python block interpreter
        # is a larger constant -- see EXPERIMENTS.md).
        # More repeats than the defaults: single-run wall-clock samples
        # at this scale flake under CI scheduler noise.
        small = micro1(n=100, repeats=4)
        large = micro1(n=400, repeats=4)
        assert small.overhead > 1.0
        assert large.overhead > 1.0
        # Constant factor: overhead should not explode with n.
        assert large.overhead < small.overhead * 8

    def test_results_equal(self):
        result = micro1(n=100, repeats=3)
        assert result.pyxis_seconds > result.native_seconds

    def test_report_renders(self):
        text = format_micro1(micro1(n=50, repeats=1))
        assert "overhead" in text
