"""Report formatting."""

import pytest

from repro.bench.experiments import (
    CurvePoint,
    ExperimentResult,
    Fig11Result,
    Fig14Result,
    Micro1Result,
)
from repro.bench.report import (
    format_curves,
    format_fig11,
    format_fig14,
    format_micro1,
)


def point(rate, latency_ms):
    return CurvePoint(
        offered_rate=rate, throughput=rate, latency_ms=latency_ms,
        p95_latency_ms=latency_ms * 2, app_util=0.1, db_util=0.5,
        net_kb_per_sec=100.0,
    )


class TestExperimentResult:
    def make(self):
        result = ExperimentResult(name="test", notes={"db_cores": 16})
        result.curves["jdbc"] = [point(100, 30.0), point(200, 40.0)]
        result.curves["manual"] = [point(100, 10.0), point(200, 12.0)]
        return result

    def test_best_latency(self):
        result = self.make()
        assert result.best_latency("jdbc") == 30.0
        assert result.best_latency("manual") == 10.0

    def test_max_throughput_with_cap(self):
        result = self.make()
        assert result.max_throughput("jdbc", latency_cap_ms=35.0) == 100
        assert result.max_throughput("jdbc") == 200
        assert result.max_throughput("jdbc", latency_cap_ms=1.0) == 0.0

    def test_format_curves_contains_all_impls(self):
        text = format_curves(self.make())
        assert "jdbc" in text and "manual" in text
        assert "30.00" in text


class TestFig11Formatting:
    def test_renders_series_and_mix(self):
        result = Fig11Result(load_time=30.0, rate=100.0)
        result.buckets = {
            "jdbc": [(15.0, 0.05), (45.0, 0.05)],
            "manual": [(15.0, 0.01), (45.0, 0.09)],
            "pyxis": [(15.0, 0.012), (45.0, 0.055)],
        }
        result.pyxis_mix = [(15.0, {"jdbc_like": 0.0}), (45.0, {"jdbc_like": 1.0})]
        text = format_fig11(result)
        assert "dynamic switching" in text
        assert "jdbc" in text and "pyxis" in text


class TestFig14Formatting:
    def test_marks_winner_per_load(self):
        result = Fig14Result(
            partitions=["APP", "DB"], loads=["no_load", "full_load"]
        )
        result.times = {
            ("APP", "no_load"): 2.0,
            ("APP", "full_load"): 1.0,
            ("DB", "no_load"): 1.0,
            ("DB", "full_load"): 5.0,
        }
        assert result.best_for("no_load") == "DB"
        assert result.best_for("full_load") == "APP"
        text = format_fig14(result)
        assert text.count("*") >= 2


class TestMicro1Formatting:
    def test_overhead_reported(self):
        result = Micro1Result(
            native_seconds=0.001, pyxis_seconds=0.1, n=100, repeats=3
        )
        assert result.overhead == pytest.approx(100.0)
        assert "100.0x" in format_micro1(result)

    def test_zero_native_time_guarded(self):
        result = Micro1Result(
            native_seconds=0.0, pyxis_seconds=0.1, n=10, repeats=1
        )
        assert result.overhead == float("inf")
