"""Baseline runners and trace collection."""

import pytest

from repro.bench.harness import (
    BaselineMode,
    TraceSet,
    run_baseline_traced,
    sweep,
    tag_lock_groups,
)
from repro.core.pipeline import Pyxis
from repro.sim.cluster import Cluster
from repro.sim.queueing import StageKind
from tests.conftest import (
    ORDER_ENTRY_POINTS,
    ORDER_SOURCE,
    make_order_database,
)


@pytest.fixture(scope="module")
def program():
    from repro.lang import parse_source

    return parse_source(ORDER_SOURCE, entry_points=ORDER_ENTRY_POINTS)


class TestBaselines:
    def test_jdbc_charges_round_trip_per_db_call(self, program):
        _, conn = make_order_database()
        cluster = Cluster()
        result, trace = run_baseline_traced(
            program, conn, cluster, "Order", "place_order", (7, 0.9),
            BaselineMode.JDBC,
        )
        assert result == pytest.approx(54.0)
        assert trace.round_trips == 5  # one per DB call
        assert trace.app_cpu > 0
        assert trace.db_cpu > 0

    def test_manual_single_round_trip(self, program):
        _, conn = make_order_database()
        cluster = Cluster()
        result, trace = run_baseline_traced(
            program, conn, cluster, "Order", "place_order", (7, 0.9),
            BaselineMode.MANUAL,
        )
        assert result == pytest.approx(54.0)
        assert trace.round_trips == 1
        # Manual runs all program logic on the DB server.
        assert trace.app_cpu == 0.0

    def test_jdbc_latency_exceeds_manual(self, program):
        from repro.sim.queueing import SimNetworkParams

        network = SimNetworkParams()
        latencies = {}
        for mode in BaselineMode:
            _, conn = make_order_database()
            cluster = Cluster()
            _, trace = run_baseline_traced(
                program, conn, cluster, "Order", "place_order", (7, 0.9),
                mode,
            )
            latencies[mode] = trace.unloaded_latency(network)
        assert latencies[BaselineMode.JDBC] > 2 * latencies[BaselineMode.MANUAL]

    def test_jdbc_sends_more_bytes(self, program):
        byte_totals = {}
        for mode in BaselineMode:
            _, conn = make_order_database()
            cluster = Cluster()
            _, trace = run_baseline_traced(
                program, conn, cluster, "Order", "place_order", (7, 0.9),
                mode,
            )
            byte_totals[mode] = trace.bytes_to_db + trace.bytes_to_app
        assert byte_totals[BaselineMode.JDBC] > byte_totals[BaselineMode.MANUAL]


class TestTraceSet:
    def test_add_and_names(self, program):
        ts = TraceSet()
        _, conn = make_order_database()
        cluster = Cluster()
        _, trace = run_baseline_traced(
            program, conn, cluster, "Order", "place_order", (7, 0.9),
            BaselineMode.JDBC,
        )
        ts.add("jdbc", trace)
        assert ts.names() == ["jdbc"]
        assert ts.mean_trace("jdbc") is trace

    def test_tag_lock_groups(self, program):
        _, conn = make_order_database()
        cluster = Cluster()
        _, trace = run_baseline_traced(
            program, conn, cluster, "Order", "place_order", (7, 0.9),
            BaselineMode.MANUAL,
        )
        tagged = tag_lock_groups(trace, 20)
        assert tagged.lock_groups == 20
        assert tagged.stages == trace.stages

    def test_sweep_runs_each_rate(self, program):
        ts = TraceSet()
        for mode in BaselineMode:
            _, conn = make_order_database()
            cluster = Cluster()
            _, trace = run_baseline_traced(
                program, conn, cluster, "Order", "place_order", (7, 0.9),
                mode,
            )
            ts.add(mode.value, trace)
        curves = sweep(
            ts, rates=[20, 40], duration=5.0, app_cores=8, db_cores=16
        )
        assert set(curves) == {"jdbc", "manual"}
        for results in curves.values():
            assert len(results) == 2
