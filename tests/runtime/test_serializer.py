"""Wire copies and sizes."""

import pytest

from repro.db.jdbc import ResultSet, Row
from repro.db.sql.executor import StatementResult
from repro.runtime.heap import NativeRef, ObjRef
from repro.runtime.serializer import wire_copy, wire_size


class TestWireCopy:
    def test_primitives_pass_through(self):
        for value in (None, True, 3, 2.5, "x"):
            assert wire_copy(value) == value

    def test_list_is_deep_copied(self):
        original = [1, [2, 3]]
        copy = wire_copy(original)
        copy[1].append(4)
        assert original == [1, [2, 3]]

    def test_refs_stay_refs(self):
        obj = ObjRef(1, "T")
        nat = NativeRef(2, 5)
        assert wire_copy(obj) is obj
        assert wire_copy(nat) is nat

    def test_list_of_refs(self):
        obj = ObjRef(1, "T")
        copied = wire_copy([obj, 2])
        assert copied[0] is obj

    def test_row_copy_equal_but_rebuilt(self):
        row = Row(["a", "b"], (1, "x"))
        copy = wire_copy(row)
        assert copy == row
        assert copy is not row

    def test_result_set_copy_isolated(self):
        rs = ResultSet(
            StatementResult(columns=["a"], rows=[(1,), (2,)], rowcount=2)
        )
        copy = wire_copy(rs)
        assert [r["a"] for r in copy] == [1, 2]
        assert copy is not rs

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            wire_copy(object())


class TestWireSize:
    def test_refs_are_small(self):
        assert wire_size(ObjRef(1, "LongClassName")) == 12

    def test_larger_payloads_cost_more(self):
        assert wire_size([1.0] * 100) > wire_size([1.0] * 10)
        assert wire_size("x" * 100) > wire_size("x")

    def test_none_nearly_free(self):
        assert wire_size(None) <= 1
