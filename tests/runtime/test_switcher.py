"""Dynamic partition switching (Section 6.3)."""

import pytest

from repro.runtime.switcher import DynamicSwitcher, SwitcherConfig


def make_switcher(**kwargs):
    config = SwitcherConfig(**kwargs) if kwargs else SwitcherConfig()
    return DynamicSwitcher(["low_budget", "high_budget"], config)


class TestDynamicSwitcher:
    def test_defaults_match_paper(self):
        config = SwitcherConfig()
        assert config.alpha == 0.2
        assert config.poll_interval == 10.0
        assert config.threshold_percent == 40.0

    def test_starts_on_high_budget(self):
        switcher = make_switcher()
        assert switcher.choose() == "high_budget"

    def test_switches_to_low_budget_under_load(self):
        switcher = make_switcher()
        switcher.observe_load(0.0, 90.0)
        assert switcher.choose() == "low_budget"

    def test_stays_high_when_idle(self):
        switcher = make_switcher()
        switcher.observe_load(0.0, 10.0)
        assert switcher.choose() == "high_budget"

    def test_poll_interval_suppresses_rapid_samples(self):
        switcher = make_switcher()
        switcher.observe_load(0.0, 10.0)
        # A burst 1s later is ignored (poll every 10s).
        switcher.observe_load(1.0, 100.0)
        assert switcher.choose() == "high_budget"
        switcher.observe_load(11.0, 100.0)
        assert switcher.choose() == "low_budget"

    def test_ewma_delays_switch(self):
        # Paper: "due to the use of EWMA, it took a short period of
        # time for Pyxis to adapt to load changes".
        switcher = make_switcher(alpha=0.8, poll_interval=1.0,
                                 threshold_percent=40.0)
        switcher.observe_load(0.0, 0.0)
        switcher.observe_load(1.0, 100.0)  # level = 0.8*0 + 0.2*100 = 20
        assert switcher.choose() == "high_budget"
        switcher.observe_load(2.0, 100.0)  # 36
        assert switcher.choose() == "high_budget"
        switcher.observe_load(3.0, 100.0)  # 48.8 > 40
        assert switcher.choose() == "low_budget"

    def test_recovers_when_load_drops(self):
        switcher = make_switcher(alpha=0.2, poll_interval=1.0)
        switcher.observe_load(0.0, 90.0)
        assert switcher.choose() == "low_budget"
        for t in range(1, 6):
            switcher.observe_load(float(t), 5.0)
        assert switcher.choose() == "high_budget"

    def test_history_recorded(self):
        switcher = make_switcher(poll_interval=1.0)
        switcher.observe_load(0.0, 50.0)
        switcher.observe_load(1.0, 60.0)
        assert len(switcher.history) == 2

    def test_requires_options(self):
        with pytest.raises(ValueError):
            DynamicSwitcher([])

    def test_single_option_always_chosen(self):
        switcher = DynamicSwitcher(["only"])
        switcher.observe_load(0.0, 99.0)
        assert switcher.choose() == "only"

    def test_low_high_properties(self):
        switcher = make_switcher()
        assert switcher.low_budget == "low_budget"
        assert switcher.high_budget == "high_budget"
