"""Dynamic partition switching (Section 6.3)."""

import pytest

from repro.runtime.switcher import DynamicSwitcher, SwitchEvent, SwitcherConfig


def make_switcher(**kwargs):
    config = SwitcherConfig(**kwargs) if kwargs else SwitcherConfig()
    return DynamicSwitcher(["low_budget", "high_budget"], config)


class TestDynamicSwitcher:
    def test_defaults_match_paper(self):
        config = SwitcherConfig()
        assert config.alpha == 0.2
        assert config.poll_interval == 10.0
        assert config.threshold_percent == 40.0

    def test_starts_on_high_budget(self):
        switcher = make_switcher()
        assert switcher.choose() == "high_budget"

    def test_switches_to_low_budget_under_load(self):
        switcher = make_switcher()
        switcher.observe_load(0.0, 90.0)
        assert switcher.choose() == "low_budget"

    def test_stays_high_when_idle(self):
        switcher = make_switcher()
        switcher.observe_load(0.0, 10.0)
        assert switcher.choose() == "high_budget"

    def test_poll_interval_suppresses_rapid_samples(self):
        switcher = make_switcher()
        switcher.observe_load(0.0, 10.0)
        # A burst 1s later is ignored (poll every 10s).
        switcher.observe_load(1.0, 100.0)
        assert switcher.choose() == "high_budget"
        switcher.observe_load(11.0, 100.0)
        assert switcher.choose() == "low_budget"

    def test_ewma_delays_switch(self):
        # Paper: "due to the use of EWMA, it took a short period of
        # time for Pyxis to adapt to load changes".
        switcher = make_switcher(alpha=0.8, poll_interval=1.0,
                                 threshold_percent=40.0)
        switcher.observe_load(0.0, 0.0)
        switcher.observe_load(1.0, 100.0)  # level = 0.8*0 + 0.2*100 = 20
        assert switcher.choose() == "high_budget"
        switcher.observe_load(2.0, 100.0)  # 36
        assert switcher.choose() == "high_budget"
        switcher.observe_load(3.0, 100.0)  # 48.8 > 40
        assert switcher.choose() == "low_budget"

    def test_recovers_when_load_drops(self):
        switcher = make_switcher(alpha=0.2, poll_interval=1.0)
        switcher.observe_load(0.0, 90.0)
        assert switcher.choose() == "low_budget"
        for t in range(1, 6):
            switcher.observe_load(float(t), 5.0)
        assert switcher.choose() == "high_budget"

    def test_history_recorded(self):
        switcher = make_switcher(poll_interval=1.0)
        switcher.observe_load(0.0, 50.0)
        switcher.observe_load(1.0, 60.0)
        assert len(switcher.history) == 2

    def test_requires_options(self):
        with pytest.raises(ValueError):
            DynamicSwitcher([])

    def test_single_option_always_chosen(self):
        switcher = DynamicSwitcher(["only"])
        switcher.observe_load(0.0, 99.0)
        assert switcher.choose() == "only"

    def test_low_high_properties(self):
        switcher = make_switcher()
        assert switcher.low_budget == "low_budget"
        assert switcher.high_budget == "high_budget"


class TestBoundedHistory:
    def test_history_is_a_ring_buffer(self):
        switcher = make_switcher(poll_interval=1.0, history_limit=10)
        for t in range(100):
            switcher.observe_load(float(t), 50.0)
        assert len(switcher.history) == 10
        # Oldest entries rolled off; the tail is the most recent polls.
        assert switcher.history[0][0] == 90.0
        assert switcher.history[-1][0] == 99.0
        assert switcher.samples_total == 100

    def test_invalid_history_limit_rejected(self):
        with pytest.raises(ValueError):
            SwitcherConfig(history_limit=0)

    def test_switch_events_recorded(self):
        switcher = make_switcher(poll_interval=1.0)
        switcher.observe_load(0.0, 10.0)   # high budget
        switcher.observe_load(1.0, 100.0)  # EWMA jumps to 82%: switch
        switcher.observe_load(2.0, 100.0)  # no further change
        switcher.observe_load(3.0, 100.0)
        events = list(switcher.switch_events)
        assert len(events) == 1
        event = events[0]
        assert isinstance(event, SwitchEvent)
        assert (event.from_index, event.to_index) == (1, 0)
        assert event.level > 40.0
        assert switcher.switches_total == 1

    def test_summary_survives_ring_rollover(self):
        switcher = make_switcher(poll_interval=1.0, history_limit=4)
        loads = [10.0, 100.0, 100.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0]
        for t, load in enumerate(loads):
            switcher.observe_load(float(t), load)
        summary = switcher.summary(recent=3)
        assert summary.samples == len(loads)
        assert summary.switches == 2  # high -> low -> high
        assert summary.current_index == 1
        assert len(summary.recent) == 3
        assert summary.last_sample_at == float(len(loads) - 1)
        # The ring only holds 4 samples but totals are preserved.
        assert len(switcher.history) == 4

    def test_summary_on_fresh_switcher(self):
        switcher = make_switcher()
        summary = switcher.summary()
        assert summary.samples == 0
        assert summary.switches == 0
        assert summary.recent == []
        assert summary.last_sample_at is None


class TestAddOption:
    def test_appended_option_becomes_idle_choice(self):
        switcher = make_switcher()
        index = switcher.add_option("minted")
        assert index == 2
        assert switcher.high_budget == "minted"
        # Idle (no samples): the highest-budget option is chosen.
        assert switcher.choose() == "minted"
        assert switcher.current_index() == 2

    def test_low_budget_refuge_preserved_under_load(self):
        switcher = make_switcher(poll_interval=1.0)
        switcher.add_option("minted")
        for t in range(6):
            switcher.observe_load(float(t), 95.0)
        assert switcher.choose() == "low_budget"

    def test_existing_indices_never_shift(self):
        # The serve engine uses positional indices as workload option
        # ids, so appending must be the only growth mode.
        switcher = make_switcher()
        switcher.add_option("minted_a")
        switcher.add_option("minted_b")
        assert switcher.options == [
            "low_budget", "high_budget", "minted_a", "minted_b"
        ]
