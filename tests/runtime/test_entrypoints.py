"""Entry-point wrappers."""

import pytest

from repro.runtime.entrypoints import PartitionedApp
from repro.sim.cluster import Cluster
from tests.conftest import make_order_database


class TestPartitionedApp:
    def test_invoke_returns_plain_result(self, order_partitions):
        _, conn = make_order_database()
        app = PartitionedApp(
            order_partitions.highest().compiled, Cluster(), conn
        )
        assert app.invoke("Order", "place_order", 7, 0.9) == pytest.approx(54.0)

    def test_invoke_traced_outcome_fields(self, order_partitions):
        _, conn = make_order_database()
        app = PartitionedApp(
            order_partitions.highest().compiled, Cluster(), conn
        )
        outcome = app.invoke_traced("Order", "place_order", 7, 0.9)
        assert outcome.latency > 0
        assert outcome.trace.stages
        assert outcome.control_transfers >= 1
        assert outcome.trace.name.endswith("Order.place_order")

    def test_trace_latency_consistent_with_stages(self, order_partitions):
        from repro.sim.queueing import SimNetworkParams

        _, conn = make_order_database()
        cluster = Cluster()
        app = PartitionedApp(
            order_partitions.highest().compiled, cluster, conn
        )
        outcome = app.invoke_traced("Order", "place_order", 7, 0.9)
        network = SimNetworkParams(
            one_way_latency=cluster.config.one_way_latency,
            bandwidth=cluster.config.bandwidth,
            per_message_overhead=cluster.config.per_message_overhead,
        )
        # Unloaded replay of the trace equals the recorded latency.
        assert outcome.trace.unloaded_latency(network) == pytest.approx(
            outcome.latency, rel=1e-6
        )

    def test_stats_accumulate_across_invocations(self, order_partitions):
        _, conn = make_order_database()
        app = PartitionedApp(
            order_partitions.lowest().compiled, Cluster(), conn
        )
        first = app.invoke_traced("Order", "place_order", 7, 0.9)
        conn.execute("DELETE FROM line_item")
        second = app.invoke_traced("Order", "place_order", 7, 0.9)
        # Per-invocation deltas stay per-invocation.
        assert first.db_round_trips == second.db_round_trips

    def test_result_set_results_unwrapped(self):
        """Entry points returning a query result hand back the plain
        result set, not an internal NativeRef."""
        from repro.core.pipeline import Pyxis
        from repro.db import Database, connect
        from repro.db.jdbc import ResultSet

        source = '''
class Q:
    def fetch(self, x):
        rs = self.db.query("SELECT k FROM kv WHERE k >= ?", x)
        return rs
'''
        db = Database()
        db.create_table("kv", [("k", "int", False)], primary_key=["k"])
        conn = connect(db)
        for k in range(4):
            conn.execute("INSERT INTO kv (k) VALUES (?)", k)
        pyx = Pyxis.from_source(source, [("Q", "fetch")])
        profile = pyx.profile_with(conn, lambda p: p.invoke("Q", "fetch", 0))
        part = pyx.partition(profile, budgets=[1e9]).partitions[0]
        app = PartitionedApp(part.compiled, Cluster(), conn)
        result = app.invoke("Q", "fetch", 2)
        assert isinstance(result, ResultSet)
        assert [r["k"] for r in result] == [2, 3]


class TestInvokeProfiled:
    def test_counts_returned_and_result_intact(self, order_partitions):
        _, conn = make_order_database()
        app = PartitionedApp(
            order_partitions.highest().compiled, Cluster(), conn
        )
        outcome, sid_counts = app.invoke_profiled(
            "Order", "place_order", 7, 0.9
        )
        assert outcome.result == pytest.approx(54.0)
        assert sid_counts
        assert all(
            isinstance(sid, int) and count > 0
            for sid, count in sid_counts.items()
        )
        # The loop body executed once per costs row (3 rows loaded).
        assert max(sid_counts.values()) >= 3

    def test_deltas_are_per_invocation(self, order_partitions):
        _, conn = make_order_database()
        app = PartitionedApp(
            order_partitions.lowest().compiled, Cluster(), conn
        )
        _, first = app.invoke_profiled("Order", "place_order", 7, 0.9)
        conn.execute("DELETE FROM line_item")
        _, second = app.invoke_profiled("Order", "place_order", 7, 0.9)
        assert first == second

    def test_both_interpreters_count_identically(self, order_partitions):
        counts = {}
        for interp in ("tree", "compiled"):
            _, conn = make_order_database()
            app = PartitionedApp(
                order_partitions.highest().compiled, Cluster(), conn,
                interp=interp,
            )
            _, counts[interp] = app.invoke_profiled(
                "Order", "place_order", 7, 0.9
            )
        assert counts["tree"] == counts["compiled"]
