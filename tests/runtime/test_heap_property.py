"""Property test: heap synchronization never yields stale reads.

Simulates the runtime's protocol directly: a single thread of control
alternates between two heap stores, writing and reading fields, with
dirty updates shipped at every control transfer (everything ships).
After every read, the observed value must equal the most recent write,
no matter how control bounced between servers.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition_graph import Placement
from repro.runtime.heap import HeapStore, ObjRef
from repro.runtime.serializer import wire_copy

FIELDS = ["a", "b", "c"]

# An action is (kind, field, value): kind 0=write, 1=read, 2=transfer.
actions = st.lists(
    st.tuples(
        st.integers(0, 2),
        st.sampled_from(FIELDS),
        st.integers(0, 1000),
    ),
    max_size=60,
)


@settings(max_examples=80, deadline=None)
@given(actions)
def test_reads_always_see_latest_write(script):
    stores = {
        Placement.APP: HeapStore(Placement.APP),
        Placement.DB: HeapStore(Placement.DB),
    }
    obj = ObjRef(1, "T")
    for store in stores.values():
        store.register_object(obj)
    side = Placement.APP
    model: dict[str, int] = {}

    for kind, field, value in script:
        store = stores[side]
        if kind == 0:
            store.write_field(obj, field, value)
            model[field] = value
        elif kind == 1:
            if field in model:
                # The current side must have the latest value: either it
                # wrote it or a transfer delivered it.
                assert store.read_field(obj, field) == model[field]
        else:
            # Control transfer: ship all dirty state, then switch.
            fields, natives = store.collect_updates({}, {}, {})
            target = stores[side.other]
            target.apply_updates(
                {k: wire_copy(v) for k, v in fields.items()},
                {k: wire_copy(v) for k, v in natives.items()},
            )
            side = side.other

    # Final check from whichever side holds control, after one last sync.
    fields, natives = stores[side].collect_updates({}, {}, {})
    stores[side.other].apply_updates(fields, natives)
    for field, value in model.items():
        for store in stores.values():
            assert store.read_field(obj, field) == value
