"""Distributed heap stores."""

import pytest

from repro.core.partition_graph import Placement
from repro.runtime.heap import HeapError, HeapStore, NativeRef, ObjRef


@pytest.fixture()
def heap():
    return HeapStore(Placement.APP)


class TestObjects:
    def test_write_then_read(self, heap):
        ref = ObjRef(1, "Order")
        heap.register_object(ref)
        heap.write_field(ref, "total", 42.0)
        assert heap.read_field(ref, "total") == 42.0

    def test_read_missing_field_raises(self, heap):
        ref = ObjRef(1, "Order")
        heap.register_object(ref)
        with pytest.raises(HeapError, match="total"):
            heap.read_field(ref, "total")

    def test_read_unregistered_object_raises(self, heap):
        with pytest.raises(HeapError):
            heap.read_field(ObjRef(99, "Order"), "x")

    def test_writes_marked_dirty(self, heap):
        ref = ObjRef(1, "Order")
        heap.register_object(ref)
        heap.write_field(ref, "total", 1.0)
        assert (1, "Order", "total") in heap.dirty_fields

    def test_unmarked_write(self, heap):
        ref = ObjRef(1, "Order")
        heap.register_object(ref)
        heap.write_field(ref, "total", 1.0, mark_dirty=False)
        assert not heap.dirty_fields


class TestNatives:
    def test_register_and_get(self, heap):
        ref = NativeRef(2, alloc_sid=10)
        heap.register_native(ref, [1, 2, 3])
        assert heap.get_native(ref) == [1, 2, 3]
        assert 2 in heap.dirty_natives

    def test_get_missing_raises(self, heap):
        with pytest.raises(HeapError):
            heap.get_native(NativeRef(5, alloc_sid=1))

    def test_mark_dirty(self, heap):
        ref = NativeRef(2, alloc_sid=10)
        heap.register_native(ref, [], mark_dirty=False)
        assert 2 not in heap.dirty_natives
        heap.mark_native_dirty(ref)
        assert 2 in heap.dirty_natives


class TestSynchronization:
    def test_collect_respects_ship_flags(self, heap):
        obj = ObjRef(1, "Order")
        heap.register_object(obj)
        heap.write_field(obj, "shipped", 1.0)
        heap.write_field(obj, "local_only", 2.0)
        ships = {("Order", "shipped"): True, ("Order", "local_only"): False}
        fields, natives = heap.collect_updates(ships, {}, {})
        assert (1, "Order", "shipped") in fields
        assert (1, "Order", "local_only") not in fields

    def test_collect_clears_dirty_sets(self, heap):
        obj = ObjRef(1, "Order")
        heap.register_object(obj)
        heap.write_field(obj, "a", 1.0)
        heap.collect_updates({}, {}, {})
        assert not heap.dirty_fields

    def test_native_ship_flag_by_alloc_site(self, heap):
        keep = NativeRef(1, alloc_sid=100)
        ship = NativeRef(2, alloc_sid=200)
        heap.register_native(keep, [1])
        heap.register_native(ship, [2])
        fields, natives = heap.collect_updates(
            {}, {100: False, 200: True}, {1: 100, 2: 200}
        )
        assert set(natives) == {2}

    def test_unknown_location_defaults_to_shipping(self, heap):
        # Conservative default: unknown locations always ship.
        obj = ObjRef(1, "Order")
        heap.register_object(obj)
        heap.write_field(obj, "mystery", 5)
        fields, _ = heap.collect_updates({}, {}, {})
        assert (1, "Order", "mystery") in fields

    def test_apply_updates_does_not_mark_dirty(self):
        app = HeapStore(Placement.APP)
        db = HeapStore(Placement.DB)
        obj = ObjRef(1, "Order")
        app.register_object(obj)
        db.register_object(obj)
        app.write_field(obj, "x", 10)
        updates, _ = app.collect_updates({}, {}, {})
        db.apply_updates(updates, {})
        assert db.read_field(obj, "x") == 10
        assert not db.dirty_fields

    def test_round_trip_between_stores(self):
        app = HeapStore(Placement.APP)
        db = HeapStore(Placement.DB)
        obj = ObjRef(1, "Order")
        for store in (app, db):
            store.register_object(obj)
        app.write_field(obj, "total", 1.0)
        db.apply_updates(*app.collect_updates({}, {}, {}))
        db.write_field(obj, "total", 2.0)
        app.apply_updates(*db.collect_updates({}, {}, {}))
        assert app.read_field(obj, "total") == 2.0

    def test_stats(self, heap):
        obj = ObjRef(1, "Order")
        heap.register_object(obj)
        heap.write_field(obj, "a", 1)
        stats = heap.stats()
        assert stats["objects"] == 1
        assert stats["dirty_fields"] == 1
