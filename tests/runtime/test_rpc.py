"""RPC message byte accounting."""

import pytest

from repro.runtime.rpc import (
    MESSAGE_OVERHEAD,
    ControlTransferMessage,
    DbRequestMessage,
    DbResponseMessage,
)


class TestControlTransferMessage:
    def test_empty_message_costs_overhead(self):
        msg = ControlTransferMessage(next_bid=7)
        assert msg.nbytes() == MESSAGE_OVERHEAD

    def test_stack_updates_add_bytes(self):
        empty = ControlTransferMessage(next_bid=1).nbytes()
        msg = ControlTransferMessage(
            next_bid=1, stack_updates={"0:x": 5, "0:name": "hello"}
        )
        assert msg.nbytes() > empty

    def test_heap_updates_add_bytes(self):
        empty = ControlTransferMessage(next_bid=1).nbytes()
        msg = ControlTransferMessage(
            next_bid=1,
            field_updates={(1, "Order", "total"): 12.5},
            native_updates={2: [1.0, 2.0, 3.0]},
        )
        assert msg.nbytes() > empty + 20

    def test_larger_payloads_cost_more(self):
        small = ControlTransferMessage(
            next_bid=1, native_updates={1: [0.0] * 2}
        )
        large = ControlTransferMessage(
            next_bid=1, native_updates={1: [0.0] * 200}
        )
        assert large.nbytes() > small.nbytes()


class TestDbMessages:
    def test_request_scales_with_sql_and_params(self):
        short = DbRequestMessage("query", "SELECT 1", ())
        long = DbRequestMessage(
            "query", "SELECT " + "x, " * 50 + "y FROM t", (1, 2, 3)
        )
        assert long.nbytes() > short.nbytes()

    def test_response_scales_with_result(self):
        small = DbResponseMessage(1)
        big = DbResponseMessage([(i, "row") for i in range(100)])
        assert big.nbytes() > small.nbytes()

    def test_overhead_floor(self):
        assert DbResponseMessage(None).nbytes() >= MESSAGE_OVERHEAD
