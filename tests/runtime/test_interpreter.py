"""Block interpreter: oracle equivalence and transfer accounting."""

import pytest

from repro.core.partition_graph import Placement
from repro.core.pipeline import Pyxis
from repro.db import Database, connect
from repro.lang import IRInterpreter, parse_source
from repro.runtime.entrypoints import PartitionedApp
from repro.runtime.interpreter import PyxisExecutor, RuntimeError_
from repro.sim.cluster import Cluster
from tests.conftest import make_order_database


def build_apps(source, entry_points, workload, budgets=(0.0, 1e9),
               make_db=None):
    """Compile a program under several budgets and pair each partition
    with a fresh database + cluster."""
    pyx = Pyxis.from_source(source, entry_points)
    if make_db is None:
        make_db = lambda: (None, connect(Database()))  # noqa: E731
    _, conn = make_db()
    profile = pyx.profile_with(conn, workload)
    pset = pyx.partition(profile, budgets=list(budgets))
    apps = []
    for part in pset.by_budget():
        _, run_conn = make_db()
        apps.append(
            (part, PartitionedApp(part.compiled, Cluster(), run_conn))
        )
    return pyx, apps


class TestOracleEquivalence:
    def test_running_example_all_budgets(self, order_pyxis, order_partitions):
        _, oracle_conn = make_order_database()
        oracle = IRInterpreter(order_pyxis.program, oracle_conn)
        expected = oracle.invoke("Order", "place_order", 7, 0.9)
        expected_items = oracle_conn.query(
            "SELECT li_id, li_cost FROM line_item ORDER BY li_id"
        ).rows
        for part in order_partitions.partitions:
            _, conn = make_order_database()
            app = PartitionedApp(part.compiled, Cluster(), conn)
            outcome = app.invoke_traced("Order", "place_order", 7, 0.9)
            assert outcome.result == pytest.approx(expected)
            items = conn.query(
                "SELECT li_id, li_cost FROM line_item ORDER BY li_id"
            ).rows
            assert items == expected_items

    def test_control_flow_program(self):
        source = '''
class Flow:
    def run(self, n):
        total = 0
        i = 0
        while i < n:
            i = i + 1
            if i % 3 == 0:
                continue
            if i > 14:
                break
            if i % 2 == 0:
                total = total + i
            else:
                total = total - 1
        return total
'''
        pyx, apps = build_apps(
            source, [("Flow", "run")], lambda p: p.invoke("Flow", "run", 9)
        )
        oracle = IRInterpreter(pyx.program, connect(Database()))
        for n in (0, 1, 5, 30):
            expected = oracle.invoke("Flow", "run", n)
            for part, app in apps:
                assert app.invoke("Flow", "run", n) == expected

    def test_object_graph_program(self):
        source = '''
class Pair:
    def fill(self, a, b):
        self.left = a
        self.right = b

    def total(self):
        return self.left + self.right

class Builder:
    def run(self, x):
        p = Pair()
        p.fill(x, x * 2)
        q = Pair()
        q.fill(p.total(), 1)
        return q.total()
'''
        pyx, apps = build_apps(
            source, [("Builder", "run")],
            lambda p: p.invoke("Builder", "run", 4),
        )
        oracle = IRInterpreter(pyx.program, connect(Database()))
        for x in (0, 3, 10):
            expected = oracle.invoke("Builder", "run", x)
            for part, app in apps:
                assert app.invoke("Builder", "run", x) == expected

    def test_list_heavy_program(self):
        source = '''
class Lists:
    def run(self, n):
        squares = [0] * n
        i = 0
        while i < n:
            squares[i] = i * i
            i = i + 1
        evens = []
        for value in squares:
            if value % 2 == 0:
                evens.append(value)
        return sum(evens) + len(evens)
'''
        pyx, apps = build_apps(
            source, [("Lists", "run")], lambda p: p.invoke("Lists", "run", 6)
        )
        oracle = IRInterpreter(pyx.program, connect(Database()))
        for n in (0, 1, 8):
            expected = oracle.invoke("Lists", "run", n)
            for part, app in apps:
                assert app.invoke("Lists", "run", n) == expected

    def test_repeated_invocations_share_no_state(self, order_partitions):
        # Each invoke creates a fresh receiver: results must repeat.
        part = order_partitions.highest()
        _, conn = make_order_database()
        app = PartitionedApp(part.compiled, Cluster(), conn)
        first = app.invoke("Order", "place_order", 7, 0.9)
        conn.execute("DELETE FROM line_item")  # avoid duplicate keys
        second = app.invoke("Order", "place_order", 7, 0.9)
        assert first == pytest.approx(second)


class TestTransferAccounting:
    def test_all_app_partition_never_transfers(self, order_partitions):
        part = order_partitions.lowest()
        _, conn = make_order_database()
        app = PartitionedApp(part.compiled, Cluster(), conn)
        outcome = app.invoke_traced("Order", "place_order", 7, 0.9)
        assert outcome.control_transfers == 0
        assert outcome.db_round_trips == 5  # one per DB call

    def test_db_partition_eliminates_round_trips(self, order_partitions):
        part = order_partitions.highest()
        _, conn = make_order_database()
        app = PartitionedApp(part.compiled, Cluster(), conn)
        outcome = app.invoke_traced("Order", "place_order", 7, 0.9)
        assert outcome.db_round_trips == 0
        assert 0 < outcome.control_transfers <= 6

    def test_db_partition_faster(self, order_partitions):
        latencies = {}
        for part in order_partitions.partitions:
            _, conn = make_order_database()
            app = PartitionedApp(part.compiled, Cluster(), conn)
            outcome = app.invoke_traced("Order", "place_order", 7, 0.9)
            latencies[part.budget] = outcome.latency
        assert latencies[max(latencies)] < latencies[min(latencies)] / 2

    def test_jdbc_partition_sends_more_bytes(self, order_partitions):
        # Paper fig9c: Pyxis (DB-heavy) sends less than JDBC.
        byte_counts = {}
        for part in order_partitions.partitions:
            _, conn = make_order_database()
            app = PartitionedApp(part.compiled, Cluster(), conn)
            outcome = app.invoke_traced("Order", "place_order", 7, 0.9)
            byte_counts[part.budget] = (
                outcome.trace.bytes_to_db + outcome.trace.bytes_to_app
            )
        assert byte_counts[max(byte_counts)] < byte_counts[min(byte_counts)]

    def test_trace_stages_alternate_sensibly(self, order_partitions):
        part = order_partitions.highest()
        _, conn = make_order_database()
        app = PartitionedApp(part.compiled, Cluster(), conn)
        trace = app.invoke_traced("Order", "place_order", 7, 0.9).trace
        # No two adjacent CPU stages on the same server (they merge).
        from repro.sim.queueing import StageKind

        for first, second in zip(trace.stages, trace.stages[1:]):
            if first.is_cpu and second.is_cpu:
                assert first.kind is not second.kind


class TestInterpSelection:
    def test_explicit_mode_wins(self, order_partitions):
        part = order_partitions.lowest()
        _, conn = make_order_database()
        executor = PyxisExecutor(part.compiled, Cluster(), conn, interp="tree")
        assert executor.interp == "tree"

    def test_env_var_selects_mode(self, order_partitions, monkeypatch):
        monkeypatch.setenv("REPRO_INTERP", "tree")
        part = order_partitions.lowest()
        _, conn = make_order_database()
        executor = PyxisExecutor(part.compiled, Cluster(), conn)
        assert executor.interp == "tree"

    def test_default_is_compiled(self, order_partitions, monkeypatch):
        monkeypatch.delenv("REPRO_INTERP", raising=False)
        part = order_partitions.lowest()
        _, conn = make_order_database()
        executor = PyxisExecutor(part.compiled, Cluster(), conn)
        assert executor.interp == "compiled"

    def test_unknown_mode_rejected(self, order_partitions):
        part = order_partitions.lowest()
        _, conn = make_order_database()
        with pytest.raises(RuntimeError_, match="unknown interpreter mode"):
            PyxisExecutor(part.compiled, Cluster(), conn, interp="jit")

    def test_compiled_code_cached_on_program(self, order_partitions):
        part = order_partitions.lowest()
        _, conn = make_order_database()
        PyxisExecutor(part.compiled, Cluster(), conn, interp="compiled")
        first = part.compiled.code_cache
        assert first is not None
        PyxisExecutor(part.compiled, Cluster(), conn, interp="compiled")
        assert part.compiled.code_cache is first  # compiled exactly once
        bids = [b.bid for b in part.compiled.blocks.values()]
        assert all(part.compiled.blocks[b].code is not None for b in bids)


class TestErrors:
    def test_unknown_class(self, order_partitions):
        part = order_partitions.lowest()
        _, conn = make_order_database()
        executor = PyxisExecutor(part.compiled, Cluster(), conn)
        with pytest.raises(RuntimeError_, match="unknown class"):
            executor.invoke("Ghost", "run")

    def test_unknown_method(self, order_partitions):
        part = order_partitions.lowest()
        _, conn = make_order_database()
        executor = PyxisExecutor(part.compiled, Cluster(), conn)
        with pytest.raises(RuntimeError_, match="unknown method"):
            executor.invoke("Order", "missing")

    def test_wrong_arity(self, order_partitions):
        part = order_partitions.lowest()
        _, conn = make_order_database()
        executor = PyxisExecutor(part.compiled, Cluster(), conn)
        with pytest.raises(RuntimeError_, match="expects"):
            executor.invoke("Order", "place_order", 1)

    def test_block_budget_guard(self, order_partitions):
        part = order_partitions.lowest()
        _, conn = make_order_database()
        executor = PyxisExecutor(
            part.compiled, Cluster(), conn, max_blocks=3
        )
        with pytest.raises(RuntimeError_, match="exceeded"):
            executor.invoke("Order", "place_order", 7, 0.9)
