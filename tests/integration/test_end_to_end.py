"""Whole-pipeline integration tests, including hypothesis-driven
oracle equivalence across random inputs and budgets."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import Pyxis
from repro.lang import IRInterpreter
from repro.runtime.entrypoints import PartitionedApp
from repro.sim.cluster import Cluster
from repro.db import Database, connect

CALC_SOURCE = '''
class Calc:
    def run(self, a, b, flag):
        acc = 0
        i = 0
        limit = a % 13 + 1
        while i < limit:
            if flag == 1:
                acc = acc + i * b
            else:
                acc = acc - i
            i = i + 1
        values = [0] * limit
        j = 0
        while j < limit:
            values[j] = acc % (j + 2)
            j = j + 1
        self.result = sum(values) + acc
        return self.result
'''


@pytest.fixture(scope="module")
def calc_partitions():
    pyx = Pyxis.from_source(CALC_SOURCE, [("Calc", "run")])
    conn = connect(Database())
    profile = pyx.profile_with(
        conn, lambda p: p.invoke("Calc", "run", 17, 3, 1)
    )
    pset = pyx.partition(profile, budgets=[0.0, 40.0, 1e9])
    oracle = IRInterpreter(pyx.program, connect(Database()))
    apps = [
        PartitionedApp(part.compiled, Cluster(), connect(Database()))
        for part in pset.by_budget()
    ]
    return oracle, apps


@settings(max_examples=40, deadline=None)
@given(
    a=st.integers(0, 100),
    b=st.integers(-10, 10),
    flag=st.integers(0, 1),
)
def test_all_budgets_match_oracle(calc_partitions, a, b, flag):
    """Property: for random inputs, every budget's partitioned program
    computes exactly what the oracle interpreter computes."""
    oracle, apps = calc_partitions
    expected = oracle.invoke("Calc", "run", a, b, flag)
    for app in apps:
        assert app.invoke("Calc", "run", a, b, flag) == expected


class TestCrossServerState:
    def test_heap_state_consistent_after_many_invocations(self):
        """Fields written on one server and read on the other must stay
        in sync across repeated entry-point invocations."""
        source = '''
class Counter:
    def bump(self, amount):
        self.total = amount
        v = self.db.query_scalar("SELECT v FROM kv WHERE k = ?", 0)
        self.total = self.total + v
        return self.total
'''
        db = Database()
        db.create_table("kv", [("k", "int", False), ("v", "int")],
                        primary_key=["k"])
        conn = connect(db)
        conn.execute("INSERT INTO kv (k, v) VALUES (0, 100)")
        pyx = Pyxis.from_source(source, [("Counter", "bump")])
        profile = pyx.profile_with(
            conn, lambda p: p.invoke("Counter", "bump", 1)
        )
        for part in pyx.partition(profile, budgets=[0.0, 1e9]).partitions:
            app = PartitionedApp(part.compiled, Cluster(), conn)
            for amount in (1, 2, 3):
                assert app.invoke("Counter", "bump", amount) == amount + 100

    def test_stale_read_impossible_with_sync_plan(self):
        """A field written on DB then read on APP (forced by a print,
        which is pinned to APP) must arrive via heap synchronization."""
        source = '''
class Mixed:
    def run(self, x):
        v = self.db.query_scalar("SELECT v FROM kv WHERE k = ?", x)
        self.saved = v * 2
        print("saved", self.saved)
        return self.saved
'''
        db = Database()
        db.create_table("kv", [("k", "int", False), ("v", "int")],
                        primary_key=["k"])
        conn = connect(db)
        conn.execute("INSERT INTO kv (k, v) VALUES (1, 21)")
        pyx = Pyxis.from_source(source, [("Mixed", "run")])
        profile = pyx.profile_with(conn, lambda p: p.invoke("Mixed", "run", 1))
        part = pyx.partition(profile, budgets=[1e9]).partitions[0]
        from repro.lang.interp import default_natives

        natives = default_natives()
        app = PartitionedApp(part.compiled, Cluster(), conn, natives=natives)
        assert app.invoke("Mixed", "run", 1) == 42
        assert natives.console == ["saved 42"]


class TestDynamicSwitchingIntegration:
    def test_switcher_selects_partitions_by_load(self, order_partitions):
        from repro.runtime.switcher import DynamicSwitcher, SwitcherConfig

        switcher = DynamicSwitcher(
            [p.compiled for p in order_partitions.by_budget()],
            SwitcherConfig(poll_interval=0.0),
        )
        # Idle: high budget (stored-procedure-like).
        switcher.observe_load(0.0, 5.0)
        assert switcher.choose() is order_partitions.highest().compiled
        # Loaded: low budget (JDBC-like).
        for t in range(1, 12):
            switcher.observe_load(float(t), 95.0)
        assert switcher.choose() is order_partitions.lowest().compiled


class TestFailureInjection:
    def test_infeasible_budget_with_db_pins(self, order_pyxis):
        """A budget below the pinned DB load must raise loudly."""
        from repro.core.ilp import InfeasibleError, build_ilp
        from repro.core.partition_graph import (
            Node, NodeKind, PartitionGraph, Placement,
        )

        g = PartitionGraph()
        g.add_node(Node("s1", NodeKind.STMT, weight=100.0, pin=Placement.DB))
        with pytest.raises(InfeasibleError):
            build_ilp(g, budget=10.0)

    def test_heap_error_is_loud_not_silent(self):
        """Disabling shipping for a remotely-read field must raise a
        HeapError rather than silently return stale data."""
        source = '''
class Leak:
    def run(self, n):
        self.field = 0
        i = 0
        while i < n:
            v = self.db.query_scalar("SELECT v FROM kv WHERE k = ?", i)
            self.field = self.field + v
            i = i + 1
        print("read", self.field)
        return self.field
'''
        db = Database()
        db.create_table("kv", [("k", "int", False), ("v", "int")],
                        primary_key=["k"])
        conn = connect(db)
        for k in range(8):
            conn.execute("INSERT INTO kv (k, v) VALUES (?, ?)", k, k)
        pyx = Pyxis.from_source(source, [("Leak", "run")])
        profile = pyx.profile_with(conn, lambda p: p.invoke("Leak", "run", 8))
        part = pyx.partition(profile, budgets=[1e9]).partitions[0]
        # The query loop moves to the DB; the (pinned) print stays on
        # the app server, so self.field must cross servers.
        assert 0.0 < part.fraction_on_db < 1.0
        # Sabotage the sync plan: pretend the field never ships.
        part.compiled.field_ships[("Leak", "field")] = False
        from repro.runtime.heap import HeapError

        app = PartitionedApp(part.compiled, Cluster(), conn)
        with pytest.raises(HeapError):
            app.invoke("Leak", "run", 8)
