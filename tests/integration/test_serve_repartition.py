"""Acceptance: online repartitioning under a mid-run load-mix shift.

The storefront workload starts all-browse (the mix the offline profile
and the initial two-budget ladder were built from) and flips to
all-checkout mid-run.  The repartition controller must notice the
drift in the live profile, mint at least one genuinely new
partitioning through the incremental session (cached structure,
reweighted graph, warm-started solve), switch traffic onto it, and
end up at least as fast as the best static-ladder configuration --
in this scenario clearly faster, because the right placement for
checkout (query loop on the DB, digest loop on the app server) is not
in the offline ladder at all.
"""

import pytest

from repro.bench.serve_experiments import (
    ADAPTIVE,
    REPARTITION,
    STATIC_HIGH,
    STATIC_LOW,
    serve_repartition,
)

DURATION = 40.0


@pytest.fixture(scope="module")
def run():
    return serve_repartition(
        fast=True, clients=16, db_cores=2, duration=DURATION, seed=17
    )


class TestScenarioShape:
    def test_all_configurations_ran(self, run):
        expected = {STATIC_LOW, STATIC_HIGH, ADAPTIVE, REPARTITION}
        assert set(run.throughput) == expected
        assert set(run.post_shift_throughput) == expected
        assert 0.0 < run.shift_time < run.duration

    def test_static_ladder_degrades_after_shift(self, run):
        # Both pre-baked rungs lose throughput once the mix flips:
        # all-APP pays per-item round trips, all-DB saturates the
        # 2-core database with checkout digests.
        for label in (STATIC_LOW, STATIC_HIGH):
            assert (
                run.post_shift_throughput[label]
                < 0.8 * run.throughput[label]
            )


class TestRepartitionMintsOnline:
    def test_at_least_one_new_partitioning_minted(self, run):
        summary = run.repartition
        assert summary is not None
        assert summary.mints >= 1
        event = summary.events[0]
        # Minted after the shift, as a genuinely new candidate
        # appended beyond the two offline rungs.
        assert event.now >= run.shift_time
        assert event.index >= 2
        assert event.drift > 0.35
        assert run.notes["minted_labels"]

    def test_minted_partition_takes_the_traffic(self, run):
        # The final option-mix bucket routes to a minted candidate.
        assert run.option_mix, "expected option mix buckets"
        _, final_mix = run.option_mix[-1]
        minted_share = sum(
            share for option, share in final_mix.items() if option >= 2
        )
        assert minted_share > 0.9

    def test_session_worked_incrementally(self, run):
        stats = run.notes["session_stats"]
        assert stats["structure_builds"] == 1  # never rebuilt
        # The online mints re-solved on the reweighted cached graph.
        assert stats["reweights"] >= 2
        assert stats["solves"] >= 3
        # Exactly one compilation per distinct assignment: the two
        # offline rungs plus one per online mint -- nothing recompiled.
        mints = run.repartition.mints
        assert stats["pyxil_compiles"] == 2 + mints


class TestRepartitionBeatsStaticLadder:
    def test_post_shift_throughput_at_least_best_static(self, run):
        best = run.best_static(post_shift=True)
        repart = run.post_shift_throughput[REPARTITION]
        assert repart >= best, (
            f"repartition {repart:.1f}/s lost to best static {best:.1f}/s"
        )
        # And in this scenario the gap should be decisive.
        assert repart >= 1.3 * best

    def test_whole_run_throughput_at_least_best_static(self, run):
        best = run.best_static(post_shift=False)
        assert run.throughput[REPARTITION] >= best

    def test_repartition_beats_plain_adaptive_after_shift(self, run):
        # The adaptive switcher only has the two offline rungs to
        # choose from; minting is what wins the post-shift phase.
        assert (
            run.post_shift_throughput[REPARTITION]
            >= 1.2 * run.post_shift_throughput[ADAPTIVE]
        )
