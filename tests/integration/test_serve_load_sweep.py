"""Acceptance: the serving engine's TPC-C load sweep.

Sweeps client counts 1 -> 64 on a CPU-constrained database server and
checks the paper's dynamic-switching claim end to end: the adaptively
switched configuration tracks the better of the two static
partitionings on throughput, switching online (the event is recorded
in the controller history) once DB CPU saturates.  Every trace in the
sweep came from executing the real compiled-block TPC-C program.
"""

import pytest

from repro.bench.serve_experiments import (
    ADAPTIVE,
    STATIC_HIGH,
    STATIC_LOW,
    serve_load_sweep,
)

CLIENT_COUNTS = [1, 4, 32, 64]


@pytest.fixture(scope="module")
def sweep():
    return serve_load_sweep(
        fast=True,
        client_counts=CLIENT_COUNTS,
        db_cores=3,
        duration=10.0,
        poll_interval=1.0,
        seed=17,
    )


def by_clients(sweep, label):
    return {p.clients: p for p in sweep.curves[label]}


class TestSweepShape:
    def test_all_configurations_cover_all_counts(self, sweep):
        assert set(sweep.curves) == {STATIC_LOW, STATIC_HIGH, ADAPTIVE}
        for label in sweep.curves:
            assert [p.clients for p in sweep.curves[label]] == CLIENT_COUNTS

    def test_traces_came_from_live_execution(self, sweep):
        # The workload layer executed the real partitioned programs.
        assert sweep.notes["labels"] == ["jdbc_like", "proc_like"]
        assert sweep.notes["fraction_on_db"]["proc_like"] > 0.9
        assert sweep.notes["fraction_on_db"]["jdbc_like"] < 0.1

    def test_static_curves_reproduce_fig10_regime(self, sweep):
        low = by_clients(sweep, STATIC_LOW)
        high = by_clients(sweep, STATIC_HIGH)
        # Idle: the stored-procedure-like partition wins on latency.
        assert high[1].p50_ms < low[1].p50_ms
        # Saturated: the JDBC-like partition's lower DB CPU demand
        # sustains clearly higher throughput on 3 cores.
        assert low[64].throughput > 1.2 * high[64].throughput
        assert high[64].db_util > 0.9


class TestAdaptiveTracksBestStatic:
    def test_throughput_tracks_better_static_everywhere(self, sweep):
        low = by_clients(sweep, STATIC_LOW)
        high = by_clients(sweep, STATIC_HIGH)
        adaptive = by_clients(sweep, ADAPTIVE)
        for clients in CLIENT_COUNTS:
            best = max(low[clients].throughput, high[clients].throughput)
            assert adaptive[clients].throughput >= 0.85 * best, (
                f"adaptive lost at {clients} clients: "
                f"{adaptive[clients].throughput:.1f}/s vs best {best:.1f}/s"
            )

    def test_idle_latency_tracks_high_budget(self, sweep):
        high = by_clients(sweep, STATIC_HIGH)
        low = by_clients(sweep, STATIC_LOW)
        adaptive = by_clients(sweep, ADAPTIVE)
        assert adaptive[1].p50_ms == pytest.approx(
            high[1].p50_ms, rel=0.25
        )
        assert adaptive[1].p50_ms < 0.75 * low[1].p50_ms

    def test_switch_event_visible_in_controller_history(self, sweep):
        adaptive = by_clients(sweep, ADAPTIVE)
        # No switching while idle...
        assert adaptive[1].switches == 0
        assert adaptive[4].switches == 0
        # ...but the saturated runs switched, and the event landed in
        # the controller history with the crossing EWMA level.
        controllers = sweep.notes["controllers"][ADAPTIVE]
        saturated = controllers[-1]  # the 64-client run
        assert adaptive[64].switches >= 1
        assert saturated.switches >= 1
        assert saturated.current_index == 0  # ended on the JDBC-like
        event = saturated.recent_switches[0]
        assert event.to_index == 0
        assert event.level > 40.0
        assert 0.0 < event.now < 10.0

    def test_ewma_samples_recorded_throughout(self, sweep):
        controllers = sweep.notes["controllers"][ADAPTIVE]
        for summary in controllers:
            assert summary.samples >= 8  # ~10s run, 1s poll interval
