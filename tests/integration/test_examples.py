"""CI guard for the runnable examples.

The dynamic-switching example rode on the trace-replay fig11 pipeline
before the serving subsystem existed and silently rotted once; running
it exactly as a user would (fresh subprocess, PYTHONPATH=src) keeps it
honest.  The example itself exits non-zero if no partition switch
happened, so this doubles as an end-to-end check of the serve engine's
adaptive controller.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def run_example(name: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "examples" / name)],
        capture_output=True, text=True, env=env, cwd=str(REPO_ROOT),
        timeout=600,
    )


class TestDynamicSwitchingExample:
    def test_example_runs_and_switches(self):
        proc = run_example("dynamic_switching.py")
        assert proc.returncode == 0, proc.stderr
        out = proc.stdout
        assert "serve dynamic switching" in out
        assert "switch(es)" in out
        # The narrative numbers: mix starts proc-like, ends JDBC-like.
        assert "JDBC-like fraction: 0% -> 100%" in out


class TestShardedTierExample:
    def test_example_runs_identical_and_scales(self):
        # Exits non-zero if the sharded deployment's results diverge
        # from the single server, the demo transaction fails to cross
        # shards, or the 1 -> 4 shard sweep fails to scale throughput.
        proc = run_example("sharded_tier.py")
        assert proc.returncode == 0, proc.stderr
        out = proc.stdout
        assert "0 mismatch(es)" in out
        assert "2PC took" in out
        assert "speedup" in out


class TestOnlineRepartitioningExample:
    def test_example_runs_and_mints(self):
        # The example exits non-zero if no partitioning was minted or
        # the repartition config lost to the static ladder, so this is
        # an end-to-end guard on the incremental session + serve loop.
        proc = run_example("online_repartitioning.py")
        assert proc.returncode == 0, proc.stderr
        out = proc.stdout
        assert "online repartitioning" in out
        assert "mint(s)" in out
        assert "structure build(s)" in out
