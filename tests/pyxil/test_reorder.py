"""Statement reordering (dual-queue topological sort)."""

import pytest

from repro.core.partition_graph import (
    EdgeKind,
    Node,
    NodeKind,
    PartitionGraph,
    Placement,
    stmt_node_id,
)
from repro.lang import parse_source
from repro.lang.ir import Assign, Block
from repro.pyxil.reorder import reorder_block


def make_block_with_graph(n: int, placements: dict[int, Placement],
                          deps: list[tuple[int, int]]):
    """A synthetic straight-line block of n statements with given deps."""
    from repro.lang.ir import Const, VarLV

    block = Block()
    graph = PartitionGraph()
    for i in range(1, n + 1):
        stmt = Assign(VarLV(f"v{i}"), Const(i))
        stmt.sid = i
        block.stmts.append(stmt)
        graph.add_node(Node(stmt_node_id(i), NodeKind.STMT, sid=i))
    for src, dst in deps:
        graph.add_edge(
            stmt_node_id(src), stmt_node_id(dst), EdgeKind.ORDER
        )
    return block, graph, (lambda sid: placements[sid])


class TestReorderBlock:
    def test_groups_same_placement_runs(self):
        # Alternating placements with no deps: reordering should group
        # all APP statements together then all DB (or vice versa).
        placements = {
            1: Placement.APP, 2: Placement.DB,
            3: Placement.APP, 4: Placement.DB,
        }
        block, graph, placement_of = make_block_with_graph(4, placements, [])
        reorder_block(block, placement_of, graph)
        order = [placement_of(s.sid) for s in block.stmts]
        switches = sum(
            1 for a, b in zip(order, order[1:]) if a is not b
        )
        assert switches == 1

    def test_dependencies_respected(self):
        placements = {
            1: Placement.APP, 2: Placement.DB,
            3: Placement.APP, 4: Placement.DB,
        }
        deps = [(1, 2), (2, 3), (3, 4)]  # a strict chain
        block, graph, placement_of = make_block_with_graph(4, placements, deps)
        reorder_block(block, placement_of, graph)
        assert [s.sid for s in block.stmts] == [1, 2, 3, 4]

    def test_partial_dependencies(self):
        placements = {
            1: Placement.APP, 2: Placement.DB,
            3: Placement.APP, 4: Placement.DB,
        }
        deps = [(1, 4)]
        block, graph, placement_of = make_block_with_graph(4, placements, deps)
        reorder_block(block, placement_of, graph)
        positions = {s.sid: i for i, s in enumerate(block.stmts)}
        assert positions[1] < positions[4]

    def test_no_statements_lost(self):
        placements = {i: Placement.APP for i in range(1, 6)}
        block, graph, placement_of = make_block_with_graph(5, placements, [])
        before = sorted(s.sid for s in block.stmts)
        reorder_block(block, placement_of, graph)
        assert sorted(s.sid for s in block.stmts) == before

    def test_tiny_blocks_untouched(self):
        placements = {1: Placement.APP, 2: Placement.DB}
        block, graph, placement_of = make_block_with_graph(2, placements, [])
        reorder_block(block, placement_of, graph)
        assert [s.sid for s in block.stmts] == [1, 2]


class TestReorderSemantics:
    """Reordering must never change program results (checked through
    the full pipeline in integration tests; here: dependence order)."""

    def test_paper_example_lines_20_22(self):
        # The paper notes lines 20-22 of Fig. 2 can run in any order as
        # long as they follow line 19.  Verify our dependence edges
        # allow that reordering but keep line 19 first.
        source = '''
class Order:
    def body(self, item_cost, dct, i):
        real_cost = item_cost * dct
        self.total_cost += real_cost
        self.real_costs[i] = real_cost
        self.db.execute("INSERT INTO li (a, b) VALUES (?, ?)", i, real_cost)
        return real_cost
'''
        from repro.analysis.interproc import build_call_graph
        from repro.analysis.points_to import analyze_points_to
        from repro.core.builder import build_partition_graph
        from repro.profiler.profile_data import ProfileData

        program = parse_source(source, entry_points=[("Order", "body")])
        pts = analyze_points_to(program)
        cg = build_call_graph(program, pts)
        graph = build_partition_graph(program, cg, pts, ProfileData())
        func = program.function("Order", "body")
        first = func.body.stmts[0]
        order_edges = {
            (e.src, e.dst) for e in graph.edges
            if e.kind.value in ("order", "data")
        }
        # real_cost definition must precede all its uses.
        for stmt in func.body.stmts[1:]:
            from repro.analysis.defuse import accesses_of

            if "real_cost" in accesses_of(stmt).var_reads:
                key = (stmt_node_id(first.sid), stmt_node_id(stmt.sid))
                assert key in order_edges
