"""Heap-synchronization planning."""

import pytest

from repro.analysis.interproc import build_call_graph
from repro.analysis.points_to import analyze_points_to
from repro.core.ilp import PartitioningResult
from repro.core.partition_graph import (
    Placement,
    array_node_id,
    field_node_id,
    stmt_node_id,
)
from repro.lang import parse_source
from repro.pyxil.program import PlacedProgram
from repro.pyxil.sync_insertion import compute_sync_plan

SOURCE = '''
class Sync:
    def run(self, x):
        self.shared = x * 2
        self.local_only = x + 1
        arr = [0] * x
        arr[0] = self.shared
        return self.read()

    def read(self):
        return self.shared
'''


def place_all(program, placement_map):
    """Build a PlacedProgram from an explicit sid -> Placement map."""
    assignment = {}
    for stmt in program.all_statements():
        assignment[stmt_node_id(stmt.sid)] = placement_map(stmt.sid)
    for cls in program.classes.values():
        for fname in cls.fields:
            assignment[field_node_id(cls.name, fname)] = Placement.APP
    result = PartitioningResult(
        assignment=assignment, objective=0.0, db_load=0.0,
        budget=1e9, solver="manual",
    )
    return PlacedProgram(program=program, result=result, name="test")


@pytest.fixture(scope="module")
def analyzed():
    program = parse_source(SOURCE, entry_points=[("Sync", "run")])
    pts = analyze_points_to(program)
    cg = build_call_graph(program, pts)
    return program, pts, cg


class TestSyncPlan:
    def test_single_server_nothing_ships(self, analyzed):
        program, pts, cg = analyzed
        placed = place_all(program, lambda sid: Placement.APP)
        plan = compute_sync_plan(placed, cg, pts)
        assert not plan.field_ships("Sync", "shared")
        assert not plan.field_ships("Sync", "local_only")

    def test_cross_server_field_ships(self, analyzed):
        program, pts, cg = analyzed
        # Put Sync.read on the DB, everything else on APP: `shared` is
        # written on APP and read on DB, so it must ship.
        read_sids = {
            s.sid for s in program.function("Sync", "read").walk()
        }
        placed = place_all(
            program,
            lambda sid: Placement.DB if sid in read_sids else Placement.APP,
        )
        plan = compute_sync_plan(placed, cg, pts)
        assert plan.field_ships("Sync", "shared")
        # local_only never crosses: stays local.
        assert not plan.field_ships("Sync", "local_only")

    def test_sync_ops_emitted_for_writers(self, analyzed):
        program, pts, cg = analyzed
        read_sids = {
            s.sid for s in program.function("Sync", "read").walk()
        }
        placed = place_all(
            program,
            lambda sid: Placement.DB if sid in read_sids else Placement.APP,
        )
        plan = compute_sync_plan(placed, cg, pts)
        ops = [
            op for ops in plan.sync_ops_after.values() for op in ops
            if op.target == "Sync.shared"
        ]
        assert ops
        # shared's authoritative part is APP (our placement map): sendAPP.
        assert all(op.kind == "sendAPP" for op in ops)

    def test_unknown_locations_default_to_shipping(self, analyzed):
        program, pts, cg = analyzed
        placed = place_all(program, lambda sid: Placement.APP)
        plan = compute_sync_plan(placed, cg, pts)
        # Conservative default for anything the plan has not seen.
        assert plan.field_ships("Sync", "never_mentioned")
        assert plan.array_ships(99999)
