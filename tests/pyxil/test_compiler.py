"""Execution-block compilation."""

import pytest

from repro.core.partition_graph import Placement
from repro.pyxil.blocks import (
    OpAssign,
    TBranch,
    TCall,
    TGoto,
    TReturn,
)


@pytest.fixture(scope="module")
def compiled_pair(order_partitions):
    return (
        order_partitions.lowest().compiled,
        order_partitions.highest().compiled,
    )


class TestBlockStructure:
    def test_every_block_terminated(self, compiled_pair):
        for compiled in compiled_pair:
            for block in compiled.blocks.values():
                assert block.terminator is not None

    def test_every_method_has_entry(self, compiled_pair):
        for compiled in compiled_pair:
            assert set(compiled.entries) == {
                "Order.place_order",
                "Order.compute_total_cost",
                "Order.get_costs",
                "Order.update_account",
            }

    def test_terminator_targets_exist(self, compiled_pair):
        for compiled in compiled_pair:
            for block in compiled.blocks.values():
                term = block.terminator
                targets = []
                if isinstance(term, TGoto):
                    targets = [term.target]
                elif isinstance(term, TBranch):
                    targets = [term.then_target, term.else_target]
                elif isinstance(term, TCall):
                    targets = [term.return_target]
                for target in targets:
                    assert target in compiled.blocks

    def test_call_targets_are_known_methods(self, compiled_pair):
        for compiled in compiled_pair:
            for block in compiled.blocks.values():
                if isinstance(block.terminator, TCall):
                    callee = block.terminator.callee
                    if callee:
                        assert callee in compiled.entries

    def test_blocks_single_placement(self, compiled_pair):
        # Each block's placement is a single value by construction;
        # check low budget compiles everything to APP.
        low, high = compiled_pair
        assert all(
            b.placement is Placement.APP for b in low.blocks.values()
        )
        assert any(
            b.placement is Placement.DB for b in high.blocks.values()
        )

    def test_field_metadata_complete(self, compiled_pair):
        for compiled in compiled_pair:
            assert ("Order", "total_cost") in compiled.field_placements
            assert ("Order", "real_costs") in compiled.field_placements

    def test_stats(self, compiled_pair):
        low, _ = compiled_pair
        stats = low.stats()
        assert stats["blocks"] == stats["app_blocks"] + stats["db_blocks"]
        assert stats["methods"] == 4

    def test_reachability_from_entries(self, compiled_pair):
        """Every block is reachable from some method entry."""
        for compiled in compiled_pair:
            seen = set()
            stack = list(compiled.entries.values())
            while stack:
                bid = stack.pop()
                if bid in seen:
                    continue
                seen.add(bid)
                term = compiled.blocks[bid].terminator
                if isinstance(term, TGoto):
                    stack.append(term.target)
                elif isinstance(term, TBranch):
                    stack.extend([term.then_target, term.else_target])
                elif isinstance(term, TCall):
                    stack.append(term.return_target)
                    if term.callee:
                        stack.append(compiled.entries[term.callee])
            assert seen == set(compiled.blocks)


class TestSyncMetadata:
    def test_shared_field_ships(self, order_partitions):
        # total_cost is written and read in multiple methods: whenever
        # the writers and readers span servers, it must ship.
        high = order_partitions.highest()
        compiled = high.compiled
        placements = {
            compiled.field_placements[("Order", "total_cost")],
        }
        writers_and_readers_span = high.placed.fraction_on_db not in (0.0, 1.0)
        if writers_and_readers_span:
            assert compiled.field_ships[("Order", "total_cost")] in (
                True, False,
            )

    def test_low_budget_nothing_ships(self, order_partitions):
        # With every statement on APP, no field is remotely accessed.
        low = order_partitions.lowest().compiled
        assert not any(low.field_ships.values())

    def test_sync_ops_listed_for_shipping_fields(self, order_partitions):
        high = order_partitions.highest()
        for (cls, fname), ships in high.compiled.field_ships.items():
            ops = [
                op
                for ops in high.sync_plan.sync_ops_after.values()
                for op in ops
                if op.target == f"{cls}.{fname}"
            ]
            if ships:
                assert ops, f"{cls}.{fname} ships but has no sync ops"
