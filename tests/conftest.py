"""Shared fixtures: sample programs, loaded databases, pipelines."""

from __future__ import annotations

import pytest

from repro.core.pipeline import Pyxis
from repro.db import Database, connect
from repro.db.catalog import IndexSpec

# The running example from the paper (Figure 2), in the partitionable
# subset.  Used by front-end, analysis, pipeline and runtime tests.
ORDER_SOURCE = '''
class Order:
    def place_order(self, cid, dct):
        self.total_cost = 0.0
        self.compute_total_cost(dct)
        self.update_account(cid, self.total_cost)
        return self.total_cost

    def compute_total_cost(self, dct):
        i = 0
        costs = self.get_costs()
        self.real_costs = [0.0] * len(costs)
        for item_cost in costs:
            real_cost = item_cost * dct
            self.total_cost += real_cost
            self.real_costs[i] = real_cost
            i = i + 1
            self.db.execute(
                "INSERT INTO line_item (li_id, li_cost) VALUES (?, ?)",
                i, real_cost)

    def get_costs(self):
        rs = self.db.query("SELECT c_cost FROM costs ORDER BY c_id")
        out = []
        for row in rs:
            out.append(row[0])
        return out

    def update_account(self, cid, amount):
        self.db.execute(
            "UPDATE account SET a_balance = a_balance - ? WHERE a_id = ?",
            amount, cid)
'''

ORDER_ENTRY_POINTS = [("Order", "place_order")]


def make_order_database() -> tuple[Database, "object"]:
    """Fresh database for the running example."""
    db = Database("orders")
    db.create_table(
        "costs", [("c_id", "int", False), ("c_cost", "float")],
        primary_key=["c_id"],
    )
    db.create_table(
        "line_item", [("li_id", "int", False), ("li_cost", "float")],
        primary_key=["li_id"],
    )
    db.create_table(
        "account", [("a_id", "int", False), ("a_balance", "float")],
        primary_key=["a_id"],
    )
    conn = connect(db)
    for i, cost in enumerate([10.0, 20.0, 30.0], start=1):
        conn.execute(
            "INSERT INTO costs (c_id, c_cost) VALUES (?, ?)", i, cost
        )
    conn.execute(
        "INSERT INTO account (a_id, a_balance) VALUES (?, ?)", 7, 1000.0
    )
    return db, conn


@pytest.fixture()
def order_db():
    return make_order_database()


@pytest.fixture(scope="session")
def order_pyxis() -> Pyxis:
    return Pyxis.from_source(ORDER_SOURCE, ORDER_ENTRY_POINTS)


@pytest.fixture(scope="session")
def order_partitions(order_pyxis):
    """Partition set for the running example at budgets 0 and inf."""
    _, conn = make_order_database()
    profile = order_pyxis.profile_with(
        conn, lambda p: p.invoke("Order", "place_order", 7, 0.9)
    )
    return order_pyxis.partition(profile, budgets=[0.0, 1e9])


@pytest.fixture()
def people_db():
    """A small generic database for SQL-layer tests."""
    db = Database("people")
    db.create_table(
        "person",
        [
            ("id", "int", False),
            ("name", "text", False),
            ("age", "int"),
            ("city", "text"),
            ("score", "float"),
        ],
        primary_key=["id"],
        indexes=[
            IndexSpec("person_by_city", ("city",)),
            IndexSpec("person_by_age", ("age",), ordered=True),
        ],
    )
    conn = connect(db)
    rows = [
        (1, "ann", 34, "boston", 9.5),
        (2, "bob", 28, "nyc", 7.25),
        (3, "cal", 45, "boston", 5.0),
        (4, "dee", 28, "sf", 8.0),
        (5, "eli", 61, "nyc", 6.5),
        (6, "fay", None, "sf", None),
    ]
    for row in rows:
        conn.execute(
            "INSERT INTO person (id, name, age, city, score) "
            "VALUES (?, ?, ?, ?, ?)",
            *row,
        )
    return db, conn
