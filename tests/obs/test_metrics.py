"""Metrics registry: instruments, labels, absorb, snapshot."""

import pytest

from repro.obs import MetricsRegistry, percentile, summarize
from repro.obs.metrics import format_metric_name


class TestInstruments:
    def test_counter_increments(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("hits").inc(-1)

    def test_gauge_sets(self):
        g = MetricsRegistry().gauge("util")
        g.set(0.75)
        assert g.value == 0.75

    def test_histogram_buckets_and_mean(self):
        h = MetricsRegistry().histogram("lat", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        assert h.count == 4
        assert h.mean == pytest.approx(5.555 / 4)

    def test_histogram_rejects_bad_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("bad", buckets=(0.5, 0.1))
        with pytest.raises(ValueError):
            reg.histogram("empty", buckets=())


class TestRegistry:
    def test_get_or_create_by_name_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("txn", shard=0)
        b = reg.counter("txn", shard=0)
        c = reg.counter("txn", shard=1)
        assert a is b
        assert a is not c

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a=1, b=2) is reg.counter("x", b=2, a=1)

    def test_type_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("n")
        with pytest.raises(TypeError):
            reg.gauge("n")

    def test_absorb_splits_ints_and_floats(self):
        reg = MetricsRegistry()
        reg.absorb(
            "plan_cache",
            {"hits": 10, "misses": 2, "hit_ratio": 0.83, "flag": True},
        )
        snap = reg.snapshot()
        assert snap["plan_cache.hits"] == 10
        assert snap["plan_cache.misses"] == 2
        assert snap["plan_cache.hit_ratio"] == 0.83
        assert "plan_cache.flag" not in snap

    def test_absorb_none_is_noop(self):
        reg = MetricsRegistry()
        reg.absorb("x", None)
        assert reg.snapshot() == {}

    def test_snapshot_renders_labels_sorted(self):
        reg = MetricsRegistry()
        reg.counter("txn", shard=1, option=0).inc(3)
        snap = reg.snapshot()
        assert snap["txn{option=0,shard=1}"] == 3
        assert format_metric_name("txn", {"shard": 1, "option": 0}) == (
            "txn{option=0,shard=1}"
        )

    def test_snapshot_histogram_shape(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        entry = reg.snapshot()["lat"]
        assert entry["count"] == 3
        assert entry["sum"] == pytest.approx(5.55)
        assert entry["buckets"]["le=0.1"] == 1
        assert entry["buckets"]["le=1"] == 2
        assert entry["buckets"]["le=+Inf"] == 3


class TestSummaryHelpers:
    def test_percentile_nearest_rank(self):
        samples = [float(i) for i in range(1, 101)]
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 99) == 99.0
        assert percentile(samples, 100) == 100.0
        assert percentile([], 50) == 0.0

    def test_percentile_two_samples(self):
        # Nearest-rank p50 of two samples is the *smaller* one:
        # rank = ceil(0.5 * 2) = 1 (1-based).
        assert percentile([1.0, 9.0], 50) == 1.0
        assert percentile([1.0, 9.0], 95) == 9.0

    def test_summarize_routes_through_percentile(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        s = summarize(samples)
        assert s.count == 4
        assert s.p50 == percentile(samples, 50)
        assert s.maximum == 4.0

    def test_summarize_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])
