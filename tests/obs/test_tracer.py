"""Tracer and span semantics: hierarchy, zero-cost disable, export."""

import json

import pytest

from repro.obs import (
    NULL_SPAN,
    Tracer,
    chrome_trace_events,
    render_chrome_trace,
)
from repro.sim.clock import VirtualClock


class TestSpans:
    def test_span_records_clock_times(self):
        clock = VirtualClock()
        tracer = Tracer(clock=clock)
        span = tracer.span("work")
        clock.advance(1.5)
        span.finish()
        assert span.start == 0.0
        assert span.end == 1.5
        assert span.duration == 1.5

    def test_parent_child_linkage(self):
        tracer = Tracer(clock=VirtualClock())
        root = tracer.span("txn")
        child = tracer.span("stage", parent=root)
        child.finish()
        root.finish()
        assert child.parent_id == root.span_id
        assert root.parent_id is None
        assert tracer.children_of(root) == [child]

    def test_span_ids_are_sequential_per_tracer(self):
        tracer = Tracer(clock=VirtualClock())
        first = tracer.span("a")
        second = tracer.span("b")
        assert second.span_id == first.span_id + 1
        fresh = Tracer(clock=VirtualClock())
        assert fresh.span("c").span_id == first.span_id

    def test_finish_is_idempotent(self):
        clock = VirtualClock()
        tracer = Tracer(clock=clock)
        span = tracer.span("once")
        clock.advance(1.0)
        span.finish()
        clock.advance(1.0)
        span.finish()
        assert span.end == 1.0
        assert len(tracer.finished()) == 1

    def test_context_manager_finishes(self):
        clock = VirtualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("cm"):
            clock.advance(0.25)
        assert tracer.find("cm")[0].end == 0.25

    def test_explicit_start_and_end(self):
        clock = VirtualClock()
        clock.advance(10.0)
        tracer = Tracer(clock=clock)
        span = tracer.span("retro", start=4.0)
        span.finish(end=6.0)
        assert (span.start, span.end) == (4.0, 6.0)

    def test_instant_has_zero_duration(self):
        clock = VirtualClock()
        clock.advance(2.0)
        tracer = Tracer(clock=clock)
        tracer.instant("tick", shard=1)
        (span,) = tracer.find("tick")
        assert span.kind == "instant"
        assert span.start == span.end == 2.0
        assert span.args == {"shard": 1}

    def test_annotate_merges_args(self):
        tracer = Tracer(clock=VirtualClock())
        span = tracer.span("s", a=1)
        span.annotate(b=2)
        span.finish()
        assert span.args == {"a": 1, "b": 2}


class TestDisabledTracer:
    def test_disabled_span_is_shared_null(self):
        tracer = Tracer(clock=VirtualClock(), enabled=False)
        assert tracer.span("x") is NULL_SPAN
        assert tracer.instant("y") is NULL_SPAN
        assert tracer.finished() == []

    def test_null_span_absorbs_everything(self):
        NULL_SPAN.annotate(a=1)
        NULL_SPAN.finish()
        with NULL_SPAN:
            pass
        assert not NULL_SPAN
        assert NULL_SPAN.span_id == 0


class TestChromeExport:
    def _traced(self):
        clock = VirtualClock()
        tracer = Tracer(clock=clock)
        root = tracer.span("txn", track="client/0", client=0)
        clock.advance(0.001)
        child = tracer.span("stage", parent=root, track="client/0")
        clock.advance(0.002)
        child.finish()
        root.finish()
        tracer.instant("tick", track="faults")
        return tracer

    def test_events_shape(self):
        events = chrome_trace_events(self._traced())
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(complete) == 2
        assert len(instants) == 1
        assert {m["args"]["name"] for m in meta} == {"client/0", "faults"}
        root = next(e for e in complete if e["name"] == "txn")
        assert root["ts"] == 0.0
        assert root["dur"] == pytest.approx(3000.0)
        child = next(e for e in complete if e["name"] == "stage")
        assert child["args"]["parent_id"] == root["args"]["span_id"]

    def test_render_is_valid_sorted_json(self):
        payload = render_chrome_trace(self._traced())
        assert payload.endswith("\n")
        doc = json.loads(payload)
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) == 5
        # Canonical encoding: re-dumping with the same settings is a
        # fixed point, so identical runs export identical bytes.
        assert (
            json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"
            == payload
        )
