"""TPC-C workload: loader, generator, transactions, partitioning."""

import pytest

from repro.core.pipeline import Pyxis
from repro.lang import IRInterpreter, parse_source
from repro.runtime.entrypoints import PartitionedApp
from repro.sim.cluster import Cluster
from repro.workloads.tpcc import (
    TPCC_ENTRY_POINTS,
    TPCC_SOURCE,
    TpccInputGenerator,
    TpccScale,
    customer_last_name,
    make_tpcc_database,
    nurand,
)

SCALE = TpccScale(warehouses=1, districts_per_warehouse=2,
                  customers_per_district=30, items=50)


@pytest.fixture(scope="module")
def program():
    return parse_source(TPCC_SOURCE, entry_points=TPCC_ENTRY_POINTS)


class TestLoader:
    def test_cardinalities(self):
        db, conn = make_tpcc_database(SCALE)
        assert conn.query_scalar("SELECT COUNT(*) FROM warehouse") == 1
        assert conn.query_scalar("SELECT COUNT(*) FROM district") == 2
        assert conn.query_scalar("SELECT COUNT(*) FROM customer") == 60
        assert conn.query_scalar("SELECT COUNT(*) FROM item") == 50
        assert conn.query_scalar("SELECT COUNT(*) FROM stock") == 50

    def test_districts_start_with_order_id_one(self):
        _, conn = make_tpcc_database(SCALE)
        assert conn.query_scalar(
            "SELECT MIN(d_next_o_id) FROM district"
        ) == 1

    def test_deterministic_given_seed(self):
        _, conn1 = make_tpcc_database(SCALE, seed=9)
        _, conn2 = make_tpcc_database(SCALE, seed=9)
        q = "SELECT SUM(i_price) FROM item"
        assert conn1.query_scalar(q) == conn2.query_scalar(q)


class TestGenerator:
    def test_new_order_shape(self):
        gen = TpccInputGenerator(SCALE)
        order = gen.new_order()
        assert 1 <= order.w_id <= SCALE.warehouses
        assert 1 <= order.d_id <= SCALE.districts_per_warehouse
        assert 5 <= len(order.item_ids) <= 15
        assert len(order.item_ids) == len(order.quantities)
        assert all(1 <= i <= SCALE.items for i in order.item_ids)

    def test_rollback_fraction(self):
        gen = TpccInputGenerator(SCALE)
        flags = [gen.new_order(rollback_fraction=0.1).rollback
                 for _ in range(500)]
        fraction = sum(flags) / len(flags)
        assert 0.05 < fraction < 0.16

    def test_nurand_in_range(self):
        import random

        rng = random.Random(1)
        for _ in range(200):
            value = nurand(rng, 255, 0, 99)
            assert 0 <= value <= 99

    def test_last_name_synthesis(self):
        assert customer_last_name(0) == "BARBARBAR"
        assert customer_last_name(371) == "PRICALLYOUGHT"
        assert customer_last_name(999) == "EINGEINGEING"


class TestTransactions:
    @pytest.fixture(scope="class")
    def oracle(self, program):
        _, conn = make_tpcc_database(SCALE)
        return IRInterpreter(program, conn), conn

    def test_new_order_returns_total(self, oracle):
        interp, conn = oracle
        gen = TpccInputGenerator(SCALE, seed=3)
        order = gen.new_order(0)
        total = interp.invoke(
            "TpccTransactions", "new_order",
            order.w_id, order.d_id, order.c_id,
            order.item_ids, order.supply_w_ids, order.quantities,
        )
        assert total > 0

    def test_new_order_writes_rows(self, oracle):
        interp, conn = oracle
        before = conn.query_scalar("SELECT COUNT(*) FROM order_line")
        gen = TpccInputGenerator(SCALE, seed=4)
        order = gen.new_order(0)
        interp.invoke(
            "TpccTransactions", "new_order",
            order.w_id, order.d_id, order.c_id,
            order.item_ids, order.supply_w_ids, order.quantities,
        )
        after = conn.query_scalar("SELECT COUNT(*) FROM order_line")
        assert after == before + len(order.item_ids)

    def test_new_order_advances_district_counter(self, oracle):
        interp, conn = oracle
        gen = TpccInputGenerator(SCALE, seed=5)
        order = gen.new_order(0)
        before = conn.query_scalar(
            "SELECT d_next_o_id FROM district WHERE d_w_id = ? AND d_id = ?",
            order.w_id, order.d_id,
        )
        interp.invoke(
            "TpccTransactions", "new_order",
            order.w_id, order.d_id, order.c_id,
            order.item_ids, order.supply_w_ids, order.quantities,
        )
        after = conn.query_scalar(
            "SELECT d_next_o_id FROM district WHERE d_w_id = ? AND d_id = ?",
            order.w_id, order.d_id,
        )
        assert after == before + 1

    def test_payment_updates_balance(self, oracle):
        interp, conn = oracle
        gen = TpccInputGenerator(SCALE, seed=6)
        payment = gen.payment()
        before = conn.query_scalar(
            "SELECT c_balance FROM customer WHERE c_w_id = ? AND c_d_id = ? "
            "AND c_id = ?",
            payment.c_w_id, payment.c_d_id, payment.c_id,
        )
        balance = interp.invoke(
            "TpccTransactions", "payment",
            payment.w_id, payment.d_id, payment.c_w_id, payment.c_d_id,
            payment.c_id, payment.amount,
        )
        assert balance == pytest.approx(before - payment.amount)

    def test_order_status_counts_lines(self, oracle):
        interp, conn = oracle
        gen = TpccInputGenerator(SCALE, seed=7)
        order = gen.new_order(0)
        interp.invoke(
            "TpccTransactions", "new_order",
            order.w_id, order.d_id, order.c_id,
            order.item_ids, order.supply_w_ids, order.quantities,
        )
        lines = interp.invoke(
            "TpccTransactions", "order_status",
            order.w_id, order.d_id, order.c_id,
        )
        assert lines == len(order.item_ids)


class TestPartitionedEquivalence:
    @pytest.mark.parametrize("budget", [0.0, 1e9])
    def test_new_order_matches_oracle(self, program, budget):
        pyx = Pyxis.from_source(TPCC_SOURCE, TPCC_ENTRY_POINTS)
        _, profile_conn = make_tpcc_database(SCALE)
        gen = TpccInputGenerator(SCALE, seed=11)

        def workload(p):
            for _ in range(3):
                order = gen.new_order(0)
                p.invoke(
                    "TpccTransactions", "new_order",
                    order.w_id, order.d_id, order.c_id,
                    order.item_ids, order.supply_w_ids, order.quantities,
                )

        profile = pyx.profile_with(profile_conn, workload)
        part = pyx.partition(profile, budgets=[budget]).partitions[0]

        _, oracle_conn = make_tpcc_database(SCALE)
        _, run_conn = make_tpcc_database(SCALE)
        oracle = IRInterpreter(pyx.program, oracle_conn)
        app = PartitionedApp(part.compiled, Cluster(), run_conn)
        gen_a = TpccInputGenerator(SCALE, seed=12)
        gen_b = TpccInputGenerator(SCALE, seed=12)
        for _ in range(4):
            oa, ob = gen_a.new_order(0), gen_b.new_order(0)
            expected = oracle.invoke(
                "TpccTransactions", "new_order",
                oa.w_id, oa.d_id, oa.c_id,
                oa.item_ids, oa.supply_w_ids, oa.quantities,
            )
            got = app.invoke(
                "TpccTransactions", "new_order",
                ob.w_id, ob.d_id, ob.c_id,
                ob.item_ids, ob.supply_w_ids, ob.quantities,
            )
            assert got == pytest.approx(expected)
        for table in ("orders", "new_order", "order_line", "stock"):
            a = oracle_conn.query_scalar(f"SELECT COUNT(*) FROM {table}")
            b = run_conn.query_scalar(f"SELECT COUNT(*) FROM {table}")
            assert a == b, table

    def test_rollback_leaves_no_trace(self, program):
        # The paper rolls back 10% of new-order transactions; wrap the
        # partitioned execution in a transaction and roll it back.
        from repro.db.jdbc import connect as db_connect

        pyx = Pyxis.from_source(TPCC_SOURCE, TPCC_ENTRY_POINTS)
        _, profile_conn = make_tpcc_database(SCALE)
        gen = TpccInputGenerator(SCALE, seed=13)
        order = gen.new_order(0)

        def workload(p):
            p.invoke(
                "TpccTransactions", "new_order",
                order.w_id, order.d_id, order.c_id,
                order.item_ids, order.supply_w_ids, order.quantities,
            )

        profile = pyx.profile_with(profile_conn, workload)
        part = pyx.partition(profile, budgets=[1e9]).partitions[0]
        db, run_conn = make_tpcc_database(SCALE)
        app = PartitionedApp(part.compiled, Cluster(), run_conn)
        before = db.total_rows()
        run_conn.begin()
        app.invoke(
            "TpccTransactions", "new_order",
            order.w_id, order.d_id, order.c_id,
            order.item_ids, order.supply_w_ids, order.quantities,
        )
        run_conn.rollback()
        assert db.total_rows() == before
