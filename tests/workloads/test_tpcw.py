"""TPC-W workload."""

import pytest

from repro.core.partition_graph import Placement
from repro.core.pipeline import Pyxis
from repro.lang import IRInterpreter, parse_source
from repro.runtime.entrypoints import PartitionedApp
from repro.sim.cluster import Cluster
from repro.workloads.tpcw import (
    SUBJECTS,
    TPCW_ENTRY_POINTS,
    TPCW_SOURCE,
    BrowsingMix,
    TpcwScale,
    make_tpcw_database,
)

SCALE = TpcwScale(items=120, authors=30, customers=40, orders=60)


@pytest.fixture(scope="module")
def program():
    return parse_source(TPCW_SOURCE, entry_points=TPCW_ENTRY_POINTS)


@pytest.fixture(scope="module")
def oracle(program):
    _, conn = make_tpcw_database(SCALE)
    return IRInterpreter(program, conn)


class TestLoader:
    def test_cardinalities(self):
        _, conn = make_tpcw_database(SCALE)
        assert conn.query_scalar("SELECT COUNT(*) FROM tw_item") == 120
        assert conn.query_scalar("SELECT COUNT(*) FROM author") == 30
        assert conn.query_scalar("SELECT COUNT(*) FROM tw_customer") == 40
        assert conn.query_scalar("SELECT COUNT(*) FROM tw_orders") == 60
        assert conn.query_scalar("SELECT COUNT(*) FROM tw_order_line") > 0

    def test_items_reference_valid_authors(self):
        _, conn = make_tpcw_database(SCALE)
        orphans = conn.query_scalar(
            "SELECT COUNT(*) FROM tw_item WHERE i_a_id > ?", 30
        )
        assert orphans == 0


class TestBrowsingMix:
    def test_interactions_valid(self):
        mix = BrowsingMix(SCALE)
        methods = {name for name, _ in BrowsingMix.WEIGHTS}
        for _ in range(100):
            interaction = mix.next_interaction()
            assert interaction.method in methods

    def test_mix_roughly_matches_weights(self):
        mix = BrowsingMix(SCALE, seed=1)
        counts: dict[str, int] = {}
        n = 2000
        for _ in range(n):
            method = mix.next_interaction().method
            counts[method] = counts.get(method, 0) + 1
        # home should be the most common interaction (weight 29).
        assert max(counts, key=counts.get) == "home"
        assert 0.2 < counts["home"] / n < 0.4


class TestInteractions:
    def test_home_builds_html(self, oracle):
        html = oracle.invoke("TpcwBrowsing", "home", 1)
        assert html.startswith("<html>")
        assert "Welcome" in html

    def test_new_products_counts(self, oracle):
        count = oracle.invoke("TpcwBrowsing", "new_products", SUBJECTS[0])
        assert 0 <= count <= 10

    def test_best_sellers_returns_item(self, oracle):
        best = oracle.invoke("TpcwBrowsing", "best_sellers", SUBJECTS[1])
        assert best >= 0

    def test_product_detail(self, oracle):
        html = oracle.invoke("TpcwBrowsing", "product_detail", 5)
        assert "Title 5" in html

    def test_order_inquiry_touches_no_tables(self, program):
        # The paper: some interactions have no DB operations at all.
        db, conn = make_tpcw_database(SCALE)
        calls = []
        conn.observer = lambda *a: calls.append(a)
        interp = IRInterpreter(program, conn)
        interp.invoke("TpcwBrowsing", "order_inquiry", "user1")
        assert calls == []

    def test_order_display_totals(self, oracle):
        qty = oracle.invoke("TpcwBrowsing", "order_display", 1)
        assert qty >= 0


class TestPartitioning:
    @pytest.fixture(scope="class")
    def pset(self):
        pyx = Pyxis.from_source(TPCW_SOURCE, TPCW_ENTRY_POINTS)
        _, conn = make_tpcw_database(SCALE)
        mix = BrowsingMix(SCALE, seed=2)

        def workload(p):
            for _ in range(25):
                interaction = mix.next_interaction()
                p.invoke("TpcwBrowsing", interaction.method, *interaction.args)

        profile = pyx.profile_with(conn, workload)
        return pyx, pyx.partition(profile, budgets=[0.0, 1e9])

    def test_no_db_interaction_stays_on_app(self, pset):
        # Paper Section 7.2: order inquiry is placed entirely on the
        # application server even with a high budget.
        pyx, partitions = pset
        high = partitions.highest()
        sids = [
            s.sid
            for s in pyx.program.function("TpcwBrowsing", "order_inquiry").walk()
        ]
        assert all(
            high.placed.placement_of(sid) is Placement.APP for sid in sids
        )

    def test_db_interactions_move_at_high_budget(self, pset):
        pyx, partitions = pset
        high = partitions.highest()
        sids = [
            s.sid
            for s in pyx.program.function("TpcwBrowsing", "home").walk()
        ]
        on_db = sum(
            1 for sid in sids
            if high.placed.placement_of(sid) is Placement.DB
        )
        assert on_db > len(sids) * 0.5

    def test_partitioned_equivalence(self, pset):
        pyx, partitions = pset
        for part in partitions.partitions:
            _, oracle_conn = make_tpcw_database(SCALE)
            _, run_conn = make_tpcw_database(SCALE)
            oracle = IRInterpreter(pyx.program, oracle_conn)
            app = PartitionedApp(part.compiled, Cluster(), run_conn)
            mix_a = BrowsingMix(SCALE, seed=3)
            mix_b = BrowsingMix(SCALE, seed=3)
            for _ in range(12):
                ia, ib = mix_a.next_interaction(), mix_b.next_interaction()
                expected = oracle.invoke("TpcwBrowsing", ia.method, *ia.args)
                got = app.invoke("TpcwBrowsing", ib.method, *ib.args)
                assert got == expected, ia.method
