"""Microbenchmark workloads."""

import pytest

from repro.core.pipeline import Pyxis
from repro.lang import IRInterpreter, parse_source
from repro.runtime.entrypoints import PartitionedApp
from repro.sim.cluster import Cluster
from repro.workloads.micro import (
    LINKED_LIST_ENTRY_POINTS,
    LINKED_LIST_SOURCE,
    THREE_PHASE_ENTRY_POINTS,
    THREE_PHASE_SOURCE,
    MicroScale,
    make_micro_database,
    native_linked_list,
)


class TestLinkedList:
    def test_native_baseline(self):
        assert native_linked_list(10) == sum(range(10))
        assert native_linked_list(1) == 0

    def test_oracle_matches_native(self):
        program = parse_source(
            LINKED_LIST_SOURCE, entry_points=LINKED_LIST_ENTRY_POINTS
        )
        _, conn = make_micro_database()
        interp = IRInterpreter(program, conn)
        for n in (1, 2, 17):
            assert interp.invoke("LinkedList", "run", n) == native_linked_list(n)

    def test_partitioned_matches_native(self):
        pyx = Pyxis.from_source(LINKED_LIST_SOURCE, LINKED_LIST_ENTRY_POINTS)
        _, conn = make_micro_database()
        profile = pyx.profile_with(
            conn, lambda p: p.invoke("LinkedList", "run", 8)
        )
        part = pyx.partition(profile, budgets=[0.0]).partitions[0]
        app = PartitionedApp(part.compiled, Cluster(), conn)
        assert app.invoke("LinkedList", "run", 12) == native_linked_list(12)

    def test_single_placement_has_no_transfers(self):
        # Microbenchmark 1's premise: everything on one server means
        # zero control transfers -- the measured slowdown is pure
        # runtime overhead.
        pyx = Pyxis.from_source(LINKED_LIST_SOURCE, LINKED_LIST_ENTRY_POINTS)
        _, conn = make_micro_database()
        profile = pyx.profile_with(
            conn, lambda p: p.invoke("LinkedList", "run", 8)
        )
        part = pyx.partition(profile, budgets=[0.0]).partitions[0]
        app = PartitionedApp(part.compiled, Cluster(), conn)
        outcome = app.invoke_traced("LinkedList", "run", 10)
        assert outcome.control_transfers == 0
        assert outcome.db_round_trips == 0


class TestThreePhase:
    @pytest.fixture(scope="class")
    def pset(self):
        pyx = Pyxis.from_source(THREE_PHASE_SOURCE, THREE_PHASE_ENTRY_POINTS)
        _, conn = make_micro_database()
        profile = pyx.profile_with(
            conn, lambda p: p.invoke("ThreePhase", "run", 10, 20, 100)
        )
        total = profile.total_statement_weight()
        return pyx, pyx.partition(
            profile, budgets=[0.0, total * 0.62, 1e9]
        )

    def test_three_distinct_partitions(self, pset):
        # Paper Section 7.4: low/medium/high budgets yield APP, APP-DB
        # and DB partitions respectively.
        _, partitions = pset
        fractions = [p.fraction_on_db for p in partitions.by_budget()]
        assert fractions[0] == 0.0
        assert 0.0 < fractions[1] < fractions[2]

    def test_medium_budget_moves_queries_not_compute(self, pset):
        pyx, partitions = pset
        medium = partitions.by_budget()[1]
        _, conn = make_micro_database()
        app = PartitionedApp(medium.compiled, Cluster(), conn)
        outcome = app.invoke_traced("ThreePhase", "run", 10, 20, 100)
        # Queries run on the DB (no JDBC round trips), compute on APP.
        assert outcome.db_round_trips == 0
        assert outcome.trace.app_cpu > 0

    def test_all_partitions_equivalent(self, pset):
        pyx, partitions = pset
        _, oracle_conn = make_micro_database()
        oracle = IRInterpreter(pyx.program, oracle_conn)
        expected = oracle.invoke("ThreePhase", "run", 12, 6, 100)
        for part in partitions.partitions:
            _, conn = make_micro_database()
            app = PartitionedApp(part.compiled, Cluster(), conn)
            got = app.invoke("ThreePhase", "run", 12, 6, 100)
            assert got == pytest.approx(expected)

    def test_scale_defaults(self):
        scale = MicroScale()
        assert scale.queries_per_phase > 0
        assert scale.hashes > 0
