"""Differential test: tree-walking vs compiled vs source interpreters.

Both compilation rungs -- the closure compiler
(repro.runtime.compile_blocks) and the source-codegen superblocks
(repro.runtime.codegen_blocks) -- must be observably indistinguishable
from the tree-walker: identical results, identical database side
effects, and bit-identical ExecutionStats -- blocks, ops, control
transfers, DB calls, DB round trips and bytes sent -- across every
partitioning of every workload.
"""

from dataclasses import asdict

import pytest

from repro.core.pipeline import Pyxis
from repro.runtime.entrypoints import PartitionedApp
from repro.sim.cluster import Cluster
from repro.workloads.micro import (
    LINKED_LIST_ENTRY_POINTS,
    LINKED_LIST_SOURCE,
    MicroScale,
    THREE_PHASE_ENTRY_POINTS,
    THREE_PHASE_SOURCE,
    make_micro_database,
)
from repro.workloads.tpcc import (
    TPCC_ENTRY_POINTS,
    TPCC_SOURCE,
    TpccInputGenerator,
    TpccScale,
    make_tpcc_database,
)

TPCC_SCALE = TpccScale(warehouses=1, districts_per_warehouse=2,
                       customers_per_district=30, items=50)


def _partitions(source, entry_points, make_db, workload, budgets=(0.0, 1e9)):
    pyx = Pyxis.from_source(source, entry_points)
    _, conn = make_db()
    profile = pyx.profile_with(conn, workload)
    pset = pyx.partition(profile, budgets=list(budgets))
    return pset.by_budget()


def _run_mode(compiled, make_db, interp, invocations):
    """Run ``invocations`` on a fresh database; return results + stats."""
    _, conn = make_db()
    app = PartitionedApp(compiled, Cluster(), conn, interp=interp)
    results = [
        app.invoke(class_name, method, *args)
        for class_name, method, args in invocations
    ]
    return results, asdict(app.executor.stats), conn


def assert_equivalent(compiled, make_db, invocations, check_db=None):
    tree_results, tree_stats, tree_conn = _run_mode(
        compiled, make_db, "tree", invocations
    )
    for interp in ("compiled", "source"):
        comp_results, comp_stats, comp_conn = _run_mode(
            compiled, make_db, interp, invocations
        )
        assert comp_results == tree_results, interp
        assert comp_stats == tree_stats, interp  # blocks/ops/db/bytes
        if check_db is not None:
            assert check_db(comp_conn) == check_db(tree_conn), interp


class TestTpccNewOrder:
    @pytest.fixture(scope="class")
    def setup(self):
        make_db = lambda: make_tpcc_database(TPCC_SCALE)  # noqa: E731
        gen = TpccInputGenerator(TPCC_SCALE, seed=7)

        def workload(profiler):
            for _ in range(5):
                order = gen.new_order(rollback_fraction=0.0)
                profiler.invoke(
                    "TpccTransactions", "new_order",
                    order.w_id, order.d_id, order.c_id,
                    order.item_ids, order.supply_w_ids, order.quantities,
                )

        parts = _partitions(
            TPCC_SOURCE, TPCC_ENTRY_POINTS, make_db, workload
        )
        input_gen = TpccInputGenerator(TPCC_SCALE, seed=11)
        invocations = []
        for _ in range(4):
            order = input_gen.new_order(rollback_fraction=0.0)
            invocations.append((
                "TpccTransactions", "new_order",
                (order.w_id, order.d_id, order.c_id,
                 order.item_ids, order.supply_w_ids, order.quantities),
            ))
        return make_db, parts, invocations

    def test_all_budgets_bit_identical(self, setup):
        make_db, parts, invocations = setup

        def order_rows(conn):
            return conn.query(
                "SELECT o_id, o_d_id, o_c_id FROM orders ORDER BY o_id, o_d_id"
            ).rows

        for part in parts:
            assert_equivalent(
                part.compiled, make_db, invocations, check_db=order_rows
            )


class TestMicroWorkloads:
    def test_linked_list_all_budgets(self):
        make_db = lambda: make_micro_database()  # noqa: E731
        parts = _partitions(
            LINKED_LIST_SOURCE, LINKED_LIST_ENTRY_POINTS, make_db,
            lambda p: p.invoke("LinkedList", "run", 24),
        )
        invocations = [("LinkedList", "run", (n,)) for n in (1, 17, 120)]
        for part in parts:
            assert_equivalent(part.compiled, make_db, invocations)

    def test_three_phase_all_budgets(self):
        scale = MicroScale(queries_per_phase=12, hashes=20, keys=10)
        make_db = lambda: make_micro_database(rows=scale.keys)  # noqa: E731
        args = (scale.queries_per_phase, scale.hashes, scale.keys)
        parts = _partitions(
            THREE_PHASE_SOURCE, THREE_PHASE_ENTRY_POINTS, make_db,
            lambda p: p.invoke("ThreePhase", "run", *args),
            budgets=(0.0, 0.5, 1e9),
        )
        invocations = [("ThreePhase", "run", args)]
        for part in parts:
            assert_equivalent(part.compiled, make_db, invocations)

    def test_stats_nonzero_sanity(self):
        # The equivalence assertions above are vacuous if nothing ran;
        # check one workload actually exercises every counter.
        make_db = lambda: make_micro_database(rows=10)  # noqa: E731
        args = (4, 5, 10)
        parts = _partitions(
            THREE_PHASE_SOURCE, THREE_PHASE_ENTRY_POINTS, make_db,
            lambda p: p.invoke("ThreePhase", "run", *args),
            budgets=(1e9,),
        )
        _, stats, _ = _run_mode(
            parts[0].compiled, make_db, "compiled",
            [("ThreePhase", "run", args)],
        )
        assert stats["blocks"] > 0
        assert stats["ops"] > 0
        assert stats["db_calls"] == 8
        assert stats["control_transfers"] > 0
        assert stats["bytes_sent"] > 0
