"""End-to-end pipeline on the running example."""

import pytest

from repro.core.partition_graph import Placement
from repro.core.pipeline import Pyxis, PyxisConfig
from tests.conftest import ORDER_ENTRY_POINTS, ORDER_SOURCE, make_order_database


class TestPartitionSet:
    def test_partitions_sorted_by_budget(self, order_partitions):
        budgets = [p.budget for p in order_partitions.by_budget()]
        assert budgets == sorted(budgets)
        assert order_partitions.lowest().budget == min(budgets)
        assert order_partitions.highest().budget == max(budgets)

    def test_budget_zero_is_all_app(self, order_partitions):
        low = order_partitions.lowest()
        assert low.fraction_on_db == 0.0

    def test_high_budget_pushes_code_to_db(self, order_partitions):
        high = order_partitions.highest()
        assert high.fraction_on_db > 0.5

    def test_budget_respected(self, order_partitions):
        for part in order_partitions.partitions:
            assert part.result.db_load <= part.budget + 1e-6

    def test_objective_decreases_with_budget(self, order_partitions):
        low, high = (
            order_partitions.lowest(), order_partitions.highest(),
        )
        assert high.result.objective <= low.result.objective

    def test_compiled_programs_have_blocks(self, order_partitions):
        for part in order_partitions.partitions:
            stats = part.compiled.stats()
            assert stats["blocks"] > 0
            assert stats["methods"] == 4

    def test_pyxil_listing_renders(self, order_partitions):
        from repro.pyxil.program import format_pyxil

        listing = format_pyxil(order_partitions.highest().placed)
        assert ":APP:" in listing or ":DB:" in listing
        assert "field Order.total_cost" in listing


class TestConfig:
    def test_unknown_solver_rejected_at_construction(self):
        # A typo fails before any (expensive) graph build or parse.
        with pytest.raises(ValueError, match="unknown solver"):
            PyxisConfig(solver="gurobi")

    def test_solver_mutated_after_construction_still_rejected(self):
        # PyxisConfig is a plain dataclass; assignment bypasses
        # __post_init__, so partition() keeps its own guard.
        pyxis = Pyxis.from_source(ORDER_SOURCE, ORDER_ENTRY_POINTS)
        _, conn = make_order_database()
        profile = pyxis.profile_with(
            conn, lambda p: p.invoke("Order", "place_order", 7, 0.9)
        )
        pyxis.config.solver = "gurobi"
        with pytest.raises(ValueError, match="unknown solver"):
            pyxis.partition(profile, budgets=[0.0])

    def test_all_solvers_produce_valid_partitions(self):
        for solver in ("scipy", "bnb", "greedy"):
            pyx = Pyxis.from_source(
                ORDER_SOURCE, ORDER_ENTRY_POINTS,
                PyxisConfig(solver=solver),
            )
            _, conn = make_order_database()
            profile = pyx.profile_with(
                conn, lambda p: p.invoke("Order", "place_order", 7, 0.9)
            )
            pset = pyx.partition(profile, budgets=[1e9])
            part = pset.partitions[0]
            pset.graph.check_assignment(part.result.assignment)

    def test_default_budget_ladder_used(self, order_pyxis):
        _, conn = make_order_database()
        profile = order_pyxis.profile_with(
            conn, lambda p: p.invoke("Order", "place_order", 7, 0.9)
        )
        pset = order_pyxis.partition(profile)
        assert len(pset.partitions) == 4  # DEFAULT_FRACTIONS

    def test_reorder_disabled_still_correct(self):
        from repro.runtime.entrypoints import PartitionedApp
        from repro.sim.cluster import Cluster

        pyx = Pyxis.from_source(
            ORDER_SOURCE, ORDER_ENTRY_POINTS, PyxisConfig(reorder=False)
        )
        _, conn = make_order_database()
        profile = pyx.profile_with(
            conn, lambda p: p.invoke("Order", "place_order", 7, 0.9)
        )
        pset = pyx.partition(profile, budgets=[1e9])
        _, run_conn = make_order_database()
        app = PartitionedApp(pset.partitions[0].compiled, Cluster(), run_conn)
        assert app.invoke("Order", "place_order", 7, 0.9) == pytest.approx(54.0)


class TestBudgets:
    def test_budget_ladder_monotone(self, order_pyxis):
        from repro.core.budgets import budget_ladder

        _, conn = make_order_database()
        profile = order_pyxis.profile_with(
            conn, lambda p: p.invoke("Order", "place_order", 7, 0.9)
        )
        ladder = budget_ladder(profile)
        assert ladder == sorted(ladder)
        assert ladder[0] == 0.0

    def test_negative_fraction_rejected(self, order_pyxis):
        from repro.core.budgets import budget_ladder

        _, conn = make_order_database()
        profile = order_pyxis.profile_with(
            conn, lambda p: p.invoke("Order", "place_order", 7, 0.9)
        )
        with pytest.raises(ValueError):
            budget_ladder(profile, fractions=[-0.1])

    def test_empty_fractions_rejected(self, order_pyxis):
        from repro.core.budgets import budget_ladder
        from repro.profiler.profile_data import ProfileData

        with pytest.raises(ValueError):
            budget_ladder(ProfileData(), fractions=[])
