"""The incremental partitioning service (core/session.py).

The differential guarantee: for every workload/budget the batch tests
exercise, the incremental path -- cached structure + reweight +
warm-started solve -- lands on the same objective value as a cold
solve, and unchanged assignments reuse the identical compiled program.
"""

import pytest

from repro.core.builder import build_partition_graph, reweight_graph
from repro.core.pipeline import Pyxis, PyxisConfig
from repro.core.session import PartitionService
from tests.conftest import ORDER_ENTRY_POINTS, ORDER_SOURCE, make_order_database

BUDGET_SETS = [
    [0.0, 1e9],          # the two-rung ladder used across the suite
    [1e9],
    None,                # default ladder (DEFAULT_FRACTIONS)
]

EXACT_SOLVERS = ["scipy", "bnb"]


def make_profile(pyxis, invocations=1):
    # One fresh database per invocation (place_order inserts fixed
    # line-item keys); merge the runs into one profile.
    merged = None
    for _ in range(invocations):
        _, conn = make_order_database()
        run = pyxis.profile_with(
            conn, lambda p: p.invoke("Order", "place_order", 7, 0.9)
        )
        if merged is None:
            merged = run
        else:
            merged.merge(run)
    return merged


class TestDifferentialIncrementalVsCold:
    @pytest.mark.parametrize("solver", EXACT_SOLVERS)
    @pytest.mark.parametrize("budgets", BUDGET_SETS)
    def test_same_objective_as_cold_solve(self, solver, budgets):
        config = PyxisConfig(solver=solver)
        session = Pyxis.from_source(ORDER_SOURCE, ORDER_ENTRY_POINTS, config)
        profile_a = make_profile(session)
        session.partition(profile_a, budgets=budgets)

        # Shift the observations (more invocations => heavier counts),
        # then re-solve incrementally on the warm session.
        profile_b = make_profile(session, invocations=3)
        incremental = session.partition(profile_b, budgets=budgets)
        assert session.stats.structure_builds == 1
        if solver == "bnb":
            # bnb consumes warm-start seeds; scipy is exact and
            # ignores them, so its solves are (honestly) cold.
            assert session.stats.warm_solves > 0
        else:
            assert session.stats.warm_solves == 0

        # A completely cold pipeline on the same profile.  Share the
        # parsed program (sids are allocated per-parse, so a re-parse
        # would not line up with the recorded profile) but none of the
        # session caches.
        cold_session = Pyxis(
            session.program, PyxisConfig(solver=solver)
        )
        cold = cold_session.partition(profile_b, budgets=budgets)

        assert len(incremental.partitions) == len(cold.partitions)
        for inc, ref in zip(
            incremental.by_budget(), cold.by_budget()
        ):
            assert inc.budget == ref.budget
            assert inc.result.objective == pytest.approx(
                ref.result.objective, abs=1e-9
            )

    def test_unchanged_assignment_reuses_compiled_identically(self):
        session = Pyxis.from_source(ORDER_SOURCE, ORDER_ENTRY_POINTS)
        profile = make_profile(session)
        first = session.partition(profile, budgets=[0.0, 1e9])
        second = session.partition(profile, budgets=[0.0, 1e9])
        for a, b in zip(first.by_budget(), second.by_budget()):
            assert a.signature == b.signature
            assert a.compiled is b.compiled  # identity, not equality
            assert a.sync_plan is b.sync_plan
        assert session.stats.pyxil_reuses == 2
        assert session.stats.pyxil_compiles == 2

    def test_changed_profile_changed_assignment_recompiles(self):
        # A profile with *no* observations weights every statement 1;
        # at a budget between the two regimes the assignment changes,
        # so the signature must change and a new program be compiled.
        session = Pyxis.from_source(ORDER_SOURCE, ORDER_ENTRY_POINTS)
        profile = make_profile(session)
        total = profile.total_statement_weight()
        first = session.partition(profile, budgets=[0.4 * total])
        from repro.profiler.profile_data import ProfileData

        flat = ProfileData()
        second = session.partition(flat, budgets=[0.4 * total])
        if first.partitions[0].signature != second.partitions[0].signature:
            assert first.partitions[0].compiled is not (
                second.partitions[0].compiled
            )
            assert session.stats.pyxil_compiles >= 2


class TestInvalidate:
    def test_partition_after_invalidate_keeps_profile_weights(self):
        session = PartitionService.from_source(
            ORDER_SOURCE, ORDER_ENTRY_POINTS
        )
        profile = make_profile(session)
        before = session.partition(profile, budgets=[0.0, 1e9])
        session.invalidate()
        # No profile passed: the rebuilt structure must be reweighted
        # against the session's current profile, not left all-zero.
        after = session.partition(budgets=[0.0, 1e9])
        assert session.stats.structure_builds == 2
        total = sum(e.weight for e in session.structure.edges)
        assert total > 0.0
        for a, b in zip(before.by_budget(), after.by_budget()):
            assert a.result.objective == pytest.approx(
                b.result.objective, abs=1e-9
            )

    def test_bounded_caches_evict_oldest(self):
        session = PartitionService.from_source(
            ORDER_SOURCE, ORDER_ENTRY_POINTS
        )
        session._max_results = 4
        profile = make_profile(session)
        session.update_profile(profile)
        for budget in range(10):
            session.partition(budgets=[float(budget)])
        assert len(session._last_results) == 4
        assert len(session._pyxil_cache) <= session._max_pyxil


class TestReweightEqualsRebuild:
    def test_reweighted_graph_matches_cold_build(self):
        session = PartitionService.from_source(
            ORDER_SOURCE, ORDER_ENTRY_POINTS
        )
        profile_a = make_profile(session)
        profile_b = make_profile(session, invocations=2)
        config = session.config.builder_config()

        # Session path: structure built once, reweighted twice.
        session.update_profile(profile_a)
        session.update_profile(profile_b)
        warm = session.structure

        # Batch path: fresh build directly at profile_b (same parsed
        # program, so sids line up with the profile).
        cold = build_partition_graph(
            session.program, session.call_graph, session.points_to,
            profile_b, config,
        )

        assert set(warm.nodes) == set(cold.nodes)
        for node_id, node in warm.nodes.items():
            assert node.weight == pytest.approx(cold.nodes[node_id].weight)
            assert node.pin is cold.nodes[node_id].pin
        cold_edges = {
            (e.src, e.dst, e.kind): e.weight for e in cold.edges
        }
        warm_edges = {
            (e.src, e.dst, e.kind): e.weight for e in warm.edges
        }
        assert set(warm_edges) == set(cold_edges)
        for key, weight in warm_edges.items():
            assert weight == pytest.approx(cold_edges[key])

    def test_reweight_is_idempotent(self):
        session = PartitionService.from_source(
            ORDER_SOURCE, ORDER_ENTRY_POINTS
        )
        profile = make_profile(session)
        graph = session.update_profile(profile)
        before = {(e.src, e.dst, e.kind): e.weight for e in graph.edges}
        reweight_graph(graph, profile, session.config.builder_config())
        after = {(e.src, e.dst, e.kind): e.weight for e in graph.edges}
        assert before == after


class TestWarmStarts:
    def test_warm_start_values_mapping(self):
        from repro.core.ilp import build_ilp, resolve, warm_start_values
        from repro.core.solvers import solve_with_scipy

        session = PartitionService.from_source(
            ORDER_SOURCE, ORDER_ENTRY_POINTS
        )
        profile = make_profile(session)
        graph = session.update_profile(profile)
        previous = resolve(graph, 1e9, solve_with_scipy, "scipy")
        problem = build_ilp(graph, 1e9)
        seed = warm_start_values(problem, previous)
        assert seed is not None
        assert len(seed) == problem.num_vars
        # Seeding with the optimum reproduces its objective.
        assert problem.objective_of(seed) == pytest.approx(
            previous.objective
        )

    def test_warm_start_infeasible_under_tighter_budget_dropped(self):
        from repro.core.ilp import build_ilp, warm_start_values

        session = PartitionService.from_source(
            ORDER_SOURCE, ORDER_ENTRY_POINTS
        )
        profile = make_profile(session)
        graph = session.update_profile(profile)
        loose = session.partition(profile, budgets=[1e9]).partitions[0]
        tight_problem = build_ilp(graph, 0.0)
        seed = warm_start_values(tight_problem, loose.result)
        # The all-DB placement cannot fit a zero budget: no seed.
        assert seed is None

    @pytest.mark.parametrize("solver", ["bnb", "greedy"])
    def test_warm_started_solvers_stay_valid(self, solver):
        config = PyxisConfig(solver=solver)
        session = Pyxis.from_source(ORDER_SOURCE, ORDER_ENTRY_POINTS, config)
        profile = make_profile(session)
        total = profile.total_statement_weight()
        budgets = [0.0, 0.5 * total, 1e9]
        first = session.partition(profile, budgets=budgets)
        second = session.partition(profile, budgets=budgets)
        for part in second.partitions:
            session.structure.check_assignment(part.result.assignment)
        if solver == "bnb":
            # Exact solver: warm start must not change the optimum.
            for a, b in zip(first.by_budget(), second.by_budget()):
                assert a.result.objective == pytest.approx(
                    b.result.objective, abs=1e-9
                )
