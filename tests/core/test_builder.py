"""Partition-graph construction: weights per the paper's formulas."""

import pytest

from repro.analysis.interproc import build_call_graph
from repro.analysis.points_to import analyze_points_to
from repro.core.builder import BuilderConfig, build_partition_graph
from repro.core.partition_graph import (
    DBCODE_NODE_ID,
    EdgeKind,
    NodeKind,
    Placement,
    field_node_id,
    stmt_node_id,
)
from repro.db import Database, connect
from repro.lang import parse_source
from repro.profiler.instrument import Profiler

SOURCE = '''
class App:
    def run(self, n):
        total = 0.0
        items = range(0, n)
        for item in items:
            v = self.db.query_scalar("SELECT v FROM kv WHERE k = ?", item)
            total = total + v
        self.last_total = total
        print("done", total)
        return total
'''


@pytest.fixture(scope="module")
def built():
    program = parse_source(SOURCE, entry_points=[("App", "run")])
    pts = analyze_points_to(program)
    cg = build_call_graph(program, pts)
    db = Database()
    db.create_table("kv", [("k", "int", False), ("v", "float")], primary_key=["k"])
    conn = connect(db)
    for k in range(10):
        conn.execute("INSERT INTO kv (k, v) VALUES (?, ?)", k, float(k))
    profiler = Profiler(program, conn)
    profiler.invoke("App", "run", 5)
    config = BuilderConfig(latency=0.001)
    graph = build_partition_graph(program, cg, pts, profiler.data, config)
    return program, profiler.data, graph


class TestNodes:
    def test_every_statement_has_a_node(self, built):
        program, _, graph = built
        for stmt in program.all_statements():
            assert graph.has_node(stmt_node_id(stmt.sid))

    def test_dbcode_pinned_to_db(self, built):
        _, _, graph = built
        assert graph.node(DBCODE_NODE_ID).pin is Placement.DB

    def test_print_pinned_to_app(self, built):
        program, _, graph = built
        from repro.analysis.defuse import accesses_of

        print_sids = [
            s.sid for s in program.all_statements()
            if accesses_of(s).is_print
        ]
        assert print_sids
        for sid in print_sids:
            assert graph.node(stmt_node_id(sid)).pin is Placement.APP

    def test_statement_weight_is_execution_count(self, built):
        program, profile, graph = built
        for stmt in program.all_statements():
            node = graph.node(stmt_node_id(stmt.sid))
            expected = profile.count(stmt.sid)
            if expected:
                assert node.weight == pytest.approx(float(expected))

    def test_field_node_weight_zero(self, built):
        _, _, graph = built
        node = graph.node(field_node_id("App", "last_total"))
        assert node.weight == 0.0
        assert node.kind is NodeKind.FIELD

    def test_jdbc_statements_colocated(self, built):
        program, _, graph = built
        from repro.analysis.defuse import accesses_of

        jdbc = {
            stmt_node_id(s.sid)
            for s in program.all_statements()
            if accesses_of(s).has_db_call
        }
        assert any(jdbc <= group for group in graph.colocate_groups)

    def test_array_node_colocated_with_alloc_stmt(self, built):
        _, _, graph = built
        array_nodes = [
            n for n in graph.nodes.values() if n.kind is NodeKind.ARRAY
        ]
        assert array_nodes
        for node in array_nodes:
            partner = stmt_node_id(node.sid)
            assert any(
                {node.id, partner} <= group
                for group in graph.colocate_groups
            )


class TestEdgeWeights:
    def test_jdbc_edge_weight_is_round_trip_per_execution(self, built):
        program, profile, graph = built
        from repro.analysis.defuse import accesses_of

        jdbc_sid = next(
            s.sid for s in program.all_statements()
            if accesses_of(s).has_db_call
        )
        edge = next(
            e for e in graph.edges
            if e.src == stmt_node_id(jdbc_sid) and e.dst == DBCODE_NODE_ID
        )
        expected = 2.0 * 0.001 * profile.count(jdbc_sid)
        assert edge.weight == pytest.approx(expected)

    def test_control_edge_weight_formula(self, built):
        # Control edge: LAT * min(cnt(src), cnt(dst)).
        program, profile, graph = built
        control = [
            e for e in graph.edges
            if e.kind is EdgeKind.CONTROL and e.label == "ctrl"
        ]
        assert control
        for edge in control:
            src_sid = int(edge.src[1:])
            dst_sid = int(edge.dst[1:])
            expected = 0.001 * min(
                max(profile.count(src_sid), 1),
                max(profile.count(dst_sid), 1),
            )
            assert edge.weight == pytest.approx(expected)

    def test_data_edges_much_lighter_than_control(self, built):
        # Paper: "the weights of data edges are much smaller than the
        # weights of control edges" for small payloads.
        _, _, graph = built
        data = [e for e in graph.edges if e.kind is EdgeKind.DATA and e.weight]
        control = [
            e for e in graph.edges
            if e.kind is EdgeKind.CONTROL and e.weight
        ]
        assert max(e.weight for e in data) < min(e.weight for e in control)

    def test_update_edges_exist_for_field_writes(self, built):
        _, _, graph = built
        updates = [e for e in graph.edges if e.kind is EdgeKind.UPDATE]
        assert any(
            e.src == field_node_id("App", "last_total") for e in updates
        )

    def test_order_edges_unweighted(self, built):
        _, _, graph = built
        for edge in graph.order_edges():
            assert edge.weight == 0.0
