"""Solver cross-checks, including exhaustive optimality properties."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ilp import (
    ILPProblem,
    InfeasibleError,
    build_ilp,
    solve_partitioning,
)
from repro.core.partition_graph import (
    EdgeKind,
    Node,
    NodeKind,
    PartitionGraph,
    Placement,
)
from repro.core.solvers import (
    solve_branch_and_bound,
    solve_greedy,
    solve_with_scipy,
)


def exhaustive_optimum(problem: ILPProblem) -> float:
    """Brute-force optimum over all feasible assignments."""
    best = float("inf")
    for values in itertools.product((0, 1), repeat=problem.num_vars):
        values = list(values)
        if problem.feasible(values):
            best = min(best, problem.objective_of(values))
    return best


@st.composite
def random_graphs(draw):
    """Random weighted partition graphs with pins and a budget."""
    n = draw(st.integers(2, 7))
    g = PartitionGraph()
    weights = []
    for i in range(n):
        w = draw(st.floats(0.0, 10.0))
        weights.append(w)
        g.add_node(Node(f"s{i}", NodeKind.STMT, weight=w, sid=i))
    g.add_node(Node("dbcode", NodeKind.DBCODE, pin=Placement.DB))
    g.add_node(Node("console", NodeKind.ENTRY, pin=Placement.APP))
    ids = [f"s{i}" for i in range(n)] + ["dbcode", "console"]
    n_edges = draw(st.integers(1, 12))
    for _ in range(n_edges):
        src = draw(st.sampled_from(ids))
        dst = draw(st.sampled_from(ids))
        if src == dst:
            continue
        g.add_edge(
            src, dst, EdgeKind.DATA, weight=draw(st.floats(0.01, 5.0))
        )
    budget = draw(st.floats(0.0, 40.0))
    return g, budget


@settings(max_examples=40, deadline=None)
@given(random_graphs())
def test_scipy_matches_exhaustive(case):
    graph, budget = case
    problem = build_ilp(graph, budget)
    values = solve_with_scipy(problem)
    assert problem.feasible(values)
    assert problem.objective_of(values) == pytest.approx(
        exhaustive_optimum(problem), abs=1e-6
    )


@settings(max_examples=40, deadline=None)
@given(random_graphs())
def test_branch_and_bound_matches_exhaustive(case):
    graph, budget = case
    problem = build_ilp(graph, budget)
    values = solve_branch_and_bound(problem)
    assert problem.feasible(values)
    assert problem.objective_of(values) == pytest.approx(
        exhaustive_optimum(problem), abs=1e-6
    )


@settings(max_examples=40, deadline=None)
@given(random_graphs())
def test_greedy_feasible_and_never_better_than_optimal(case):
    graph, budget = case
    problem = build_ilp(graph, budget)
    values = solve_greedy(problem)
    assert problem.feasible(values)
    assert problem.objective_of(values) >= (
        exhaustive_optimum(problem) - 1e-9
    )


@settings(max_examples=25, deadline=None)
@given(random_graphs())
def test_solvers_agree(case):
    graph, budget = case
    problem = build_ilp(graph, budget)
    a = problem.objective_of(solve_with_scipy(problem))
    b = problem.objective_of(solve_branch_and_bound(problem))
    assert a == pytest.approx(b, abs=1e-6)


class TestIlpConstruction:
    def make_graph(self):
        g = PartitionGraph()
        g.add_node(Node("s1", NodeKind.STMT, weight=1.0, sid=1))
        g.add_node(Node("s2", NodeKind.STMT, weight=2.0, sid=2))
        g.add_node(Node("s3", NodeKind.STMT, weight=4.0, sid=3))
        g.add_node(Node("dbcode", NodeKind.DBCODE, pin=Placement.DB))
        g.add_edge("s1", "s2", EdgeKind.DATA, weight=1.0)
        g.add_edge("s2", "dbcode", EdgeKind.CONTROL, weight=3.0)
        return g

    def test_colocation_merges_variables(self):
        g = self.make_graph()
        g.colocate(["s1", "s2"])
        problem = build_ilp(g, budget=100.0)
        assert problem.num_vars == 2  # (s1+s2), s3
        merged = next(
            grp for grp in problem.var_groups if "s1" in grp
        )
        assert merged == frozenset({"s1", "s2"})

    def test_pinned_edges_fold_into_linear_terms(self):
        g = self.make_graph()
        problem = build_ilp(g, budget=100.0)
        # Edge s2 -> dbcode (pinned DB): cost 3*(1 - x_s2).
        idx = problem.group_of["s2"]
        assert problem.linear[idx] == pytest.approx(-3.0)
        assert problem.constant == pytest.approx(3.0)

    def test_budget_excludes_pinned_weight(self):
        g = self.make_graph()
        problem = build_ilp(g, budget=10.0)
        assert problem.pinned_db_load == 0.0  # dbcode has weight 0

    def test_infeasible_pinned_load(self):
        g = PartitionGraph()
        g.add_node(
            Node("s1", NodeKind.STMT, weight=5.0, sid=1, pin=Placement.DB)
        )
        with pytest.raises(InfeasibleError):
            build_ilp(g, budget=1.0)

    def test_conflicting_pins_in_group(self):
        g = PartitionGraph()
        g.add_node(Node("s1", NodeKind.STMT, weight=1.0, pin=Placement.APP))
        g.add_node(Node("s2", NodeKind.STMT, weight=1.0, pin=Placement.DB))
        g.colocate(["s1", "s2"])
        with pytest.raises(InfeasibleError):
            build_ilp(g, budget=10.0)

    def test_budget_zero_forces_all_app(self):
        g = self.make_graph()
        result = solve_partitioning(g, 0.0, solve_with_scipy, "scipy")
        for node_id in ("s1", "s2", "s3"):
            assert result.assignment[node_id] is Placement.APP

    def test_expand_validates(self):
        g = self.make_graph()
        result = solve_partitioning(g, 1000.0, solve_with_scipy, "scipy")
        assert result.assignment["dbcode"] is Placement.DB
        assert result.db_load <= 1000.0

    def test_solver_wrong_arity_rejected(self):
        g = self.make_graph()
        with pytest.raises(ValueError, match="solver returned"):
            solve_partitioning(g, 10.0, lambda p: [0], "broken")
