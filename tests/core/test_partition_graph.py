"""Partition graph data structure."""

import pytest

from repro.core.partition_graph import (
    Edge,
    EdgeKind,
    Node,
    NodeKind,
    PartitionGraph,
    Placement,
    stmt_node_id,
)


def small_graph() -> PartitionGraph:
    g = PartitionGraph()
    for i in range(1, 4):
        g.add_node(Node(stmt_node_id(i), NodeKind.STMT, weight=float(i), sid=i))
    g.add_node(Node("dbcode", NodeKind.DBCODE, pin=Placement.DB))
    g.add_edge("s1", "s2", EdgeKind.DATA, weight=1.0)
    g.add_edge("s2", "s3", EdgeKind.CONTROL, weight=2.0)
    g.add_edge("s3", "dbcode", EdgeKind.CONTROL, weight=4.0)
    g.add_edge("s1", "s3", EdgeKind.ORDER)
    return g


class TestConstruction:
    def test_parallel_edges_merge_weights(self):
        g = small_graph()
        g.add_edge("s1", "s2", EdgeKind.DATA, weight=0.5)
        edges = [
            e for e in g.edges if e.src == "s1" and e.dst == "s2"
            and e.kind is EdgeKind.DATA
        ]
        assert len(edges) == 1
        assert edges[0].weight == pytest.approx(1.5)

    def test_self_edges_dropped(self):
        g = small_graph()
        g.add_edge("s1", "s1", EdgeKind.DATA, weight=9.0)
        assert not any(e.src == e.dst for e in g.edges)

    def test_edge_requires_existing_nodes(self):
        g = small_graph()
        with pytest.raises(KeyError):
            g.add_edge("s1", "missing", EdgeKind.DATA)

    def test_order_edges_excluded_from_weighted(self):
        g = small_graph()
        kinds = {e.kind for e in g.weighted_edges()}
        assert EdgeKind.ORDER not in kinds
        assert len(g.order_edges()) == 1

    def test_conflicting_pins_rejected(self):
        g = small_graph()
        g.pin("s1", Placement.APP)
        with pytest.raises(ValueError):
            g.pin("s1", Placement.DB)

    def test_colocate_unknown_node_rejected(self):
        g = small_graph()
        with pytest.raises(KeyError):
            g.colocate(["s1", "ghost"])


class TestEvaluation:
    def test_cut_weight(self):
        g = small_graph()
        assignment = {
            "s1": Placement.APP,
            "s2": Placement.APP,
            "s3": Placement.DB,
            "dbcode": Placement.DB,
        }
        # cut edges: s2->s3 (2.0); s3->dbcode uncut; s1->s2 uncut.
        assert g.cut_weight(assignment) == pytest.approx(2.0)

    def test_db_load(self):
        g = small_graph()
        assignment = {
            "s1": Placement.APP,
            "s2": Placement.DB,
            "s3": Placement.DB,
            "dbcode": Placement.DB,
        }
        assert g.db_load(assignment) == pytest.approx(2.0 + 3.0)

    def test_check_assignment_pin_violation(self):
        g = small_graph()
        assignment = {nid: Placement.APP for nid in g.nodes}
        with pytest.raises(ValueError, match="pin"):
            g.check_assignment(assignment)

    def test_check_assignment_colocation_violation(self):
        g = small_graph()
        g.colocate(["s1", "s2"])
        assignment = {nid: Placement.DB for nid in g.nodes}
        assignment["s1"] = Placement.APP
        with pytest.raises(ValueError, match="co-location"):
            g.check_assignment(assignment)

    def test_check_assignment_missing_node(self):
        g = small_graph()
        with pytest.raises(ValueError, match="missing"):
            g.check_assignment({"s1": Placement.APP})

    def test_placement_other(self):
        assert Placement.APP.other is Placement.DB
        assert Placement.DB.other is Placement.APP

    def test_summary_counts(self):
        g = small_graph()
        text = g.summary()
        assert "stmt" in text and "dbcode" in text
