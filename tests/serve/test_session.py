"""Session pool and admission control."""

import pytest

from repro.serve.session import SessionPool


class TestSessionPool:
    def test_needs_at_least_one_session(self):
        with pytest.raises(ValueError):
            SessionPool(0)

    def test_negative_accept_limit_rejected(self):
        with pytest.raises(ValueError):
            SessionPool(1, accept_limit=-1)

    def test_free_session_runs_immediately(self):
        pool = SessionPool(2)
        ran = []
        assert pool.submit(lambda s: ran.append(s.sid))
        assert ran == [0]
        assert pool.in_use == 1

    def test_busy_pool_queues_fifo(self):
        pool = SessionPool(1)
        order = []
        held = []
        pool.submit(lambda s: held.append(s))
        pool.submit(lambda s: order.append("first"))
        pool.submit(lambda s: order.append("second"))
        assert order == []
        assert pool.waiting == 2
        pool.release(held[0])
        assert order == ["first"]
        assert pool.waiting == 1

    def test_accept_limit_rejects_overflow(self):
        pool = SessionPool(1, accept_limit=1)
        held = []
        assert pool.submit(lambda s: held.append(s))
        assert pool.submit(lambda s: None)        # one waiter allowed
        assert not pool.submit(lambda s: None)    # queue full: rejected
        assert pool.stats.rejected == 1
        assert pool.stats.accepted == 2

    def test_accept_limit_zero_means_no_queueing(self):
        pool = SessionPool(1, accept_limit=0)
        held = []
        assert pool.submit(lambda s: held.append(s))
        assert not pool.submit(lambda s: None)
        pool.release(held[0])
        assert pool.submit(lambda s: None)  # free again after release

    def test_release_hands_session_to_waiter(self):
        pool = SessionPool(1)
        sessions = []
        pool.submit(lambda s: sessions.append(s))
        pool.submit(lambda s: sessions.append(s))
        pool.release(sessions[0])
        assert len(sessions) == 2
        assert sessions[0].sid == sessions[1].sid
        assert sessions[1].uses == 2

    def test_release_unused_session_rejected(self):
        pool = SessionPool(1)
        with pytest.raises(ValueError):
            pool.release(pool.sessions[0])

    def test_peak_stats_tracked(self):
        pool = SessionPool(2, accept_limit=None)
        held = []
        for _ in range(2):
            pool.submit(lambda s: held.append(s))
        pool.submit(lambda s: None)
        pool.submit(lambda s: None)
        assert pool.stats.peak_in_use == 2
        assert pool.stats.peak_waiting == 2
