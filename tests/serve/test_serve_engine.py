"""Closed-loop serving engine: laws, pools, admission, determinism."""

import pytest

from repro.serve import (
    AdaptiveController,
    ServeConfig,
    ServeEngine,
    StaticController,
    TraceWorkload,
)
from repro.sim.queueing import Stage, StageKind, TransactionTrace


def cpu_trace(app=0.0, db=0.0, name="t", lock_groups=None):
    stages = []
    if app:
        stages.append(Stage(StageKind.APP_CPU, app))
    if db:
        stages.append(Stage(StageKind.DB_CPU, db))
    return TransactionTrace(
        name=name, stages=tuple(stages), lock_groups=lock_groups
    )


def single_option(trace):
    return TraceWorkload([[trace]], labels=["only"])


class TestClosedLoopLaws:
    def test_single_client_throughput_is_inverse_latency(self):
        # One client, no think time: txns complete back to back, so
        # throughput = 1 / service_time.
        trace = cpu_trace(db=0.01)
        engine = ServeEngine(single_option(trace))
        result = engine.run(clients=1, duration=20.0)
        assert result.throughput == pytest.approx(100.0, rel=0.05)
        assert result.percentile(50) == pytest.approx(0.01, rel=0.01)

    def test_think_time_reduces_throughput(self):
        trace = cpu_trace(db=0.01)
        engine = ServeEngine(
            single_option(trace), config=ServeConfig(think_time=0.09)
        )
        result = engine.run(clients=1, duration=30.0)
        # Expected cycle: 10ms service + ~90ms think = ~10/s.
        assert result.throughput == pytest.approx(10.0, rel=0.25)

    def test_clients_scale_until_cores_saturate(self):
        trace = cpu_trace(db=0.01)

        def run(clients):
            engine = ServeEngine(
                single_option(trace), config=ServeConfig(db_cores=2)
            )
            return engine.run(clients=clients, duration=10.0).throughput

        # 2 cores x 10ms => ~200/s capacity.
        assert run(1) == pytest.approx(100.0, rel=0.1)
        assert run(2) == pytest.approx(200.0, rel=0.1)
        assert run(8) == pytest.approx(200.0, rel=0.1)

    def test_latency_includes_queueing(self):
        trace = cpu_trace(db=0.01)
        engine = ServeEngine(
            single_option(trace), config=ServeConfig(db_cores=1)
        )
        result = engine.run(clients=4, duration=10.0)
        # 4 clients share one core: each waits ~3 service times.
        assert result.percentile(50) == pytest.approx(0.04, rel=0.1)

    def test_utilization_reported(self):
        trace = cpu_trace(app=0.002, db=0.006)
        engine = ServeEngine(
            single_option(trace), config=ServeConfig(db_cores=2)
        )
        result = engine.run(clients=2, duration=10.0)
        assert 0.0 < result.app_utilization < result.db_utilization <= 1.0


class TestSessionsAndAdmission:
    def test_session_pool_caps_concurrency(self):
        # 8 clients but only 1 session: the pool serializes them, so
        # throughput matches a single closed-loop client.
        trace = cpu_trace(db=0.01)
        engine = ServeEngine(
            single_option(trace),
            config=ServeConfig(session_pool_size=1),
        )
        result = engine.run(clients=8, duration=10.0)
        assert result.throughput == pytest.approx(100.0, rel=0.1)
        assert result.pool is not None
        assert result.pool.peak_in_use == 1
        assert result.pool.peak_waiting >= 1

    def test_admission_control_rejects_and_clients_retry(self):
        trace = cpu_trace(db=0.01)
        engine = ServeEngine(
            single_option(trace),
            config=ServeConfig(
                session_pool_size=1, accept_queue_limit=0,
                retry_backoff=0.02,
            ),
        )
        result = engine.run(clients=8, duration=10.0)
        assert result.rejected > 0
        assert result.pool is not None
        assert result.pool.rejected == result.rejected
        assert result.pool.peak_waiting == 0  # nothing ever queued
        assert result.completed > 0           # retries eventually land

    def test_lock_groups_serialize_hot_rows(self):
        locked = cpu_trace(db=0.01, lock_groups=1)

        def run(trace):
            engine = ServeEngine(
                single_option(trace), config=ServeConfig(db_cores=16)
            )
            return engine.run(clients=16, duration=10.0).throughput

        free = cpu_trace(db=0.01)
        assert run(locked) == pytest.approx(100.0, rel=0.1)
        assert run(free) > 5 * run(locked) * 0.9

    def test_per_client_histograms_cover_all_clients(self):
        trace = cpu_trace(db=0.005)
        engine = ServeEngine(single_option(trace))
        result = engine.run(clients=4, duration=10.0)
        assert len(result.per_client) == 4
        assert sum(c.completed for c in result.per_client) == result.completed
        for stats in result.per_client:
            summary = stats.summary()
            assert summary is not None
            assert summary.p50 <= summary.p95 <= summary.p99


class TestDeterminismAndValidation:
    def test_same_seed_same_samples(self):
        trace = cpu_trace(app=0.001, db=0.004)

        def run():
            engine = ServeEngine(
                single_option(trace),
                config=ServeConfig(think_time=0.01, seed=5),
            )
            return engine.run(clients=4, duration=5.0)

        first, second = run(), run()
        assert first.samples == second.samples
        assert first.completed == second.completed

    def test_different_seeds_differ(self):
        trace = cpu_trace(db=0.004)

        def run(seed):
            engine = ServeEngine(
                single_option(trace),
                config=ServeConfig(think_time=0.01, seed=seed),
            )
            return engine.run(clients=4, duration=5.0)

        assert run(1).latencies != run(2).latencies

    def test_invalid_runs_rejected(self):
        trace = cpu_trace(db=0.001)
        engine = ServeEngine(single_option(trace))
        with pytest.raises(ValueError):
            engine.run(clients=0, duration=1.0)
        with pytest.raises(ValueError):
            engine.run(clients=1, duration=0.0)

    def test_engine_is_single_use(self):
        trace = cpu_trace(db=0.001)
        engine = ServeEngine(single_option(trace))
        engine.run(clients=1, duration=1.0)
        with pytest.raises(RuntimeError, match="single-use"):
            engine.run(clients=1, duration=1.0)

    def test_empty_trace_with_think_time_advances(self):
        # Stage-less transactions are legal as long as think time moves
        # the clock; completion must not blow the Python stack.
        empty = TransactionTrace("empty", ())
        engine = ServeEngine(
            single_option(empty), config=ServeConfig(think_time=0.01)
        )
        result = engine.run(clients=2, duration=2.0)
        assert result.completed > 0
        assert all(latency == 0.0 for latency in result.latencies)

    def test_empty_trace_without_think_time_rejected(self):
        empty = TransactionTrace("empty", ())
        engine = ServeEngine(single_option(empty))
        with pytest.raises(ValueError, match="virtual clock"):
            engine.run(clients=1, duration=1.0)

    def test_zero_session_pool_size_rejected(self):
        engine = ServeEngine(
            single_option(cpu_trace(db=0.001)),
            config=ServeConfig(session_pool_size=0),
        )
        with pytest.raises(ValueError, match="at least one session"):
            engine.run(clients=1, duration=1.0)

    def test_warmup_must_fit_duration(self):
        trace = cpu_trace(db=0.001)
        engine = ServeEngine(
            single_option(trace), config=ServeConfig(warmup=5.0)
        )
        with pytest.raises(ValueError, match="warmup"):
            engine.run(clients=1, duration=2.0)

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            ServeConfig(think_time=-1.0)
        with pytest.raises(ValueError):
            ServeConfig(retry_backoff=0.0)


class TestAdaptiveServing:
    def two_option_workload(self):
        # Option 0 (low budget): cheap on the DB, pricier end to end.
        # Option 1 (high budget): DB-heavy but fast when idle.
        low = cpu_trace(app=0.004, db=0.002, name="low")
        high = cpu_trace(db=0.004, name="high")
        return TraceWorkload([[low], [high]], labels=["low", "high"])

    def test_controller_switches_under_load(self):
        workload = self.two_option_workload()
        engine = ServeEngine(
            workload,
            AdaptiveController(n_options=2, poll_interval=0.5),
            ServeConfig(db_cores=1, seed=3),
        )
        result = engine.run(clients=8, duration=10.0)
        assert result.controller is not None
        assert result.controller.switches >= 1
        assert result.controller.current_index == 0
        # The mix flips to the low-budget option once saturated.
        final_mix = result.option_mix(5.0)[-1][1]
        assert final_mix.get(0, 0.0) > 0.9

    def test_idle_system_stays_on_high_budget(self):
        workload = self.two_option_workload()
        engine = ServeEngine(
            workload,
            AdaptiveController(n_options=2, poll_interval=0.5),
            ServeConfig(db_cores=16, think_time=0.1, seed=3),
        )
        result = engine.run(clients=2, duration=10.0)
        assert result.controller is not None
        assert result.controller.switches == 0
        assert result.controller.current_index == 1

    def test_external_load_triggers_switch(self):
        workload = self.two_option_workload()
        engine = ServeEngine(
            workload,
            AdaptiveController(n_options=2, poll_interval=0.5),
            ServeConfig(db_cores=8, think_time=0.02, seed=3),
        )
        engine.schedule(5.0, lambda: engine.set_db_external_load(0.9))
        result = engine.run(clients=4, duration=15.0)
        assert result.controller is not None
        assert result.controller.switches >= 1
        first_switch = result.controller.recent_switches[0]
        assert first_switch.now > 5.0
        assert (first_switch.from_index, first_switch.to_index) == (1, 0)

    def test_live_and_replay_counters_surface(self):
        workload = self.two_option_workload()
        engine = ServeEngine(workload, StaticController(-1))
        result = engine.run(clients=2, duration=2.0)
        assert result.live_executions == 0
        # Every started transaction drew one pooled trace.
        assert result.trace_replays == len(result.samples)
