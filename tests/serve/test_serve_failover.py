"""Serve-tier failover: the tentpole's end-to-end acceptance test.

A saturating TPC-C client population drives the replicated shard tier;
the fault injector kills a primary mid-run; the replica supervisor
must detect it, promote the most caught-up replica, re-register the
new primary with the router, and let throughput recover -- all on the
virtual clock, with every replica group bit-identical afterwards.
"""

import pytest

from repro.bench.serve_experiments import serve_failover
from repro.bench.report import format_serve_failover


def _crashed_run(**overrides):
    kwargs = dict(
        fast=True, clients=96, shards=2, replicas=2, duration=12.0,
        fault_specs=("crash:db1@4.8",), seed=17,
    )
    kwargs.update(overrides)
    return serve_failover(**kwargs)


class TestKillPrimaryAcceptance:
    @pytest.fixture(scope="class")
    def result(self):
        return _crashed_run()

    def test_failover_happened_automatically(self, result):
        assert [label for _, label in result.faults_fired] == ["crash db1"]
        assert len(result.failovers) == 1
        event = result.failovers[0]
        assert event.shard == 1
        assert event.crashed_at == pytest.approx(4.8)
        assert event.generation == 1
        # Detection needs missed heartbeats, promotion a replay delay;
        # both happen promptly and in order.
        assert event.crashed_at < event.detected_at < event.promoted_at
        assert event.recovery_time < 1.5

    def test_throughput_recovers_after_promotion(self, result):
        assert result.pre_fault_throughput > 0
        assert result.post_failover_throughput > 0
        assert result.recovered_fraction >= 0.5
        assert result.throughput > 0

    def test_in_flight_work_aborted_and_retried(self, result):
        # Clients caught mid-transaction when the primary died abort
        # cleanly and re-submit after the backoff.
        assert result.aborted > 0
        assert 0 < result.txn_retries <= result.aborted
        assert result.two_pc is not None
        assert result.two_pc["commits"] > 0

    def test_replica_groups_end_bit_identical(self, result):
        assert result.replicas_consistent

    def test_report_renders_the_story(self, result):
        text = format_serve_failover(result)
        assert "crash db1" in text
        assert "failover: shard 1 -> replica" in text
        assert "% recovered" in text
        assert "txn aborts:" in text
        assert "bit-identical" in text


class TestTransientFaults:
    def test_slow_shard_degrades_then_restores(self):
        result = serve_failover(
            fast=True, clients=24, shards=2, replicas=1, duration=10.0,
            fault_specs=("slow:db0@3x8:until=6",), seed=11,
        )
        assert [label for _, label in result.faults_fired] == [
            "slow db0 x8", "restore db0 speed",
        ]
        # No crash: the supervisor has nothing to promote.
        assert result.failovers == []
        assert result.post_failover_throughput > 0
        assert result.replicas_consistent

    def test_partitioned_replica_link_heals_and_catches_up(self):
        result = serve_failover(
            fast=True, clients=24, shards=2, replicas=1, duration=10.0,
            fault_specs=("partition:db1@3:until=6",), seed=11,
        )
        labels = [label for _, label in result.faults_fired]
        assert labels == ["partition db1", "heal db1"]
        assert result.failovers == []
        # Replicas fell behind during the partition but the final
        # consistency check forces catch-up and proves bit-identity.
        assert result.replicas_consistent


class TestValidation:
    def test_needs_at_least_one_replica(self):
        with pytest.raises(ValueError, match="replica"):
            serve_failover(replicas=0)

    def test_needs_at_least_one_fault(self):
        with pytest.raises(ValueError, match="fault"):
            serve_failover(fault_specs=())

    def test_bad_spec_propagates(self):
        with pytest.raises(ValueError, match="bad fault spec"):
            serve_failover(fault_specs=("melt:db0@3",))
