"""Plan-cache counters surfacing through the serving layer."""

import random

from repro.db import Database, connect
from repro.runtime.entrypoints import InvocationOutcome
from repro.serve.engine import ServeConfig, ServeEngine, _plan_cache_delta
from repro.serve.workload import LiveWorkload, ProgramOption, TraceWorkload
from repro.sim.queueing import Stage, StageKind, TransactionTrace


def _make_connection(statements: int = 3):
    db = Database("pc")
    db.create_table(
        "kv", [("k", "int", False), ("v", "int")], primary_key=["k"]
    )
    conn = connect(db, sql_exec="compiled")
    for k in range(8):
        conn.execute("INSERT INTO kv (k, v) VALUES (?, ?)", k, k * k)
    for _ in range(statements):
        conn.query_scalar("SELECT v FROM kv WHERE k = ?", 3)
    return conn


class StubAppWithConnection:
    """PartitionedApp stand-in that carries a real JDBC connection."""

    def __init__(self, connection) -> None:
        self.connection = connection
        self.invocations = 0

    def invoke_traced(self, class_name, method, *args):
        self.invocations += 1
        self.connection.query_scalar("SELECT v FROM kv WHERE k = ?", 1)
        trace = TransactionTrace(
            name=f"{method}#{self.invocations}",
            stages=(Stage(StageKind.DB_CPU, 0.001),),
        )
        return InvocationOutcome(
            result=None, trace=trace, latency=0.0,
            control_transfers=0, db_round_trips=0,
        )


def _live_workload():
    conn = _make_connection()
    option = ProgramOption(
        label="opt", class_name="C", app=StubAppWithConnection(conn),
        next_call=lambda: ("m", ()),
    )
    return LiveWorkload([option], pool_size=2)


class TestPlanCacheSnapshot:
    def test_trace_workload_has_no_snapshot(self):
        trace = TransactionTrace("t", (Stage(StageKind.DB_CPU, 0.001),))
        assert TraceWorkload([[trace]]).plan_cache_snapshot() is None

    def test_live_workload_aggregates_connection_stats(self):
        workload = _live_workload()
        snap = workload.plan_cache_snapshot()
        assert snap is not None
        assert snap["connections"] == 1
        # INSERT + SELECT were both compiled at prepare time.
        assert snap["compiled_plans"] == 2
        assert snap["misses"] == 2
        assert snap["hits"] > 0
        assert 0.0 < snap["hit_ratio"] < 1.0

    def test_serve_result_reports_run_delta(self):
        workload = _live_workload()
        engine = ServeEngine(
            workload, config=ServeConfig(app_cores=1, db_cores=1)
        )
        result = engine.run(clients=2, duration=0.5, name="t")
        assert result.plan_cache is not None
        # The SELECT statement was prepared before the run: the run's
        # delta is all cache hits, no new compilations.
        assert result.plan_cache["misses"] == 0
        assert result.plan_cache["compiled_plans"] == 0
        assert result.plan_cache["hits"] == workload.live_executions
        assert result.plan_cache["hit_ratio"] == 1.0

    def test_delta_helper_handles_missing_snapshots(self):
        assert _plan_cache_delta(None, None) is None
        after = {"hits": 3, "misses": 1, "evictions": 0,
                 "compiled_plans": 1, "connections": 2}
        fresh = _plan_cache_delta(None, after)
        assert fresh["hits"] == 3 and fresh["connections"] == 2
        before = {"hits": 1, "misses": 1, "evictions": 0,
                  "compiled_plans": 1}
        delta = _plan_cache_delta(before, after)
        assert delta["hits"] == 2
        assert delta["misses"] == 0
        assert delta["hit_ratio"] == 1.0


class TestRunDeltaAggregation:
    """Per-run deltas over a shared workload must sum to the full
    counters -- the invariant the sweeps' merged notes rely on."""

    def test_consecutive_runs_report_disjoint_deltas(self):
        from repro.bench.serve_experiments import _merge_plan_cache

        workload = _live_workload()
        deltas = []
        for _ in range(3):
            engine = ServeEngine(
                workload, config=ServeConfig(app_cores=1, db_cores=1)
            )
            result = engine.run(clients=2, duration=0.5, name="t")
            deltas.append(result.plan_cache)
        total = None
        for delta in deltas:
            total = _merge_plan_cache(total, delta)
        final = workload.plan_cache_snapshot()
        # The workload was warmed before the first run (compilation +
        # misses happened at build time), so the merged run deltas are
        # pure hits and account for every post-warmup hit.
        assert total["misses"] == 0
        assert total["compiled_plans"] == 0
        assert total["hits"] == sum(d["hits"] for d in deltas)
        assert final["hits"] - total["hits"] > 0  # warmup hits remain

    def test_shard_sweep_merges_plan_cache_across_points(self):
        from repro.bench.serve_experiments import serve_shard_sweep

        sweep = serve_shard_sweep(
            fast=True, shard_counts=(1, 2), clients=4, db_cores=1,
            duration=2.0, think_time=0.02, seed=11,
        )
        merged = sweep.notes.get("plan_cache")
        assert merged is not None
        # Each sweep point builds a fresh workload whose statements
        # compile during the run, so the merged delta shows real
        # compilations and a healthy hit ratio.
        assert merged["compiled_plans"] > 0
        assert merged["hits"] > 0
        assert 0.0 < merged["hit_ratio"] <= 1.0


class TestSweepNotes:
    def test_sweep_merges_plan_cache_into_notes(self):
        from repro.bench.serve_experiments import _merge_plan_cache

        total = _merge_plan_cache(None, {"hits": 2, "misses": 2,
                                         "evictions": 0,
                                         "compiled_plans": 2})
        total = _merge_plan_cache(total, {"hits": 6, "misses": 0,
                                          "evictions": 0,
                                          "compiled_plans": 0})
        assert total["hits"] == 8
        assert total["misses"] == 2
        assert total["compiled_plans"] == 2
        assert total["hit_ratio"] == 0.8
        assert _merge_plan_cache(total, None) is total

    def test_report_line(self):
        from repro.bench.report import _plan_cache_line

        assert _plan_cache_line({}) is None
        line = _plan_cache_line({
            "plan_cache": {"hits": 8, "misses": 2, "evictions": 1,
                           "hit_ratio": 0.8, "compiled_plans": 2},
        })
        assert "8 hit(s)" in line
        assert "80.00%" in line
        assert "2 plan(s) compiled" in line
