"""The HTAP serve scenario: analytics ride the columnar mirror with a
bounded OLTP cost, and the mirror stays exact under the live write mix."""

from repro.bench.report import format_serve_htap
from repro.bench.serve_experiments import serve_htap

CLIENTS = 16
DURATION = 8.0
SEED = 23


def run_scenario():
    return serve_htap(
        fast=True, clients=CLIENTS, duration=DURATION, seed=SEED,
    )


class TestServeHtap:
    def test_htap_run_meets_acceptance(self):
        result = run_scenario()
        # The analytics mix ran for real against live data...
        assert result.reports_run > 0
        assert result.analytics_rows_scanned > 0
        assert result.best_sellers and result.best_sellers[0][2] > 0
        assert result.district_groups > 0
        # ...the redo stream kept every columnar mirror exact...
        assert result.mirrors_consistent
        assert result.mirror_counters["commits_applied"] > 0
        # ...and the OLTP mix paid at most the acceptance bound.
        assert result.oltp_only_throughput > 0
        assert result.degradation <= 0.10

    def test_htap_run_is_deterministic(self):
        a = run_scenario()
        b = run_scenario()
        assert a.oltp_only_throughput == b.oltp_only_throughput
        assert a.htap_throughput == b.htap_throughput
        assert a.best_sellers == b.best_sellers
        assert a.reports_run == b.reports_run

    def test_report_formatter(self):
        text = format_serve_htap(run_scenario())
        assert "serve htap: tpcc" in text
        assert "degradation" in text
        assert "best seller" in text
        assert "bit-identical to the row store" in text
