"""Serve-tier durability: whole-cluster crash, recovery, restart.

End-to-end acceptance of the WAL tentpole: a TPC-C population runs
against a WAL-attached sharded tier, storage faults are injected
mid-run, the whole cluster is killed at ``kill_at``, recovery rebuilds
every option's database from disk, and the result must be
bit-identical to the in-memory state at the kill (the uninjected
oracle -- torn writes and covered corruption damage disk only).
"""

import pytest

from repro.bench.report import format_wal_recovery
from repro.bench.serve_experiments import serve_wal_recovery
from repro.serve import ServeConfig, ServeEngine, TraceWorkload
from repro.sim.queueing import Stage, StageKind, TransactionTrace


class TestCrashRecoveryAcceptance:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        wal_dir = tmp_path_factory.mktemp("wal")
        return serve_wal_recovery(
            wal_dir, fast=True, clients=32, shards=2, duration=10.0,
            kill_at=6.0,
            fault_specs=("tornwrite:db0@3", "corrupt:db1@3"),
            seed=17, restart=True,
        )

    def test_storage_faults_armed_then_applied_at_crash(self, result):
        labels = [label for _, label in result.faults_fired]
        assert labels == ["tornwrite db0", "corrupt db1"]
        # One torn tail per option's shard-0 log, dropped at recovery.
        assert result.torn_tails == 2

    def test_recovery_is_bit_identical_to_the_oracle(self, result):
        assert result.identity_checked
        assert result.identical, result.mismatches
        assert result.mismatches == []
        # With sync-on-commit every acknowledged frame was durable.
        assert result.lost_frames == 0
        assert result.sync_failures == 0

    def test_redo_was_actually_replayed(self, result):
        assert result.pre_kill_completed > 0
        assert result.commits_applied > 0
        assert result.checkpoints >= 2  # periodic, both options
        assert result.wal_bytes > 0

    def test_cluster_restarts_and_serves_from_recovered_state(self, result):
        assert result.restarted
        assert result.post_restart_completed > 0
        assert result.post_restart_throughput > 0

    def test_report_renders_the_story(self, result):
        text = format_wal_recovery(result)
        assert "tornwrite db0" in text and "corrupt db1" in text
        assert "bit-identical" in text
        assert "restart" in text

    def test_needs_a_sharded_tier(self, tmp_path):
        with pytest.raises(ValueError, match="shard"):
            serve_wal_recovery(tmp_path, shards=1)


class TestFsyncFaults:
    def test_fsyncfail_under_group_commit_loses_only_unacked(
        self, tmp_path
    ):
        result = serve_wal_recovery(
            tmp_path, fast=True, clients=16, shards=2, duration=8.0,
            kill_at=5.0, sync_policy="group",
            fault_specs=("fsyncfail:db0@2:until=4",), seed=11,
        )
        labels = [label for _, label in result.faults_fired]
        assert labels == ["fsyncfail db0", "heal fsyncfail db0"]
        # Recovery still runs; identity is only asserted when no
        # acknowledged frame was lost to the failing fsyncs.
        assert result.commits_applied >= 0
        if result.lost_frames == 0:
            assert result.identity_checked and result.identical
        else:
            assert not result.identity_checked


class TestEngineStorageFaultHook:
    def _engine(self):
        trace = TransactionTrace(
            name="t", stages=(Stage(StageKind.DB_CPU, 0.01),)
        )
        return ServeEngine(
            TraceWorkload([[trace]], labels=["only"]),
            config=ServeConfig(db_shards=2),
        )

    def test_storage_fault_without_wal_is_rejected(self):
        engine = self._engine()
        with pytest.raises(ValueError, match="--wal"):
            engine.set_storage_fault("tornwrite", 0, True)

    def test_unknown_kind_rejected(self):
        engine = self._engine()
        with pytest.raises(ValueError, match="unknown storage fault"):
            engine.set_storage_fault("melt", 0, True)

    def test_tornwrite_arms_instead_of_applying(self, tmp_path):
        from repro.db import Database, attach_wal

        db = Database("d")
        db.create_table("kv", [("k", "int", False)], primary_key=["k"])
        manager = attach_wal(db, tmp_path)
        engine = self._engine()
        engine.attach_wal_managers([manager])
        engine.set_storage_fault("tornwrite", 1, True)
        assert engine.armed_storage_faults == [("tornwrite", 1)]
        # fsyncfail, by contrast, takes effect immediately.
        engine.set_storage_fault("fsyncfail", 0, True)
        assert manager.wals[0].fsync_fail
        engine.set_storage_fault("fsyncfail", 0, False)
        assert not manager.wals[0].fsync_fail
        manager.close()
