"""Determinism regression: identical seed/config => identical results.

Two completely independent serve runs -- each building its own
workload (fresh databases, fresh partitioning pipeline, fresh trace
pools) with the same seed and configuration, including a sharded
database tier -- must produce identical ``ServeResult``s: throughput,
latency percentiles, per-shard utilization, controller switch events
and plan-cache deltas.  Everything runs on the virtual clock, so any
nondeterminism (an unordered dict, a salted hash in the router, a
wall-clock leak) shows up as a diff here.
"""

from repro.serve.controller import AdaptiveController
from repro.serve.engine import ServeConfig, ServeEngine
from repro.serve.workload import make_tpcc_workload

SHARDS = 2
CLIENTS = 12
DURATION = 6.0
SEED = 29


def _run_once():
    built = make_tpcc_workload(
        db_cores=2, seed=SEED, pool_size=4, shards=SHARDS,
    )
    engine = ServeEngine(
        built.workload,
        AdaptiveController(n_options=2, poll_interval=DURATION / 6.0),
        ServeConfig(
            app_cores=8, db_cores=2, db_shards=SHARDS,
            network=built.network, think_time=0.02, seed=SEED,
            warmup=1.0, ramp=0.02,
        ),
    )
    return engine.run(clients=CLIENTS, duration=DURATION, name="det")


def _fingerprint(result):
    controller = result.controller
    return {
        "completed": result.completed,
        "throughput": result.throughput,
        "p50": result.percentile(50),
        "p95": result.percentile(95),
        "p99": result.percentile(99),
        "app_utilization": result.app_utilization,
        "db_utilization": result.db_utilization,
        "db_shard_utilization": list(result.db_shard_utilization),
        "rejected": result.rejected,
        "live_executions": result.live_executions,
        "trace_replays": result.trace_replays,
        "plan_cache": result.plan_cache,
        "switches": controller.switches if controller else None,
        "switch_events": [
            (event.now, event.from_index, event.to_index, event.level)
            for event in controller.recent_switches
        ] if controller else None,
        "samples": [
            (s.when, s.latency, s.trace_name, s.client_id, s.option)
            for s in result.samples
        ],
    }


def test_sharded_serve_runs_are_deterministic():
    first = _fingerprint(_run_once())
    second = _fingerprint(_run_once())
    assert first == second
    # The run must have actually exercised the tier.
    assert first["completed"] > 0
    assert len(first["db_shard_utilization"]) == SHARDS
    assert first["plan_cache"] is not None
    assert first["plan_cache"]["compiled_plans"] > 0


def _run_faulted(tracing=False):
    """A replicated run with a mid-run primary crash and failover."""
    from repro.sim.cluster import FaultInjector, parse_fault_spec

    built = make_tpcc_workload(
        db_cores=2, seed=SEED, pool_size=4, shards=SHARDS, replicas=1,
    )
    engine = ServeEngine(
        built.workload,
        AdaptiveController(n_options=2, poll_interval=DURATION / 6.0),
        ServeConfig(
            app_cores=8, db_cores=2, db_shards=SHARDS,
            network=built.network, think_time=0.02, seed=SEED,
            warmup=1.0, ramp=0.02,
        ),
        tracing=tracing,
    )
    engine.attach_backends(built.databases, built.clusters)
    injector = FaultInjector([parse_fault_spec("crash:db1@2.5")])
    engine.inject_faults(injector)
    result = engine.run(clients=CLIENTS, duration=DURATION, name="det")
    return result, list(injector.fired), engine


def _faulted_fingerprint(result, fired):
    base = _fingerprint(result)
    base.update(
        fired=fired,
        aborted=result.aborted,
        txn_retries=result.txn_retries,
        two_pc=result.two_pc,
        failovers=[
            (e.shard, e.crashed_at, e.detected_at, e.promoted_at,
             e.chosen_replica, e.replayed_entries, e.generation)
            for e in result.failovers
        ],
    )
    return base


def test_fault_injected_runs_are_deterministic():
    """Identical seeds => identical crash, detection and promotion
    timeline, identical abort/retry counts, identical samples."""
    result1, fired1, _ = _run_faulted()
    result2, fired2, _ = _run_faulted()
    first = _faulted_fingerprint(result1, fired1)
    second = _faulted_fingerprint(result2, fired2)
    assert first == second
    assert first["fired"] == [(2.5, "crash db1")]
    assert len(first["failovers"]) == 1
    assert first["failovers"][0][0] == 1  # shard
    assert first["failovers"][0][6] == 1  # generation
    assert first["completed"] > 0
    # The unified metrics snapshot is part of the deterministic
    # surface too.
    assert result1.metrics == result2.metrics
    assert result1.metrics["serve.txn.completed"] > 0


def test_trace_and_metrics_exports_are_byte_identical():
    """Two independent identically-seeded traced runs must export
    byte-identical Chrome trace JSON and metrics JSON."""
    from repro.obs import render_chrome_trace, render_metrics

    result1, _, engine1 = _run_faulted(tracing=True)
    result2, _, engine2 = _run_faulted(tracing=True)
    trace1 = render_chrome_trace(engine1.tracer)
    trace2 = render_chrome_trace(engine2.tracer)
    assert trace1 == trace2
    assert len(trace1) > 1000
    metrics1 = render_metrics(result1.metrics)
    metrics2 = render_metrics(result2.metrics)
    assert metrics1 == metrics2


def test_tracing_does_not_perturb_the_run():
    """Tracing must be observation-only: the traced run's results are
    identical to the untraced run's."""
    result_off, fired_off, _ = _run_faulted(tracing=False)
    result_on, fired_on, _ = _run_faulted(tracing=True)
    assert _faulted_fingerprint(result_off, fired_off) == (
        _faulted_fingerprint(result_on, fired_on)
    )


def test_failover_span_tree_matches_failover_event():
    """The exported crash -> detect -> promote -> replay span tree
    carries exactly the FailoverEvent's timeline."""
    import json

    from repro.obs import render_chrome_trace

    result, _, engine = _run_faulted(tracing=True)
    (event,) = result.failovers
    doc = json.loads(render_chrome_trace(engine.tracer))
    spans = {
        e["name"]: e
        for e in doc["traceEvents"]
        if e["ph"] == "X" and e["name"].startswith("failover")
    }
    assert set(spans) == {
        "failover", "failover.detect", "failover.promote",
        "failover.replay",
    }

    def usec(seconds):
        return round(seconds * 1e6, 3)

    root = spans["failover"]
    detect = spans["failover.detect"]
    promote = spans["failover.promote"]
    replay = spans["failover.replay"]
    assert root["ts"] == usec(event.crashed_at)
    assert root["dur"] == usec(event.recovery_time)
    assert detect["ts"] == usec(event.crashed_at)
    assert detect["ts"] + detect["dur"] == usec(event.detected_at)
    assert promote["ts"] == usec(event.detected_at)
    assert promote["ts"] + promote["dur"] == usec(event.promoted_at)
    assert replay["ts"] + replay["dur"] == usec(event.promoted_at)
    # Parentage: detect and promote under the root, replay under
    # promote.
    assert detect["args"]["parent_id"] == root["args"]["span_id"]
    assert promote["args"]["parent_id"] == root["args"]["span_id"]
    assert replay["args"]["parent_id"] == promote["args"]["span_id"]
    # The span args carry the event's promotion facts.
    assert promote["args"]["chosen_replica"] == event.chosen_replica
    assert promote["args"]["generation"] == event.generation
    assert replay["args"]["replayed_entries"] == event.replayed_entries
    # All four spans live on the supervisor track.
    tids = {spans[name]["tid"] for name in spans}
    assert len(tids) == 1
    (meta,) = [
        e for e in doc["traceEvents"]
        if e["ph"] == "M" and e["tid"] in tids
    ]
    assert meta["args"]["name"] == "supervisor"
