"""Workload sources: pooling, live execution, factories."""

import random

import pytest

from repro.runtime.entrypoints import InvocationOutcome
from repro.serve.workload import (
    LiveWorkload,
    ProgramOption,
    TraceWorkload,
    make_micro_workload,
)
from repro.sim.queueing import Stage, StageKind, TransactionTrace


class StubApp:
    """Stands in for PartitionedApp: each invocation yields a fresh trace."""

    def __init__(self) -> None:
        self.invocations = 0

    def invoke_traced(self, class_name, method, *args):
        self.invocations += 1
        trace = TransactionTrace(
            name=f"{class_name}.{method}#{self.invocations}",
            stages=(Stage(StageKind.DB_CPU, 0.001 * self.invocations),),
        )
        return InvocationOutcome(
            result=None, trace=trace, latency=0.0,
            control_transfers=0, db_round_trips=0,
        )


def stub_option(label="opt", lock_groups=None):
    return ProgramOption(
        label=label, class_name="C", app=StubApp(),
        next_call=lambda: ("m", ()), lock_groups=lock_groups,
    )


class TestTraceWorkload:
    def test_requires_traces(self):
        with pytest.raises(ValueError):
            TraceWorkload([])
        with pytest.raises(ValueError):
            TraceWorkload([[]])

    def test_labels_must_match(self):
        trace = TransactionTrace("t", ())
        with pytest.raises(ValueError):
            TraceWorkload([[trace]], labels=["a", "b"])

    def test_draws_from_requested_option(self):
        a = TransactionTrace("a", ())
        b = TransactionTrace("b", ())
        workload = TraceWorkload([[a], [b]], labels=["low", "high"])
        rng = random.Random(1)
        assert workload.draw(0, rng).name == "a"
        assert workload.draw(1, rng).name == "b"
        assert workload.trace_replays == 2


class TestLiveWorkload:
    def test_first_draws_execute_live(self):
        option = stub_option()
        workload = LiveWorkload([option], pool_size=3)
        rng = random.Random(1)
        names = [workload.draw(0, rng).name for _ in range(3)]
        assert workload.live_executions == 3
        assert workload.trace_replays == 0
        assert len(set(names)) == 3  # each execution produced a new trace

    def test_pool_replays_after_fill(self):
        option = stub_option()
        workload = LiveWorkload([option], pool_size=2)
        rng = random.Random(1)
        for _ in range(10):
            workload.draw(0, rng)
        assert workload.live_executions == 2
        assert workload.trace_replays == 8
        assert option.app.invocations == 2

    def test_refresh_every_keeps_sampling_the_program(self):
        option = stub_option()
        workload = LiveWorkload([option], pool_size=2, refresh_every=4)
        rng = random.Random(1)
        for _ in range(12):
            workload.draw(0, rng)
        assert workload.live_executions > 2

    def test_lock_groups_tagged_onto_traces(self):
        option = stub_option(lock_groups=7)
        workload = LiveWorkload([option], pool_size=1)
        rng = random.Random(1)
        trace = workload.draw(0, rng)
        assert trace.lock_groups == 7

    def test_options_pool_independently(self):
        workload = LiveWorkload(
            [stub_option("a"), stub_option("b")], pool_size=1
        )
        rng = random.Random(1)
        workload.draw(0, rng)
        workload.draw(1, rng)
        assert workload.labels == ["a", "b"]
        assert workload.live_executions == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            LiveWorkload([])
        with pytest.raises(ValueError):
            LiveWorkload([stub_option()], pool_size=0)


class TestFactories:
    def test_micro_factory_builds_two_budget_options(self):
        built = make_micro_workload(pool_size=1)
        workload = built.workload
        assert workload.labels == ["app_like", "db_like"]
        rng = random.Random(1)
        app_trace = workload.draw(0, rng)
        db_trace = workload.draw(1, rng)
        assert workload.live_executions == 2
        # The low-budget option keeps work on the app server; the
        # high-budget option pushes it to the database server.
        assert app_trace.app_cpu > app_trace.db_cpu
        assert db_trace.db_cpu > db_trace.app_cpu
