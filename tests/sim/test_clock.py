"""Virtual clock and event loop."""

import pytest

from repro.sim.clock import Event, EventLoop, PeriodicTask, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(-1.0)

    def test_advance(self):
        clock = VirtualClock()
        assert clock.advance(1.5) == 1.5
        assert clock.advance(0.5) == 2.0

    def test_advance_negative_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_advance_to(self):
        clock = VirtualClock()
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_advance_to_backwards_rejected(self):
        clock = VirtualClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)

    def test_advance_to_same_time_ok(self):
        clock = VirtualClock(2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_reset(self):
        clock = VirtualClock(9.0)
        clock.reset()
        assert clock.now == 0.0


class TestEventLoop:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule(3.0, lambda: fired.append("c"))
        loop.schedule(1.0, lambda: fired.append("a"))
        loop.schedule(2.0, lambda: fired.append("b"))
        loop.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        loop = EventLoop()
        fired = []
        for tag in ("first", "second", "third"):
            loop.schedule(1.0, lambda t=tag: fired.append(t))
        loop.run()
        assert fired == ["first", "second", "third"]

    def test_clock_advances_with_events(self):
        loop = EventLoop()
        times = []
        loop.schedule(2.5, lambda: times.append(loop.clock.now))
        loop.schedule(5.0, lambda: times.append(loop.clock.now))
        loop.run()
        assert times == [2.5, 5.0]

    def test_cancelled_events_skipped(self):
        loop = EventLoop()
        fired = []
        event = loop.schedule(1.0, lambda: fired.append("cancelled"))
        loop.schedule(2.0, lambda: fired.append("kept"))
        event.cancel()
        loop.run()
        assert fired == ["kept"]

    def test_run_until_stops_before_later_events(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda: fired.append(1))
        loop.schedule(10.0, lambda: fired.append(10))
        loop.run(until=5.0)
        assert fired == [1]
        assert loop.clock.now == 5.0
        assert loop.pending == 1

    def test_events_scheduled_during_run(self):
        loop = EventLoop()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                loop.schedule(1.0, lambda: chain(n + 1))

        loop.schedule(1.0, lambda: chain(1))
        loop.run()
        assert fired == [1, 2, 3]
        assert loop.clock.now == 3.0

    def test_schedule_in_past_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            loop.schedule(-1.0, lambda: None)

    def test_max_events_guard(self):
        loop = EventLoop()

        def forever():
            loop.schedule(0.001, forever)

        loop.schedule(0.001, forever)
        with pytest.raises(RuntimeError, match="max_events"):
            loop.run(max_events=100)

    def test_returns_processed_count(self):
        loop = EventLoop()
        for _ in range(5):
            loop.schedule(1.0, lambda: None)
        assert loop.run() == 5

    def test_step_on_empty_returns_false(self):
        assert EventLoop().step() is False


class TestPeriodicTask:
    def test_fires_every_interval(self):
        loop = EventLoop()
        times = []
        loop.schedule_periodic(2.0, lambda: times.append(loop.clock.now))
        loop.schedule(7.0, lambda: None)  # drives the clock past 3 fires
        loop.run(until=7.0)
        assert times == [2.0, 4.0, 6.0]

    def test_until_stops_rearming(self):
        loop = EventLoop()
        task = loop.schedule_periodic(1.0, lambda: None, until=3.0)
        loop.run()
        assert task.fired == 3
        assert not task.active

    def test_cancel_stops_future_fires(self):
        loop = EventLoop()
        fired = []

        def tick():
            fired.append(loop.clock.now)
            if len(fired) == 2:
                task.cancel()

        task = loop.schedule_periodic(1.0, tick)
        loop.run()
        assert fired == [1.0, 2.0]

    def test_non_positive_interval_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            loop.schedule_periodic(0.0, lambda: None)

    def test_interleaves_deterministically_with_plain_events(self):
        # A periodic fire and a plain event at the same instant run in
        # scheduling order -- the tie-break rule the serving engine
        # relies on for reproducibility.
        loop = EventLoop()
        order = []
        loop.schedule_periodic(2.0, lambda: order.append("poll"))
        loop.schedule(2.0, lambda: order.append("event"))
        loop.run(until=2.0)
        assert order == ["poll", "event"]
