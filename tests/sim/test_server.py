"""Server CPU accounting."""

import pytest

from repro.sim.server import CostModel, CpuAccount, Server


class TestCostModel:
    def test_db_operation_scales_with_rows(self):
        model = CostModel(db_fixed_cost=100e-6, db_row_cost=10e-6)
        assert model.db_operation(0) == pytest.approx(100e-6)
        assert model.db_operation(10) == pytest.approx(200e-6)

    def test_db_operation_negative_rows_clamped(self):
        model = CostModel(db_fixed_cost=100e-6, db_row_cost=10e-6)
        assert model.db_operation(-5) == pytest.approx(100e-6)


class TestCpuAccount:
    def test_total_sums_categories(self):
        account = CpuAccount(
            statements=1.0, database=2.0, runtime_overhead=0.5,
            serialization=0.25,
        )
        assert account.total == pytest.approx(3.75)

    def test_merge(self):
        a = CpuAccount(statements=1.0)
        b = CpuAccount(database=2.0)
        a.merge(b)
        assert a.total == pytest.approx(3.0)

    def test_reset(self):
        account = CpuAccount(statements=1.0)
        account.reset()
        assert account.total == 0.0


class TestServer:
    def test_requires_at_least_one_core(self):
        with pytest.raises(ValueError):
            Server("bad", cores=0)

    def test_external_load_bounds(self):
        with pytest.raises(ValueError):
            Server("bad", cores=4, external_load=1.0)

    def test_effective_cores(self):
        server = Server("db", cores=16, external_load=0.75)
        assert server.effective_cores == pytest.approx(4.0)

    def test_charges_accumulate_by_category(self):
        server = Server("db", cores=4)
        server.charge_statement(10)
        server.charge_db_operation(5)
        server.charge_block_dispatch()
        server.charge_serialization(1000)
        assert server.account.statements > 0
        assert server.account.database > 0
        assert server.account.runtime_overhead > 0
        assert server.account.serialization > 0

    def test_charge_returns_cost(self):
        server = Server("app")
        cost = server.charge_statement(3)
        assert cost == pytest.approx(3 * server.cost_model.statement_cost)

    def test_reset(self):
        server = Server("app")
        server.charge_statement()
        server.reset()
        assert server.account.total == 0.0
