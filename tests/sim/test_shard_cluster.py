"""Sharded cluster simulation: per-shard servers, stages and pools."""

import pytest

from repro.serve.engine import ServeConfig, ServeEngine
from repro.serve.workload import TraceWorkload
from repro.sim.cluster import Cluster, ClusterConfig
from repro.sim.queueing import Stage, StageKind, TransactionTrace


class TestShardedCluster:
    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(db_shards=0)

    def test_db_cpu_lands_on_the_statement_shard(self):
        cluster = Cluster(ClusterConfig(db_shards=3))
        cluster.start_trace()
        cluster.record_cpu("app", 0.001)
        cluster.set_statement_shard(2)
        cluster.record_cpu("db", 0.002)
        cluster.set_statement_shard(0)
        cluster.record_cpu("db", 0.003)
        trace = cluster.finish_trace("t")
        kinds = [(s.kind, s.shard) for s in trace.stages]
        assert kinds == [
            (StageKind.APP_CPU, 0),
            (StageKind.DB_CPU, 2),
            (StageKind.DB_CPU, 0),
        ]
        assert trace.stages[1].duration == pytest.approx(0.002)
        assert trace.stages[2].duration == pytest.approx(0.003)

    def test_same_shard_cpu_merges_different_shards_do_not(self):
        cluster = Cluster(ClusterConfig(db_shards=2))
        cluster.start_trace()
        cluster.record_cpu("db", 0.001)
        cluster.record_cpu("db", 0.001)  # merges with the previous
        cluster.set_statement_shard(1)
        cluster.record_cpu("db", 0.001)  # new stage on shard 1
        trace = cluster.finish_trace("t")
        assert [(s.shard, pytest.approx(s.duration)) for s in trace.stages] \
            == [(0, pytest.approx(0.002)), (1, pytest.approx(0.001))]

    def test_attach_sharded_database_steers_attribution(self):
        from repro.db import ShardedDatabase, ShardingScheme, connect_sharded

        scheme = ShardingScheme({"kv": ("k",)})
        sdb = ShardedDatabase("t", shards=2, scheme=scheme)
        sdb.create_table(
            "kv", [("k", "int", False), ("v", "int")], primary_key=["k"]
        )
        cluster = Cluster(ClusterConfig(db_shards=2))
        cluster.attach_sharded_database(sdb)
        conn = connect_sharded(sdb)
        cluster.start_trace()
        # Find keys living on different shards, then execute and
        # charge: the observer must steer the shard between charges.
        keys = {}
        for k in range(8):
            keys.setdefault(sdb.scheme.shard_for("kv", (k,), 2), k)
            if len(keys) == 2:
                break
        for shard, k in sorted(keys.items()):
            conn.execute("INSERT INTO kv (k, v) VALUES (?, ?)", k, 1)
            cluster.record_cpu("db", 0.001)
        trace = cluster.finish_trace("t")
        assert sorted(s.shard for s in trace.stages) == [0, 1]

    def test_attach_rejects_mismatched_shard_counts(self):
        from repro.db import ShardedDatabase

        cluster = Cluster(ClusterConfig(db_shards=2))
        with pytest.raises(ValueError):
            cluster.attach_sharded_database(ShardedDatabase("t", shards=3))

    def test_unknown_shard_rejected(self):
        cluster = Cluster(ClusterConfig(db_shards=2))
        with pytest.raises(ValueError):
            cluster.set_statement_shard(2)

    def test_reset_restores_single_shard_attribution(self):
        cluster = Cluster(ClusterConfig(db_shards=2))
        cluster.set_statement_shard(1)
        cluster.reset()
        cluster.start_trace()
        cluster.record_cpu("db", 0.001)
        trace = cluster.finish_trace("t")
        assert trace.stages[0].shard == 0


def _shard_trace(shard: int, seconds: float = 0.01) -> TransactionTrace:
    return TransactionTrace(
        name=f"shard{shard}",
        stages=(Stage(StageKind.DB_CPU, seconds, shard=shard),),
    )


class TestShardedServeEngine:
    def test_db_stages_queue_on_their_shard_pool(self):
        workload = TraceWorkload(
            [[_shard_trace(0), _shard_trace(1)]], labels=["only"]
        )
        engine = ServeEngine(
            workload,
            config=ServeConfig(
                app_cores=2, db_cores=1, db_shards=2, think_time=0.001,
            ),
        )
        result = engine.run(clients=4, duration=2.0)
        assert result.completed > 0
        assert len(result.db_shard_utilization) == 2
        # Both shard servers saw work; the mean matches the report.
        assert all(u > 0 for u in result.db_shard_utilization)
        assert result.db_utilization == pytest.approx(
            sum(result.db_shard_utilization) / 2
        )

    def test_two_shards_double_saturated_throughput(self):
        """One 1-core server saturates at 100 txn/s for 10 ms txns; a
        second shard server doubles it (virtual-clock deterministic)."""
        single = ServeEngine(
            TraceWorkload([[_shard_trace(0)]]),
            config=ServeConfig(app_cores=2, db_cores=1, db_shards=1),
        ).run(clients=8, duration=4.0)
        double = ServeEngine(
            TraceWorkload([[_shard_trace(0), _shard_trace(1)]]),
            config=ServeConfig(
                app_cores=2, db_cores=1, db_shards=2, seed=17,
            ),
        ).run(clients=8, duration=4.0)
        assert single.throughput == pytest.approx(100.0, rel=0.05)
        # Random draws split ~50/50 across the two shard pools.
        assert double.throughput > 1.7 * single.throughput

    def test_external_load_applies_to_every_shard(self):
        engine = ServeEngine(
            TraceWorkload([[_shard_trace(0)]]),
            config=ServeConfig(app_cores=2, db_cores=4, db_shards=2),
        )
        engine.set_db_external_load(0.5)
        assert all(pool.reserved == 2 for pool in engine.dbs)

    def test_lock_groups_route_to_per_shard_tables(self):
        engine = ServeEngine(
            TraceWorkload([[_shard_trace(0)]]),
            config=ServeConfig(app_cores=2, db_cores=1, db_shards=3),
        )
        assert len(engine.lock_tables) == 3
        assert engine._lock_table_for(4) is engine.lock_tables[1]

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            ServeConfig(db_shards=0)
