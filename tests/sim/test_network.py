"""Network model."""

import pytest

from repro.sim.network import NetworkModel, NetworkStats


class TestNetworkStats:
    def test_record_accumulates(self):
        stats = NetworkStats()
        stats.record(100)
        stats.record(50)
        assert stats.messages == 2
        assert stats.bytes == 150

    def test_reset(self):
        stats = NetworkStats()
        stats.record(10)
        stats.reset()
        assert stats.messages == 0
        assert stats.bytes == 0

    def test_merge(self):
        a, b = NetworkStats(), NetworkStats()
        a.record(10)
        b.record(20)
        a.merge(b)
        assert a.messages == 2
        assert a.bytes == 30


class TestNetworkModel:
    def test_round_trip_is_twice_one_way(self):
        net = NetworkModel(one_way_latency=0.001)
        assert net.round_trip_latency == pytest.approx(0.002)

    def test_transfer_time_includes_bandwidth(self):
        net = NetworkModel(
            one_way_latency=0.001, bandwidth=1000.0, per_message_overhead=0
        )
        # 500 bytes at 1000 B/s = 0.5 s on the wire.
        assert net.transfer_time(500) == pytest.approx(0.501)

    def test_overhead_added_per_message(self):
        net = NetworkModel(
            one_way_latency=0.0, bandwidth=100.0, per_message_overhead=50
        )
        assert net.transfer_time(0) == pytest.approx(0.5)

    def test_send_records_direction(self):
        net = NetworkModel()
        net.send(100, to_db=True)
        net.send(200, to_db=False)
        net.send(300, to_db=True)
        assert net.app_to_db.messages == 2
        assert net.db_to_app.messages == 1
        assert net.total_messages() == 3

    def test_total_bytes_includes_overhead(self):
        net = NetworkModel(per_message_overhead=64)
        net.send(100, to_db=True)
        assert net.total_bytes() == 164

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel().transfer_time(-1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel(one_way_latency=-0.1)
        with pytest.raises(ValueError):
            NetworkModel(bandwidth=0)

    def test_reset_stats(self):
        net = NetworkModel()
        net.send(10, to_db=True)
        net.reset_stats()
        assert net.total_messages() == 0
        assert net.total_bytes() == 0
