"""Queueing simulator: sanity laws, contention, determinism."""

import pytest

from repro.sim.queueing import (
    CorePool,
    LockTable,
    QueueingSimulator,
    SimNetworkParams,
    Stage,
    StageKind,
    TransactionTrace,
    sweep_throughput,
)


def cpu_trace(app: float = 0.0, db: float = 0.0, name: str = "t") -> TransactionTrace:
    stages = []
    if app:
        stages.append(Stage(StageKind.APP_CPU, app))
    if db:
        stages.append(Stage(StageKind.DB_CPU, db))
    return TransactionTrace(name=name, stages=tuple(stages))


class TestStage:
    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Stage(StageKind.APP_CPU, -1.0)

    def test_cpu_vs_network(self):
        assert Stage(StageKind.DB_CPU, 0.1).is_cpu
        assert Stage(StageKind.NET_TO_DB, nbytes=10).is_network


class TestTransactionTrace:
    def test_cpu_demand_sums(self):
        trace = TransactionTrace(
            "t",
            (
                Stage(StageKind.APP_CPU, 0.001),
                Stage(StageKind.DB_CPU, 0.002),
                Stage(StageKind.APP_CPU, 0.003),
            ),
        )
        assert trace.app_cpu == pytest.approx(0.004)
        assert trace.db_cpu == pytest.approx(0.002)

    def test_round_trips_counts_to_db_messages(self):
        trace = TransactionTrace(
            "t",
            (
                Stage(StageKind.NET_TO_DB, nbytes=10),
                Stage(StageKind.NET_TO_APP, nbytes=10),
                Stage(StageKind.NET_TO_DB, nbytes=10),
            ),
        )
        assert trace.round_trips == 2

    def test_unloaded_latency(self):
        network = SimNetworkParams(
            one_way_latency=0.001, per_message_overhead=0,
            bandwidth=1e12,
        )
        trace = TransactionTrace(
            "t",
            (
                Stage(StageKind.APP_CPU, 0.005),
                Stage(StageKind.NET_TO_DB, nbytes=0),
                Stage(StageKind.DB_CPU, 0.002),
                Stage(StageKind.NET_TO_APP, nbytes=0),
            ),
        )
        assert trace.unloaded_latency(network) == pytest.approx(0.009)


class TestQueueingSimulator:
    def test_light_load_latency_matches_unloaded(self):
        trace = cpu_trace(db=0.001)
        sim = QueueingSimulator(db_cores=16)
        result = sim.run(trace, rate=10, duration=30)
        assert result.mean_latency == pytest.approx(0.001, rel=0.05)

    def test_throughput_matches_offered_when_underloaded(self):
        trace = cpu_trace(db=0.001)
        sim = QueueingSimulator(db_cores=16)
        result = sim.run(trace, rate=100, duration=60)
        assert result.throughput == pytest.approx(100, rel=0.15)

    def test_utilization_law(self):
        # U = lambda * service_time / cores (within stochastic noise).
        service = 0.004
        rate = 1000.0
        cores = 8
        sim = QueueingSimulator(db_cores=cores)
        result = sim.run(cpu_trace(db=service), rate=rate, duration=60)
        expected = rate * service / cores
        assert result.db_utilization == pytest.approx(expected, rel=0.1)

    def test_overload_inflates_latency(self):
        trace = cpu_trace(db=0.01)
        sim_low = QueueingSimulator(db_cores=2)
        low = sim_low.run(trace, rate=50, duration=30)
        sim_high = QueueingSimulator(db_cores=2)
        high = sim_high.run(trace, rate=300, duration=30)
        assert high.mean_latency > 5 * low.mean_latency

    def test_network_stage_bytes_counted(self):
        trace = TransactionTrace(
            "t",
            (
                Stage(StageKind.NET_TO_DB, nbytes=1000),
                Stage(StageKind.NET_TO_APP, nbytes=500),
            ),
        )
        sim = QueueingSimulator()
        result = sim.run(trace, rate=10, duration=10)
        assert result.bytes_to_db > result.bytes_to_app
        assert result.messages == 2 * result.completed

    def test_deterministic_given_seed(self):
        trace = cpu_trace(app=0.001, db=0.002)
        r1 = QueueingSimulator(seed=5).run(trace, rate=100, duration=10)
        r2 = QueueingSimulator(seed=5).run(trace, rate=100, duration=10)
        assert r1.latencies == r2.latencies

    def test_different_seeds_differ(self):
        trace = cpu_trace(db=0.002)
        r1 = QueueingSimulator(seed=1).run(trace, rate=100, duration=10)
        r2 = QueueingSimulator(seed=2).run(trace, rate=100, duration=10)
        assert r1.latencies != r2.latencies

    def test_invalid_rate_and_duration(self):
        sim = QueueingSimulator()
        with pytest.raises(ValueError):
            sim.run(cpu_trace(db=0.001), rate=0, duration=10)
        with pytest.raises(ValueError):
            sim.run(cpu_trace(db=0.001), rate=10, duration=0)

    def test_external_load_reserves_cores(self):
        trace = cpu_trace(db=0.01)
        sim = QueueingSimulator(db_cores=4)
        sim.set_db_external_load(0.75)  # one core left
        result = sim.run(trace, rate=150, duration=30)
        # 150/s * 10ms = 1.5 core demand > 1 free core: overload.
        assert result.mean_latency > 0.05

    def test_trace_selector_called(self):
        fast = cpu_trace(db=0.001, name="fast")
        slow = cpu_trace(db=0.004, name="slow")
        chosen = []

        def selector(now, sim):
            trace = fast if len(chosen) % 2 == 0 else slow
            chosen.append(trace.name)
            return trace

        sim = QueueingSimulator()
        result = sim.run(selector, rate=50, duration=20)
        names = {name for _, name in result.trace_names}
        assert names == {"fast", "slow"}


class TestLockGroups:
    def test_lock_contention_caps_throughput(self):
        # One hot row, 10ms per transaction: at most ~100/s complete.
        trace = TransactionTrace(
            "locked", (Stage(StageKind.DB_CPU, 0.01),), lock_groups=1
        )
        sim = QueueingSimulator(db_cores=16)
        result = sim.run(trace, rate=500, duration=20)
        assert result.throughput < 120

    def test_more_groups_raise_cap(self):
        def run(groups):
            trace = TransactionTrace(
                "locked", (Stage(StageKind.DB_CPU, 0.01),),
                lock_groups=groups,
            )
            sim = QueueingSimulator(db_cores=16)
            return sim.run(trace, rate=400, duration=20).throughput

        assert run(8) > 2 * run(1)

    def test_no_groups_unconstrained(self):
        trace = cpu_trace(db=0.001)
        sim = QueueingSimulator(db_cores=16)
        result = sim.run(trace, rate=500, duration=20)
        assert result.throughput == pytest.approx(500, rel=0.15)


class TestSimResult:
    def test_latency_buckets(self):
        trace = cpu_trace(db=0.001)
        sim = QueueingSimulator()
        result = sim.run(trace, rate=100, duration=20)
        buckets = result.latency_buckets(5.0)
        assert len(buckets) >= 3
        for _, latency in buckets:
            assert latency > 0

    def test_trace_mix_fractions_sum_to_one(self):
        traces = [cpu_trace(db=0.001, name="a"), cpu_trace(db=0.001, name="b")]
        sim = QueueingSimulator()
        result = sim.run(traces, rate=200, duration=10)
        for _, fractions in result.trace_mix(2.0):
            assert sum(fractions.values()) == pytest.approx(1.0)

    def test_percentiles_ordered(self):
        trace = cpu_trace(db=0.002)
        sim = QueueingSimulator(db_cores=1)
        result = sim.run(trace, rate=300, duration=10)
        assert result.percentile(50) <= result.percentile(95)
        assert result.percentile(95) <= result.percentile(99)


class TestEdgeCases:
    """Config validation, degenerate traces, event-order determinism."""

    def test_zero_core_config_rejected(self):
        with pytest.raises(ValueError, match="at least one core"):
            QueueingSimulator(app_cores=0)
        with pytest.raises(ValueError, match="at least one core"):
            QueueingSimulator(db_cores=0)
        with pytest.raises(ValueError, match="at least one core"):
            CorePool("app", 0)
        with pytest.raises(ValueError, match="at least one core"):
            CorePool("db", -3)

    def test_empty_trace_replays_with_zero_latency(self):
        # A trace with no stages completes the instant it arrives.
        trace = TransactionTrace("empty", ())
        sim = QueueingSimulator()
        result = sim.run(trace, rate=50, duration=10)
        assert result.completed > 0
        assert result.throughput == pytest.approx(50, rel=0.2)
        assert all(latency == 0.0 for latency in result.latencies)
        assert result.messages == 0
        assert result.db_utilization == 0.0

    def test_simultaneous_events_processed_in_scheduling_order(self):
        # Two zero-duration stages scheduled at the same virtual time
        # must run FIFO: arrivals complete in arrival order, every run.
        trace = TransactionTrace("zero", (Stage(StageKind.APP_CPU, 0.0),))
        sim = QueueingSimulator(seed=9)
        result = sim.run(trace, rate=200, duration=5)
        completions = [when for when, _ in result.samples]
        assert completions == sorted(completions)
        repeat = QueueingSimulator(seed=9).run(trace, rate=200, duration=5)
        assert [s for s in repeat.samples] == result.samples

    def test_mixed_trace_tie_order_deterministic(self):
        fast = TransactionTrace("fast", (Stage(StageKind.DB_CPU, 0.001),))
        slow = TransactionTrace(
            "slow",
            (Stage(StageKind.APP_CPU, 0.002), Stage(StageKind.DB_CPU, 0.003)),
        )
        runs = [
            QueueingSimulator(seed=4).run([fast, slow], rate=300, duration=5)
            for _ in range(2)
        ]
        assert runs[0].trace_names == runs[1].trace_names
        assert runs[0].latencies == runs[1].latencies


class TestCorePool:
    def test_acquire_release_cycle(self):
        pool = CorePool("db", 1)
        ran = []
        pool.acquire(0.0, lambda: ran.append("a"))
        pool.acquire(0.0, lambda: ran.append("b"))  # queued: core busy
        assert ran == ["a"]
        assert pool.queued == 1
        pool.release(1.0)
        assert ran == ["a", "b"]
        assert pool.queued == 0

    def test_reservation_shrinks_capacity(self):
        pool = CorePool("db", 4)
        pool.set_reserved(0.0, 3)
        assert pool.available == 1
        # Reservation can never take the last core.
        pool.set_reserved(0.0, 99)
        assert pool.available == 1

    def test_busy_seconds_monotonic(self):
        pool = CorePool("db", 2)
        pool.acquire(0.0, lambda: None)
        first = pool.busy_seconds(1.0)
        second = pool.busy_seconds(2.0)
        assert second > first


class TestLockTable:
    def test_fifo_handoff(self):
        locks = LockTable()
        order = []
        locks.acquire(1, lambda: order.append("first"))
        locks.acquire(1, lambda: order.append("second"))
        locks.acquire(1, lambda: order.append("third"))
        assert order == ["first"]
        assert locks.held == 1
        assert locks.waiting == 2
        locks.release(1)
        locks.release(1)
        assert order == ["first", "second", "third"]

    def test_distinct_groups_independent(self):
        locks = LockTable()
        order = []
        locks.acquire(1, lambda: order.append("g1"))
        locks.acquire(2, lambda: order.append("g2"))
        assert order == ["g1", "g2"]


class TestSweep:
    def test_sweep_produces_curve_per_trace(self):
        traces = {
            "a": cpu_trace(db=0.001, name="a"),
            "b": cpu_trace(db=0.002, name="b"),
        }
        curves = sweep_throughput(traces, rates=[50, 100], duration=10)
        assert set(curves) == {"a", "b"}
        assert len(curves["a"]) == 2
