"""Fault-injection layer: specs, events, injector sequencing, slowdown."""

import pytest

from repro.sim.cluster import (
    Cluster,
    ClusterConfig,
    FaultEvent,
    FaultInjector,
    FaultSpecError,
    parse_fault_spec,
)
from repro.sim.clock import EventLoop
from repro.sim.queueing import StageKind


class TestFaultSpecParsing:
    def test_crash_spec(self):
        event = parse_fault_spec("crash:db1@5")
        assert event == FaultEvent(kind="crash", shard=1, at=5.0,
                                   factor=4.0, until=None)

    def test_slow_spec_with_factor_and_until(self):
        event = parse_fault_spec("slow:db0@3x4:until=8")
        assert event.kind == "slow"
        assert event.shard == 0
        assert event.at == 3.0
        assert event.factor == 4.0
        assert event.until == 8.0

    def test_slow_factor_defaults_to_four(self):
        assert parse_fault_spec("slow:db0@2").factor == 4.0

    def test_partition_spec(self):
        event = parse_fault_spec("partition:db1@2:until=6")
        assert event.kind == "partition"
        assert (event.at, event.until) == (2.0, 6.0)

    def test_fractional_times(self):
        event = parse_fault_spec("slow:db2@1.5x2.5:until=3.25")
        assert (event.at, event.factor, event.until) == (1.5, 2.5, 3.25)

    @pytest.mark.parametrize("spec", [
        "crash:db1",             # missing @t
        "melt:db0@3",            # unknown kind
        "crash:app@3",           # only db targets
        "crash:db1@3x2",         # factor on a non-slow fault
        "slow:db0@x4",           # missing time
        "",
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_fault_spec(spec)


class TestFaultSpecDiagnostics:
    """Every parse failure is one exception type whose message quotes
    both the whole spec and the offending token."""

    def test_bad_until_quotes_token(self):
        with pytest.raises(FaultSpecError) as exc:
            parse_fault_spec("crash:db1@5:until=abc")
        message = str(exc.value)
        assert "bad fault spec 'crash:db1@5:until=abc'" in message
        assert "'abc'" in message
        assert "until" in message

    def test_unknown_kind_quotes_kind(self):
        with pytest.raises(FaultSpecError) as exc:
            parse_fault_spec("melt:db0@3")
        message = str(exc.value)
        assert "unknown fault kind 'melt'" in message
        assert "bad fault spec" in message

    def test_negative_time_rejected(self):
        with pytest.raises(FaultSpecError) as exc:
            parse_fault_spec("crash:db1@-5")
        assert "bad fault spec 'crash:db1@-5'" in str(exc.value)

    def test_until_not_after_at(self):
        with pytest.raises(FaultSpecError) as exc:
            parse_fault_spec("partition:db1@6:until=2")
        assert "'until'" in str(exc.value)

    def test_bad_factor_quotes_token(self):
        with pytest.raises(FaultSpecError) as exc:
            parse_fault_spec("slow:db0@3xzz")
        assert "'zz'" in str(exc.value) or "zz" in str(exc.value)

    def test_bad_target_quotes_target(self):
        with pytest.raises(FaultSpecError) as exc:
            parse_fault_spec("crash:app@3")
        assert "'app'" in str(exc.value)

    def test_factor_on_crash_names_kind(self):
        with pytest.raises(FaultSpecError) as exc:
            parse_fault_spec("crash:db1@3x2")
        assert "only slow faults take a factor" in str(exc.value)

    def test_error_is_a_value_error(self):
        assert issubclass(FaultSpecError, ValueError)


class TestFaultEventValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(kind="melt", shard=0, at=1.0)

    def test_negative_time(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultEvent(kind="crash", shard=0, at=-1.0)

    def test_slow_needs_factor_above_one(self):
        with pytest.raises(ValueError, match="factor > 1"):
            FaultEvent(kind="slow", shard=0, at=1.0, factor=1.0)

    def test_until_must_follow_at(self):
        with pytest.raises(ValueError, match="'until'"):
            FaultEvent(kind="partition", shard=0, at=5.0, until=5.0)


class TestFaultInjector:
    def _hooks(self, log):
        return dict(
            crash_shard=lambda s: log.append(("crash", s)),
            set_shard_slowdown=lambda s, f: log.append(("slow", s, f)),
            set_shard_partition=lambda s, d: log.append(("part", s, d)),
        )

    def test_events_fire_in_time_order_with_restores(self):
        loop = EventLoop()
        log = []
        injector = FaultInjector([
            parse_fault_spec("slow:db0@1x4:until=3"),
            parse_fault_spec("crash:db1@2"),
            parse_fault_spec("partition:db0@4:until=5"),
        ])
        injector.schedule(loop.schedule_at, **self._hooks(log))
        loop.run(until=10.0)
        assert log == [
            ("slow", 0, 4.0),
            ("crash", 1),
            ("slow", 0, 1.0),     # until= restores speed
            ("part", 0, True),
            ("part", 0, False),   # until= heals the partition
        ]
        assert [label for _, label in injector.fired] == [
            "slow db0 x4", "crash db1", "restore db0 speed",
            "partition db0", "heal db0",
        ]
        assert [when for when, _ in injector.fired] == [1, 2, 3, 4, 5]

    def test_open_ended_faults_never_restore(self):
        loop = EventLoop()
        log = []
        injector = FaultInjector([parse_fault_spec("slow:db0@1x2")])
        injector.schedule(loop.schedule_at, **self._hooks(log))
        loop.run(until=10.0)
        assert log == [("slow", 0, 2.0)]

    def test_events_sorted_regardless_of_input_order(self):
        injector = FaultInjector([
            FaultEvent(kind="crash", shard=1, at=5.0),
            FaultEvent(kind="crash", shard=0, at=2.0),
        ])
        assert [e.at for e in injector.events] == [2.0, 5.0]


class TestShardSlowdown:
    def test_slowdown_inflates_db_cpu_charges(self):
        cluster = Cluster(ClusterConfig(db_shards=2))
        cluster.set_shard_slowdown(1, 4.0)
        cluster.start_trace()
        cluster.record_cpu("db0", 0.010)
        cluster.record_cpu("db1", 0.010)
        trace = cluster.finish_trace("t")
        stages = [
            s for s in trace.stages if s.kind is StageKind.DB_CPU
        ]
        by_shard = {s.shard: s.duration for s in stages}
        assert by_shard[0] == pytest.approx(0.010)
        assert by_shard[1] == pytest.approx(0.040)

    def test_restore_with_factor_one(self):
        cluster = Cluster(ClusterConfig(db_shards=2))
        cluster.set_shard_slowdown(1, 4.0)
        cluster.set_shard_slowdown(1, 1.0)
        cluster.start_trace()
        cluster.record_cpu("db1", 0.010)
        trace = cluster.finish_trace("t")
        assert trace.stages[0].duration == pytest.approx(0.010)

    def test_validation(self):
        cluster = Cluster(ClusterConfig(db_shards=2))
        with pytest.raises(ValueError, match="unknown database shard"):
            cluster.set_shard_slowdown(7, 2.0)
        with pytest.raises(ValueError, match="positive"):
            cluster.set_shard_slowdown(0, 0.0)


class TestStorageFaultSpecs:
    def test_tornwrite_spec(self):
        event = parse_fault_spec("tornwrite:db0@5")
        assert (event.kind, event.shard, event.at) == ("tornwrite", 0, 5.0)
        assert event.until is None

    def test_corrupt_spec(self):
        event = parse_fault_spec("corrupt:db1@3")
        assert (event.kind, event.shard, event.at) == ("corrupt", 1, 3.0)

    def test_fsyncfail_takes_until(self):
        event = parse_fault_spec("fsyncfail:db0@2:until=6")
        assert event.kind == "fsyncfail"
        assert (event.at, event.until) == (2.0, 6.0)

    def test_open_ended_fsyncfail(self):
        assert parse_fault_spec("fsyncfail:db1@4").until is None

    @pytest.mark.parametrize("spec", [
        "tornwrite:db0@5:until=8",   # one-shot faults take no window
        "corrupt:db1@3:until=4",
        "tornwrite:db0@5x2",         # and no factor
    ])
    def test_windows_rejected_on_one_shot_faults(self, spec):
        with pytest.raises(FaultSpecError):
            parse_fault_spec(spec)

    def test_until_rejected_on_event_too(self):
        with pytest.raises(ValueError, match="'until'"):
            FaultEvent(kind="corrupt", shard=0, at=1.0, until=2.0)


class TestStorageFaultScheduling:
    def _hooks(self, log):
        return dict(
            crash_shard=lambda s: log.append(("crash", s)),
            set_shard_slowdown=lambda s, f: log.append(("slow", s, f)),
            set_shard_partition=lambda s, d: log.append(("part", s, d)),
        )

    def test_storage_events_need_a_hook(self):
        injector = FaultInjector([parse_fault_spec("tornwrite:db0@1")])
        with pytest.raises(ValueError, match="set_storage_fault"):
            injector.schedule(
                EventLoop().schedule_at, **self._hooks([])
            )

    def test_non_storage_events_do_not_need_the_hook(self):
        loop = EventLoop()
        log = []
        injector = FaultInjector([parse_fault_spec("crash:db0@1")])
        injector.schedule(loop.schedule_at, **self._hooks(log))
        loop.run(until=5.0)
        assert log == [("crash", 0)]

    def test_storage_faults_compose_with_crash_and_partition(self):
        loop = EventLoop()
        log = []
        injector = FaultInjector([
            parse_fault_spec("tornwrite:db0@1"),
            parse_fault_spec("fsyncfail:db1@2:until=4"),
            parse_fault_spec("partition:db0@3:until=5"),
            parse_fault_spec("corrupt:db1@6"),
        ])
        hooks = self._hooks(log)
        hooks["set_storage_fault"] = (
            lambda kind, shard, active: log.append((kind, shard, active))
        )
        injector.schedule(loop.schedule_at, **hooks)
        loop.run(until=10.0)
        assert log == [
            ("tornwrite", 0, True),
            ("fsyncfail", 1, True),
            ("part", 0, True),
            ("fsyncfail", 1, False),  # until= heals the fsync fault
            ("part", 0, False),
            ("corrupt", 1, True),
        ]
        assert [label for _, label in injector.fired] == [
            "tornwrite db0", "fsyncfail db1", "partition db0",
            "heal fsyncfail db1", "heal db0", "corrupt db1",
        ]
