"""Cluster trace recording."""

import pytest

from repro.sim.cluster import Cluster, ClusterConfig
from repro.sim.queueing import StageKind


class TestClusterBasics:
    def test_default_paper_configuration(self):
        cluster = Cluster()
        assert cluster.app.cores == 8
        assert cluster.db.cores == 16
        assert cluster.network.round_trip_latency == pytest.approx(0.002)

    def test_server_lookup(self):
        cluster = Cluster()
        assert cluster.server("app") is cluster.app
        assert cluster.server("db") is cluster.db
        with pytest.raises(KeyError):
            cluster.server("other")


class TestTraceRecording:
    def test_consecutive_cpu_merges_into_one_stage(self):
        cluster = Cluster()
        cluster.start_trace()
        cluster.record_cpu("app", 0.001)
        cluster.record_cpu("app", 0.002)
        trace = cluster.finish_trace("t")
        assert len(trace.stages) == 1
        assert trace.stages[0].duration == pytest.approx(0.003)

    def test_side_switch_creates_new_stage(self):
        cluster = Cluster()
        cluster.start_trace()
        cluster.record_cpu("app", 0.001)
        cluster.record_cpu("db", 0.002)
        cluster.record_cpu("app", 0.001)
        trace = cluster.finish_trace("t")
        kinds = [s.kind for s in trace.stages]
        assert kinds == [
            StageKind.APP_CPU, StageKind.DB_CPU, StageKind.APP_CPU,
        ]

    def test_messages_interleave_with_cpu(self):
        cluster = Cluster()
        cluster.start_trace()
        cluster.record_cpu("app", 0.001)
        cluster.record_message(100, to_db=True)
        cluster.record_cpu("db", 0.002)
        cluster.record_message(200, to_db=False)
        trace = cluster.finish_trace("t")
        kinds = [s.kind for s in trace.stages]
        assert kinds == [
            StageKind.APP_CPU,
            StageKind.NET_TO_DB,
            StageKind.DB_CPU,
            StageKind.NET_TO_APP,
        ]
        assert trace.round_trips == 1

    def test_clock_advances_for_cpu_and_network(self):
        cluster = Cluster()
        cluster.start_trace()
        cluster.record_cpu("app", 0.005)
        cluster.record_message(0, to_db=True)
        cluster.finish_trace("t")
        assert cluster.clock.now > 0.005

    def test_pending_cpu_flushed_by_finish(self):
        cluster = Cluster()
        cluster.start_trace()
        cluster.record_cpu("db", 0.004)
        before = cluster.clock.now
        trace = cluster.finish_trace("t")
        assert cluster.clock.now == pytest.approx(before + 0.004)
        assert trace.db_cpu == pytest.approx(0.004)

    def test_trace_isolated_between_runs(self):
        cluster = Cluster()
        cluster.start_trace()
        cluster.record_cpu("app", 0.001)
        first = cluster.finish_trace("first")
        cluster.start_trace()
        cluster.record_cpu("db", 0.002)
        second = cluster.finish_trace("second")
        assert len(first.stages) == 1
        assert len(second.stages) == 1
        assert second.stages[0].kind is StageKind.DB_CPU

    def test_negative_cpu_rejected(self):
        cluster = Cluster()
        with pytest.raises(ValueError):
            cluster.record_cpu("app", -0.001)

    def test_network_stats_accumulate(self):
        cluster = Cluster()
        cluster.record_message(100, to_db=True)
        cluster.record_message(50, to_db=False)
        assert cluster.network.total_messages() == 2

    def test_reset(self):
        cluster = Cluster()
        cluster.record_cpu("app", 0.001)
        cluster.record_message(10, to_db=True)
        cluster.reset()
        assert cluster.clock.now == 0.0
        assert cluster.network.total_messages() == 0

    def test_custom_config(self):
        config = ClusterConfig(app_cores=2, db_cores=3, one_way_latency=0.01)
        cluster = Cluster(config)
        assert cluster.db.cores == 3
        delay = cluster.record_message(0, to_db=True)
        assert delay >= 0.01
