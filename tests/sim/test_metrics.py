"""Load monitor (EWMA) and summary statistics."""

import pytest

from repro.sim.metrics import LoadMonitor, UtilizationProbe, summarize


class TestLoadMonitor:
    def test_first_sample_seeds_level(self):
        monitor = LoadMonitor(alpha=0.2)
        assert monitor.observe(60.0) == pytest.approx(60.0)

    def test_ewma_formula(self):
        # Paper: L_t = alpha * L_{t-1} + (1 - alpha) * S_t, alpha=0.2.
        monitor = LoadMonitor(alpha=0.2)
        monitor.observe(100.0)
        level = monitor.observe(0.0)
        assert level == pytest.approx(0.2 * 100.0)

    def test_converges_to_constant_input(self):
        monitor = LoadMonitor(alpha=0.2)
        for _ in range(50):
            monitor.observe(42.0)
        assert monitor.level == pytest.approx(42.0)

    def test_smoothing_lags_step_change(self):
        # The EWMA prevents oscillation: after a step the level moves
        # only (1 - alpha) of the way per observation.
        monitor = LoadMonitor(alpha=0.5)
        monitor.observe(0.0)
        monitor.observe(100.0)
        assert monitor.level == pytest.approx(50.0)

    def test_sample_clamped_to_100(self):
        monitor = LoadMonitor()
        assert monitor.observe(250.0) == pytest.approx(100.0)

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            LoadMonitor().observe(-1.0)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            LoadMonitor(alpha=1.0)

    def test_reset(self):
        monitor = LoadMonitor(alpha=0.2)
        monitor.observe(80.0)
        monitor.reset()
        assert monitor.observations == 0


class TestSummarize:
    def test_basic_stats(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.count == 5
        assert summary.mean == pytest.approx(3.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0
        assert summary.p50 == 3.0

    def test_percentiles_ordered(self):
        summary = summarize(list(range(100)))
        assert summary.p50 <= summary.p95 <= summary.p99 <= summary.maximum

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_single_sample(self):
        summary = summarize([7.0])
        assert summary.mean == 7.0
        assert summary.stdev == 0.0


class TestUtilizationProbe:
    def test_polls_source_and_records_history(self):
        values = iter([0.5, 0.7])
        probe = UtilizationProbe(source=lambda: next(values))
        probe.poll(now=0.0)
        level = probe.poll(now=10.0)
        assert len(probe.history) == 2
        assert 0.0 < level <= 100.0

    def test_source_clamped(self):
        probe = UtilizationProbe(source=lambda: 3.5)
        assert probe.poll(0.0) == pytest.approx(100.0)
