"""Profiling instrumentation and profile data."""

import pytest

from repro.db import Database, connect
from repro.lang import parse_source
from repro.lang.ir import Assign, FieldLV, ForEach
from repro.profiler import ProfileData, Profiler, estimate_size

SOURCE = '''
class App:
    def run(self, n):
        total = 0.0
        values = range(0, n)
        for v in values:
            total = total + v
        self.history = values
        return total
'''


@pytest.fixture()
def profiled():
    program = parse_source(SOURCE, entry_points=[("App", "run")])
    profiler = Profiler(program, connect(Database()))
    profiler.invoke("App", "run", 4)
    return program, profiler.data


class TestCounts:
    def test_top_level_counts_are_one(self, profiled):
        program, data = profiled
        func = program.function("App", "run")
        first = func.body.stmts[0]
        assert data.count(first.sid) == 1

    def test_loop_body_counts_match_iterations(self, profiled):
        program, data = profiled
        func = program.function("App", "run")
        loop = next(s for s in func.walk() if isinstance(s, ForEach))
        body_sid = loop.body.stmts[0].sid
        assert data.count(body_sid) == 4

    def test_loop_node_counts_iterations_plus_test(self, profiled):
        program, data = profiled
        func = program.function("App", "run")
        loop = next(s for s in func.walk() if isinstance(s, ForEach))
        assert data.count(loop.sid) == 5

    def test_multiple_invocations_accumulate(self):
        program = parse_source(SOURCE, entry_points=[("App", "run")])
        profiler = Profiler(program, connect(Database()))
        profiler.invoke("App", "run", 2)
        profiler.invoke("App", "run", 3)
        assert profiler.data.invocations == 2
        func = program.function("App", "run")
        assert profiler.data.count(func.body.stmts[0].sid) == 2


class TestSizes:
    def test_assign_sizes_recorded(self, profiled):
        program, data = profiled
        func = program.function("App", "run")
        values_assign = next(
            s for s in func.walk()
            if isinstance(s, Assign) and not isinstance(s.target, FieldLV)
        )
        assert data.assign_size(values_assign.sid) > 0

    def test_field_sizes_recorded(self, profiled):
        _, data = profiled
        assert ("App", "history") in data.field_sizes
        assert data.field_size("App", "history") > 8

    def test_defaults_for_unobserved(self):
        data = ProfileData()
        assert data.count(999) == 0
        assert data.assign_size(999) == 8.0
        assert data.field_size("X", "y") == 8.0


class TestEstimateSize:
    def test_primitives(self):
        assert estimate_size(None) == 1
        assert estimate_size(True) == 1
        assert estimate_size(7) == 8
        assert estimate_size(1.5) == 8

    def test_strings_scale(self):
        assert estimate_size("abcd") > estimate_size("")

    def test_containers_sum_elements(self):
        assert estimate_size([1, 2, 3]) > estimate_size([1])

    def test_rows(self):
        from repro.db.jdbc import Row

        row = Row(["a", "b"], (1, "xyz"))
        assert estimate_size(row) > 8


class TestPersistence:
    def test_json_round_trip(self, profiled):
        _, data = profiled
        restored = ProfileData.from_json(data.to_json())
        assert restored.counts == data.counts
        assert restored.invocations == data.invocations
        for key, stat in data.field_sizes.items():
            assert restored.field_sizes[key].average == pytest.approx(
                stat.average
            )

    def test_merge(self, profiled):
        _, data = profiled
        merged = ProfileData()
        merged.merge(data)
        merged.merge(data)
        assert merged.invocations == 2 * data.invocations
        assert merged.total_statement_weight() == (
            2 * data.total_statement_weight()
        )

    def test_per_invocation_weight(self, profiled):
        _, data = profiled
        assert data.per_invocation_weight() == pytest.approx(
            data.total_statement_weight()
        )

    def test_db_rows_recorded(self):
        db = Database()
        db.create_table(
            "t", [("k", "int", False)], primary_key=["k"]
        )
        conn = connect(db)
        for k in range(7):
            conn.execute("INSERT INTO t (k) VALUES (?)", k)
        source = '''
class Q:
    def run(self, x):
        return self.db.query_scalar("SELECT COUNT(*) FROM t")
'''
        program = parse_source(source, entry_points=[("Q", "run")])
        profiler = Profiler(program, conn)
        profiler.invoke("Q", "run", 0)
        sid = next(
            s.sid for s in program.all_statements()
        )
        # db_rows recorded under the statement containing the call.
        assert any(
            stat.average == 7 for stat in profiler.data.db_rows.values()
        )
