"""Windowed live profiling (profiler/live.py)."""

import pytest

from repro.profiler.live import LiveProfiler
from repro.profiler.profile_data import ProfileData


def reference(counts: dict) -> ProfileData:
    data = ProfileData()
    data.counts = dict(counts)
    return data


class TestWindowing:
    def test_validation(self):
        with pytest.raises(ValueError):
            LiveProfiler(window=0)
        with pytest.raises(ValueError):
            LiveProfiler(bucket_txns=0)

    def test_counts_accumulate(self):
        prof = LiveProfiler(window=4, bucket_txns=2)
        prof.observe({1: 3, 2: 1})
        prof.observe({1: 1})
        assert prof.window_counts() == {1: 4, 2: 1}
        assert prof.window_transactions == 2
        assert prof.transactions_total == 2

    def test_old_buckets_roll_off(self):
        prof = LiveProfiler(window=2, bucket_txns=1)
        prof.observe({1: 10})
        prof.observe({2: 10})
        prof.observe({3: 10})  # bucket holding sid 1 rolls off
        assert prof.window_counts() == {2: 10, 3: 10}
        assert prof.window_transactions == 2
        assert prof.transactions_total == 3

    def test_snapshot_inherits_base_sizes(self):
        base = ProfileData()
        base.record_assign(5, 64.0)
        base.record_field("C", "f", 32.0)
        prof = LiveProfiler(base=base, window=2, bucket_txns=4)
        prof.observe({5: 2})
        snap = prof.snapshot()
        assert snap.counts == {5: 2}
        assert snap.assign_size(5) == pytest.approx(64.0)
        assert snap.field_size("C", "f") == pytest.approx(32.0)
        assert snap.invocations == 1

    def test_snapshot_never_mutates_base(self):
        # Merging observations into a snapshot (e.g. a session doing
        # update_profile(merge=True) while its profile is a snapshot)
        # must not leak into the offline base profile.
        base = ProfileData()
        base.record_assign(5, 64.0)
        prof = LiveProfiler(base=base, window=2, bucket_txns=4)
        prof.observe({5: 1})
        snap = prof.snapshot()
        other = ProfileData()
        other.record_assign(5, 1000.0)
        other.record_field("C", "f", 8.0)
        snap.merge(other)
        assert base.assign_size(5) == pytest.approx(64.0)
        assert ("C", "f") not in base.field_sizes

    def test_snapshot_without_base(self):
        prof = LiveProfiler()
        prof.observe({1: 1})
        snap = prof.snapshot()
        assert snap.counts == {1: 1}
        assert snap.assign_size(1) == pytest.approx(8.0)  # default


class TestDrift:
    def test_zero_on_identical_mix(self):
        prof = LiveProfiler(window=2, bucket_txns=8)
        prof.observe({1: 10, 2: 10})
        assert prof.drift(reference({1: 5, 2: 5})) == pytest.approx(0.0)

    def test_one_on_disjoint_mix(self):
        prof = LiveProfiler()
        prof.observe({1: 10})
        assert prof.drift(reference({9: 3})) == pytest.approx(1.0)

    def test_partial_shift_in_between(self):
        prof = LiveProfiler()
        prof.observe({1: 5, 2: 5})
        drift = prof.drift(reference({1: 10}))
        assert 0.0 < drift < 1.0
        assert drift == pytest.approx(0.5)

    def test_empty_sides_are_not_evidence(self):
        prof = LiveProfiler()
        assert prof.drift(reference({1: 1})) == 0.0
        prof.observe({1: 1})
        assert prof.drift(None) == 0.0
        assert prof.drift(reference({})) == 0.0
