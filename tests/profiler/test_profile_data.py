"""ProfileData persistence: JSON round-trips and merge equivalence."""

import pytest

from repro.profiler.profile_data import ProfileData, SizeStat


def sample_profile(scale: int = 1) -> ProfileData:
    data = ProfileData()
    for sid, count in ((1, 5), (2, 3), (7, 1)):
        for _ in range(count * scale):
            data.record_stmt(sid)
    data.record_assign(1, 16.0 * scale)
    data.record_assign(1, 24.0 * scale)
    data.record_assign(2, 8.0)
    data.record_field("Order", "total_cost", 8.0)
    data.record_field("Order", "total_cost", 12.0 * scale)
    data.record_field("Cart", "items", 128.0)
    data.record_call(2, 40.0, 8.0 * scale)
    data.record_db(7, 3 * scale)
    data.invocations = 2 * scale
    return data


def assert_profiles_equal(a: ProfileData, b: ProfileData) -> None:
    assert a.counts == b.counts
    assert a.invocations == b.invocations
    for field_name in (
        "assign_sizes", "field_sizes", "arg_sizes",
        "result_sizes", "db_rows",
    ):
        left = getattr(a, field_name)
        right = getattr(b, field_name)
        assert set(left) == set(right), field_name
        for key, stat in left.items():
            assert stat.total == pytest.approx(right[key].total)
            assert stat.samples == right[key].samples


class TestRoundTrip:
    def test_round_trip_preserves_everything(self):
        original = sample_profile()
        restored = ProfileData.from_json(original.to_json())
        assert_profiles_equal(original, restored)

    def test_tuple_keyed_field_stats_survive(self):
        original = sample_profile()
        restored = ProfileData.from_json(original.to_json())
        assert ("Order", "total_cost") in restored.field_sizes
        assert restored.field_size("Order", "total_cost") == pytest.approx(
            original.field_size("Order", "total_cost")
        )
        # Keys must come back as tuples, not joined strings.
        for key in restored.field_sizes:
            assert isinstance(key, tuple) and len(key) == 2

    def test_int_keys_restored_as_ints(self):
        restored = ProfileData.from_json(sample_profile().to_json())
        for mapping in (
            restored.counts, restored.assign_sizes,
            restored.arg_sizes, restored.result_sizes, restored.db_rows,
        ):
            for key in mapping:
                assert isinstance(key, int)

    def test_empty_profile_round_trips(self):
        restored = ProfileData.from_json(ProfileData().to_json())
        assert_profiles_equal(ProfileData(), restored)

    def test_double_round_trip_stable(self):
        original = sample_profile()
        once = ProfileData.from_json(original.to_json())
        twice = ProfileData.from_json(once.to_json())
        assert once.to_json() == twice.to_json()


class TestMergeAfterRoundTrip:
    def test_merge_of_restored_equals_merge_of_originals(self):
        a, b = sample_profile(), sample_profile(scale=3)

        direct = sample_profile()
        direct.merge(sample_profile(scale=3))

        restored_a = ProfileData.from_json(a.to_json())
        restored_b = ProfileData.from_json(b.to_json())
        restored_a.merge(restored_b)

        assert_profiles_equal(direct, restored_a)

    def test_merged_profile_round_trips(self):
        merged = sample_profile()
        merged.merge(sample_profile(scale=2))
        restored = ProfileData.from_json(merged.to_json())
        assert_profiles_equal(merged, restored)
        # Derived queries agree too.
        assert restored.total_statement_weight() == (
            merged.total_statement_weight()
        )
        assert restored.per_invocation_weight() == pytest.approx(
            merged.per_invocation_weight()
        )
