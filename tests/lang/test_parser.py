"""Front-end parser: subset coverage and loud rejection."""

import pytest

from repro.lang import parse_source
from repro.lang.errors import UnsupportedConstructError
from repro.lang.ir import (
    Assign,
    BinExpr,
    CallExpr,
    CallKind,
    Const,
    FieldLV,
    ForEach,
    If,
    ListLiteral,
    Return,
    VarLV,
    VarRef,
    While,
)


def parse_method(body: str, extra: str = ""):
    source = f"""
class T:
    def m(self, x):
{body}
{extra}
"""
    program = parse_source(source, entry_points=[("T", "m")])
    return program.function("T", "m")


class TestStatements:
    def test_simple_assignment(self):
        func = parse_method("        y = x + 1")
        stmt = func.body.stmts[0]
        assert isinstance(stmt, Assign)
        assert isinstance(stmt.value, BinExpr)

    def test_field_assignment(self):
        func = parse_method("        self.total = x")
        stmt = func.body.stmts[0]
        assert isinstance(stmt.target, FieldLV)

    def test_augmented_assignment_desugars(self):
        func = parse_method("        x += 2\n        return x")
        # normalized: read, add, write
        kinds = [type(s).__name__ for s in func.body.stmts]
        assert kinds[-1] == "Return"
        assert any(
            isinstance(s, Assign) and isinstance(s.target, VarLV)
            and s.target.name == "x"
            for s in func.body.stmts
        )

    def test_if_else(self):
        func = parse_method(
            "        if x > 0:\n            y = 1\n        else:\n            y = 2"
        )
        branch = [s for s in func.body.stmts if isinstance(s, If)][0]
        assert len(branch.then.stmts) == 1
        assert len(branch.orelse.stmts) == 1

    def test_while_with_header(self):
        func = parse_method(
            "        while x > 0:\n            x = x - 1"
        )
        loop = [s for s in func.body.stmts if isinstance(s, While)][0]
        assert loop.header.stmts  # the condition temp is recomputed per test

    def test_for_each(self):
        func = parse_method(
            "        t = [1, 2]\n        for v in t:\n            x = v"
        )
        loop = [s for s in func.body.stmts if isinstance(s, ForEach)][0]
        assert loop.var == "v"

    def test_break_continue(self):
        func = parse_method(
            "        while x > 0:\n"
            "            if x == 1:\n                break\n"
            "            if x == 2:\n                continue\n"
            "            x = x - 1"
        )
        names = [type(s).__name__ for s in func.walk()]
        assert "Break" in names and "Continue" in names

    def test_return_value_normalized_to_atom(self):
        func = parse_method("        return x * 2")
        ret = [s for s in func.walk() if isinstance(s, Return)][0]
        assert isinstance(ret.value, VarRef)

    def test_docstring_skipped(self):
        func = parse_method('        "doc"\n        y = 1')
        assert len(func.body.stmts) == 1

    def test_pass_skipped(self):
        func = parse_method("        pass")
        assert len(func.body.stmts) == 0


class TestCalls:
    def test_db_call(self):
        func = parse_method('        r = self.db.query_scalar("SELECT 1", x)')
        call = func.body.stmts[-1].value
        assert call.kind is CallKind.DB
        assert call.name == "query_scalar"

    def test_unknown_db_api_rejected(self):
        with pytest.raises(UnsupportedConstructError):
            parse_method('        self.db.run("x")')

    def test_self_method_call(self):
        func = parse_method(
            "        self.helper(x)",
            extra="    def helper(self, a):\n        return a",
        )
        call = func.body.stmts[-1].expr
        assert call.kind is CallKind.METHOD
        assert call.target == VarRef("self")

    def test_native_function(self):
        func = parse_method("        n = len(x)")
        assert func.body.stmts[-1].value.kind is CallKind.NATIVE

    def test_unknown_function_rejected(self):
        with pytest.raises(UnsupportedConstructError):
            parse_method("        y = mystery(x)")

    def test_native_method(self):
        func = parse_method("        t = [1]\n        t.append(x)")
        call = func.body.stmts[-1].expr
        assert call.kind is CallKind.NATIVE_METHOD

    def test_alloc_object(self):
        source = """
class Node:
    def set(self, v):
        self.v = v

class T:
    def m(self, x):
        n = Node()
        n.set(x)
        return x
"""
        program = parse_source(source, entry_points=[("T", "m")])
        func = program.function("T", "m")
        alloc = func.body.stmts[0].value
        assert alloc.kind is CallKind.ALLOC_OBJECT
        assert alloc.name == "Node"

    def test_keyword_arguments_rejected(self):
        with pytest.raises(UnsupportedConstructError):
            parse_method("        y = len(x=1)")


class TestExpressions:
    def test_list_literal(self):
        func = parse_method("        t = [x, 1]")
        assert isinstance(func.body.stmts[-1].value, ListLiteral)

    def test_list_repeat_is_allocation(self):
        func = parse_method("        t = [0.0] * x")
        call = func.body.stmts[-1].value
        assert call.kind is CallKind.ALLOC_LIST
        assert call.name == "repeat"

    def test_nested_expression_flattened(self):
        func = parse_method("        y = (x + 1) * (x - 2)")
        # Three-address form: two temps plus the final assignment.
        assigns = [s for s in func.body.stmts if isinstance(s, Assign)]
        assert len(assigns) == 3

    def test_bool_ops_strict(self):
        func = parse_method("        y = x > 1 and x < 5")
        final = func.body.stmts[-1].value
        assert isinstance(final, BinExpr)
        assert final.op == "and"

    def test_comparison_operators(self):
        for op_text, op in [("==", "=="), ("!=", "!="), ("<=", "<=")]:
            func = parse_method(f"        y = x {op_text} 3")
            assert func.body.stmts[-1].value.op == op

    def test_unary(self):
        func = parse_method("        y = -x\n        z = not y")
        assert func.body.stmts[0].value.op == "-"
        assert func.body.stmts[1].value.op == "not"

    def test_modulo_and_floordiv(self):
        func = parse_method("        y = x % 3\n        z = x // 2")
        assert func.body.stmts[0].value.op == "%"
        assert func.body.stmts[1].value.op == "//"


class TestRejections:
    @pytest.mark.parametrize(
        "body",
        [
            "        y = [i for i in x]",       # comprehension
            "        a, b = x, x",              # tuple unpack
            "        y = x if x else 0",        # ternary
            "        y = lambda: 1",            # lambda
            "        del x",                    # del
            "        y = f'{x}'",               # f-string
            "        import os",                # import
            "        y = x ** 2",               # power
            "        with x:\n            pass",  # with
            "        try:\n            pass\n        except Exception:\n            pass",
            "        y = x < 1 < 2",            # chained comparison
            "        self.db = x",              # rebinding the connection
            "        y = self.db",              # db escaping
        ],
    )
    def test_unsupported_constructs(self, body):
        with pytest.raises(UnsupportedConstructError):
            parse_method(body)

    def test_method_without_self_rejected(self):
        with pytest.raises(UnsupportedConstructError):
            parse_source("class T:\n    def m(x):\n        return x")

    def test_default_args_rejected(self):
        with pytest.raises(UnsupportedConstructError):
            parse_source("class T:\n    def m(self, x=1):\n        return x")

    def test_no_classes_rejected(self):
        with pytest.raises(UnsupportedConstructError):
            parse_source("def f():\n    return 1")


class TestProgramStructure:
    def test_fields_collected(self):
        source = """
class T:
    def m(self, x):
        self.a = x
        self.b = 1
        return self.c
"""
        program = parse_source(source, entry_points=[("T", "m")])
        assert program.cls("T").fields == ["a", "b", "c"]

    def test_default_entry_points_are_public_methods(self):
        source = """
class T:
    def visible(self, x):
        return x
    def _hidden(self, x):
        return x
"""
        program = parse_source(source)
        assert ("T", "visible") in program.entry_points
        assert ("T", "_hidden") not in program.entry_points

    def test_sids_unique(self):
        source = """
class T:
    def a(self, x):
        y = x + 1
        return y
    def b(self, x):
        z = x * 2
        return z
"""
        program = parse_source(source)
        program.validate()
