"""Pretty printer."""

import pytest

from repro.lang import format_function, format_program, parse_source
from repro.lang.pretty import format_expr, format_stmt

SOURCE = '''
class Demo:
    def run(self, x):
        total = 0
        items = [1, 2, 3]
        for item in items:
            if item > x:
                total = total + item
            else:
                total = total - 1
        while total > 10:
            total = total - x
        self.saved = total
        print("total", total)
        return total
'''


@pytest.fixture(scope="module")
def program():
    return parse_source(SOURCE, entry_points=[("Demo", "run")])


class TestFormatting:
    def test_function_header(self, program):
        text = format_function(program.function("Demo", "run"))
        assert text.startswith("def Demo.run(x):")

    def test_all_statements_listed_with_sids(self, program):
        func = program.function("Demo", "run")
        text = format_function(func)
        for stmt in func.walk():
            assert f"[{stmt.sid}]" in text

    def test_structure_rendered(self, program):
        text = format_function(program.function("Demo", "run"))
        assert "for item in items:" in text
        assert "else:" in text
        assert "while " in text
        assert "return" in text

    def test_program_lists_fields(self, program):
        text = format_program(program)
        assert "class Demo:" in text
        assert "fields: saved" in text

    def test_annotations_applied(self, program):
        text = format_program(program, annotate=lambda sid: ":APP:")
        assert text.count(":APP:") >= len(
            list(program.function("Demo", "run").walk())
        )

    def test_expr_forms(self, program):
        from repro.lang.ir import (
            BinExpr, Const, FieldGet, IndexGet, ListLiteral, UnaryExpr, VarRef,
        )

        assert format_expr(Const(5)) == "5"
        assert format_expr(VarRef("x")) == "x"
        assert format_expr(BinExpr("+", VarRef("a"), Const(1))) == "a + 1"
        assert format_expr(UnaryExpr("not", VarRef("f"))) == "not f"
        assert format_expr(FieldGet(VarRef("self"), "total")) == "self.total"
        assert format_expr(IndexGet(VarRef("t"), Const(0))) == "t[0]"
        assert format_expr(ListLiteral((Const(1), Const(2)))) == "[1, 2]"

    def test_call_forms(self, program):
        from repro.lang.ir import CallExpr, CallKind, Const, VarRef

        db = CallExpr(CallKind.DB, "query", (Const("SELECT 1"),))
        assert "db.query" in format_expr(db)
        alloc = CallExpr(CallKind.ALLOC_OBJECT, "Node", ())
        assert "new Node" in format_expr(alloc)

    def test_empty_function_shows_pass(self):
        program = parse_source(
            "class E:\n    def noop(self, x):\n        pass"
        )
        assert "pass" in format_function(program.function("E", "noop"))
