"""Normalization invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import parse_source
from repro.lang.ir import Assign, Const, VarRef, is_atom
from repro.lang.normalizer import TempAllocator, is_temp


class TestTempAllocator:
    def test_fresh_names_unique(self):
        temps = TempAllocator()
        names = {temps.fresh() for _ in range(10)}
        assert len(names) == 10
        assert all(is_temp(n) for n in names)

    def test_is_temp(self):
        assert is_temp("$t0")
        assert not is_temp("x")


class TestThreeAddressProperty:
    def _assert_normalized(self, program):
        """Every operand of every operation must be an atom."""
        for func in program.functions():
            for stmt in func.walk():
                for expr in stmt.exprs():
                    if is_atom(expr):
                        continue
                    for atom in expr.atoms():
                        assert is_atom(atom), (func.qualified_name, stmt.sid)

    def test_deeply_nested_expression(self):
        src = """
class T:
    def m(self, a, b, c):
        return ((a + b) * (b - c)) / (a * a + 1)
"""
        self._assert_normalized(parse_source(src))

    def test_nested_calls(self):
        src = """
class T:
    def m(self, a):
        return len(range(0, abs(a) + 1))
"""
        self._assert_normalized(parse_source(src))

    def test_field_chains(self):
        src = """
class Inner:
    def set(self, v):
        self.v = v

class T:
    def m(self, a):
        i = Inner()
        i.set(a)
        self.child = i
        return self.child.v
"""
        self._assert_normalized(parse_source(src))

    def test_index_of_index(self):
        src = """
class T:
    def m(self, a):
        t = [[1, 2], [3, 4]]
        return t[0][1] + t[1][0]
"""
        program = parse_source(src)
        self._assert_normalized(program)

    @settings(max_examples=30, deadline=None)
    @given(
        st.recursive(
            st.sampled_from(["a", "b", "1", "2.5"]),
            lambda inner: st.tuples(
                inner, st.sampled_from(["+", "-", "*"]), inner
            ).map(lambda t: f"({t[0]} {t[1]} {t[2]})"),
            max_leaves=12,
        )
    )
    def test_random_expressions_normalize(self, expr_text):
        src = f"""
class T:
    def m(self, a, b):
        return {expr_text}
"""
        self._assert_normalized(parse_source(src))


class TestFieldCollection:
    def test_read_only_fields_declared(self):
        src = """
class T:
    def w(self, x):
        self.a = x
    def r(self, x):
        return self.b
"""
        program = parse_source(src)
        assert program.cls("T").fields == ["a", "b"]

    def test_fields_per_class(self):
        src = """
class A:
    def m(self, x):
        self.only_a = x
class B:
    def m(self, x):
        self.only_b = x
"""
        program = parse_source(src)
        assert program.cls("A").fields == ["only_a"]
        assert program.cls("B").fields == ["only_b"]
