"""Control-flow graph construction."""

import pytest

from repro.lang import build_cfg, parse_source
from repro.lang.cfg import ENTRY, EXIT
from repro.lang.ir import ForEach, If, Return, While


def cfg_for(body: str):
    source = f"class T:\n    def m(self, x):\n{body}"
    program = parse_source(source, entry_points=[("T", "m")])
    func = program.function("T", "m")
    return func, build_cfg(func)


class TestStraightLine:
    def test_sequential_edges(self):
        func, cfg = cfg_for("        a = x\n        b = a\n        return b")
        sids = [s.sid for s in func.body.stmts]
        assert cfg.succs(ENTRY) == [sids[0]]
        assert cfg.succs(sids[0]) == [sids[1]]
        assert cfg.succs(sids[-1]) == [EXIT]

    def test_empty_body_links_entry_to_exit(self):
        func, cfg = cfg_for("        pass")
        assert EXIT in cfg.succs(ENTRY)


class TestIf:
    def test_both_branches_and_join(self):
        func, cfg = cfg_for(
            "        if x > 0:\n            a = 1\n"
            "        else:\n            a = 2\n"
            "        return a"
        )
        branch = next(s for s in func.walk() if isinstance(s, If))
        then_sid = branch.then.stmts[0].sid
        else_sid = branch.orelse.stmts[0].sid
        ret_sid = next(s for s in func.walk() if isinstance(s, Return)).sid
        assert set(cfg.succs(branch.sid)) == {then_sid, else_sid}
        assert cfg.succs(then_sid) == [ret_sid]
        assert cfg.succs(else_sid) == [ret_sid]

    def test_if_without_else_falls_through(self):
        func, cfg = cfg_for(
            "        if x > 0:\n            a = 1\n        return x"
        )
        branch = next(s for s in func.walk() if isinstance(s, If))
        ret_sid = next(s for s in func.walk() if isinstance(s, Return)).sid
        assert ret_sid in cfg.succs(branch.sid)

    def test_return_in_branch_goes_to_exit(self):
        func, cfg = cfg_for(
            "        if x > 0:\n            return 1\n        return 2"
        )
        returns = [s for s in func.walk() if isinstance(s, Return)]
        for ret in returns:
            assert cfg.succs(ret.sid) == [EXIT]


class TestLoops:
    def test_while_back_edge(self):
        func, cfg = cfg_for(
            "        while x > 0:\n            x = x - 1\n        return x"
        )
        loop = next(s for s in func.walk() if isinstance(s, While))
        body_sid = loop.body.stmts[-1].sid
        header_sid = loop.header.stmts[0].sid
        assert header_sid in cfg.succs(body_sid)

    def test_while_false_edge_exits_loop(self):
        func, cfg = cfg_for(
            "        while x > 0:\n            x = x - 1\n        return x"
        )
        loop = next(s for s in func.walk() if isinstance(s, While))
        ret_sid = next(s for s in func.walk() if isinstance(s, Return)).sid
        assert ret_sid in cfg.succs(loop.sid)

    def test_foreach_self_loop_via_body(self):
        func, cfg = cfg_for(
            "        t = [1, 2]\n        for v in t:\n            x = v\n"
            "        return x"
        )
        loop = next(s for s in func.walk() if isinstance(s, ForEach))
        body_sid = loop.body.stmts[-1].sid
        assert loop.sid in cfg.succs(body_sid)

    def test_break_jumps_past_loop(self):
        func, cfg = cfg_for(
            "        while x > 0:\n"
            "            if x == 1:\n                break\n"
            "            x = x - 1\n"
            "        return x"
        )
        from repro.lang.ir import Break

        brk = next(s for s in func.walk() if isinstance(s, Break))
        ret_sid = next(s for s in func.walk() if isinstance(s, Return)).sid
        assert cfg.succs(brk.sid) == [ret_sid]

    def test_continue_jumps_to_header(self):
        func, cfg = cfg_for(
            "        while x > 0:\n"
            "            if x == 2:\n                continue\n"
            "            x = x - 1\n"
            "        return x"
        )
        from repro.lang.ir import Continue

        cont = next(s for s in func.walk() if isinstance(s, Continue))
        loop = next(s for s in func.walk() if isinstance(s, While))
        header_sid = loop.header.stmts[0].sid
        assert cfg.succs(cont.sid) == [header_sid]

    def test_nested_loops(self):
        func, cfg = cfg_for(
            "        t = [1, 2]\n"
            "        for a in t:\n"
            "            for b in t:\n"
            "                x = a + b\n"
            "        return x"
        )
        loops = [s for s in func.walk() if isinstance(s, ForEach)]
        assert len(loops) == 2
        inner = loops[1]
        # Inner loop exit returns control to the outer loop node.
        outer = loops[0]
        assert outer.sid in cfg.succs(inner.sid)


class TestUnreachable:
    def test_code_after_return_disconnected(self):
        func, cfg = cfg_for("        return x\n        y = 1")
        dead = func.body.stmts[1]
        assert cfg.preds(dead.sid) == []

    def test_all_statements_present_in_cfg(self):
        func, cfg = cfg_for(
            "        if x > 0:\n            return 1\n        return 2"
        )
        for stmt in func.walk():
            assert stmt.sid in cfg
