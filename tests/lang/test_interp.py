"""IR interpreter semantics (the correctness oracle)."""

import pytest

from repro.db import Database, connect
from repro.lang import IRInterpreter, parse_source
from repro.lang.interp import InterpError, default_natives, sha1_hex


def run(source: str, method: str, *args, conn=None):
    program = parse_source(source)
    if conn is None:
        conn = connect(Database())
    interp = IRInterpreter(program, conn)
    class_name = next(
        name for name, cls in program.classes.items() if method in cls.methods
    )
    return interp.invoke(class_name, method, *args)


class TestBasics:
    def test_arithmetic(self):
        src = """
class T:
    def m(self, x):
        return (x + 3) * 2 - 1
"""
        assert run(src, "m", 5) == 15

    def test_division_kinds(self):
        src = """
class T:
    def m(self, x):
        a = x / 4
        b = x // 4
        c = x % 4
        return [a, b, c]
"""
        assert run(src, "m", 10) == [2.5, 2, 2]

    def test_if_branches(self):
        src = """
class T:
    def m(self, x):
        if x > 10:
            return "big"
        else:
            return "small"
"""
        assert run(src, "m", 11) == "big"
        assert run(src, "m", 9) == "small"

    def test_while_loop(self):
        src = """
class T:
    def m(self, n):
        total = 0
        i = 0
        while i < n:
            total = total + i
            i = i + 1
        return total
"""
        assert run(src, "m", 5) == 10

    def test_for_over_list(self):
        src = """
class T:
    def m(self, n):
        items = range(0, n)
        total = 0
        for item in items:
            total = total + item
        return total
"""
        assert run(src, "m", 4) == 6

    def test_break_and_continue(self):
        src = """
class T:
    def m(self, n):
        total = 0
        i = 0
        while i < n:
            i = i + 1
            if i % 2 == 0:
                continue
            if i > 7:
                break
            total = total + i
        return total
"""
        assert run(src, "m", 100) == 1 + 3 + 5 + 7

    def test_fields_and_methods(self):
        src = """
class T:
    def m(self, x):
        self.acc = 0
        self.add(x)
        self.add(x * 2)
        return self.acc

    def add(self, v):
        self.acc = self.acc + v
"""
        assert run(src, "m", 5) == 15

    def test_list_mutation(self):
        src = """
class T:
    def m(self, n):
        items = [0] * n
        i = 0
        while i < n:
            items[i] = i * i
            i = i + 1
        return sum(items)
"""
        assert run(src, "m", 4) == 0 + 1 + 4 + 9

    def test_object_graph(self):
        src = """
class Node:
    def fill(self, v):
        self.value = v

class T:
    def m(self, x):
        a = Node()
        a.fill(x)
        b = Node()
        b.fill(a.value * 2)
        return b.value
"""
        assert run(src, "m", 21) == 42

    def test_strict_boolean_ops(self):
        src = """
class T:
    def m(self, x):
        return x > 0 and x < 10
"""
        assert run(src, "m", 5) is True
        assert run(src, "m", 50) is False

    def test_unbound_variable_raises(self):
        src = """
class T:
    def m(self, x):
        return y
"""
        with pytest.raises(InterpError, match="unbound"):
            run(src, "m", 1)

    def test_missing_field_raises(self):
        src = """
class T:
    def m(self, x):
        return self.never_set
"""
        with pytest.raises(InterpError, match="no field"):
            run(src, "m", 1)

    def test_wrong_arity_raises(self):
        src = """
class T:
    def m(self, x):
        return x
"""
        program = parse_source(src)
        interp = IRInterpreter(program, connect(Database()))
        with pytest.raises(InterpError, match="expects"):
            interp.invoke("T", "m", 1, 2)


class TestNatives:
    def test_default_registry_contents(self):
        natives = default_natives()
        for name in ("len", "range", "sha1_hex", "concat", "print"):
            assert natives.has(name)

    def test_sha1_deterministic(self):
        assert sha1_hex("x") == sha1_hex("x")
        assert sha1_hex("x") != sha1_hex("y")

    def test_print_captured_to_console(self):
        src = """
class T:
    def m(self, x):
        print("value", x)
        return x
"""
        program = parse_source(src)
        natives = default_natives()
        interp = IRInterpreter(program, connect(Database()), natives=natives)
        interp.invoke("T", "m", 9)
        assert natives.console == ["value 9"]

    def test_concat(self):
        src = """
class T:
    def m(self, x):
        return concat("a=", x, "!")
"""
        assert run(src, "m", 3) == "a=3!"

    def test_unknown_native_raises(self):
        natives = default_natives()
        with pytest.raises(InterpError):
            natives.call("missing", [])


class TestDatabaseCalls:
    @pytest.fixture()
    def conn(self):
        db = Database()
        db.create_table(
            "t", [("k", "int", False), ("v", "int")], primary_key=["k"]
        )
        conn = connect(db)
        for k in range(5):
            conn.execute("INSERT INTO t (k, v) VALUES (?, ?)", k, k * 10)
        return conn

    def test_query_scalar(self, conn):
        src = """
class T:
    def m(self, k):
        return self.db.query_scalar("SELECT v FROM t WHERE k = ?", k)
"""
        assert run(src, "m", 3, conn=conn) == 30

    def test_query_iteration(self, conn):
        src = """
class T:
    def m(self, x):
        rs = self.db.query("SELECT v FROM t ORDER BY k")
        total = 0
        for row in rs:
            total = total + row[0]
        return total
"""
        assert run(src, "m", 0, conn=conn) == 100

    def test_query_one_row_access(self, conn):
        src = """
class T:
    def m(self, k):
        row = self.db.query_one("SELECT k, v FROM t WHERE k = ?", k)
        return row.get("v") + row.get("k")
"""
        assert run(src, "m", 2, conn=conn) == 22

    def test_execute_returns_rowcount(self, conn):
        src = """
class T:
    def m(self, x):
        return self.db.execute("UPDATE t SET v = v + 1 WHERE k < ?", x)
"""
        assert run(src, "m", 3, conn=conn) == 3

    def test_hooks_fire(self, conn):
        src = """
class T:
    def m(self, k):
        v = self.db.query_scalar("SELECT v FROM t WHERE k = ?", k)
        return v + 1
"""
        program = parse_source(src)
        stmts, db_calls = [], []
        interp = IRInterpreter(
            program, conn,
            on_stmt=lambda s: stmts.append(s.sid),
            on_db_call=lambda s, api, rows, r: db_calls.append((api, rows)),
        )
        interp.invoke("T", "m", 1)
        assert db_calls == [("query_scalar", 1)]
        assert len(stmts) >= 2
